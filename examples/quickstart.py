#!/usr/bin/env python3
"""Quickstart: route a random workload on an 8×8 CMP and compare heuristics.

Builds the paper's simulation platform (8×8 mesh, Kim–Horowitz discrete
link frequencies), draws a random communication set, runs the XY baseline
and all five Manhattan heuristics, and prints a comparison table: validity,
total power, the static/dynamic breakdown and runtime.

Run:  python examples/quickstart.py [num_comms] [seed]
"""

import sys

from repro import Mesh, PowerModel, RoutingProblem
from repro.heuristics import PAPER_HEURISTICS, BestOf, get_heuristic
from repro.utils.tables import format_table
from repro.workloads import uniform_random_workload


def main(num_comms: int = 30, seed: int = 42) -> None:
    mesh = Mesh(8, 8)
    power = PowerModel.kim_horowitz()
    comms = uniform_random_workload(mesh, num_comms, 100.0, 2500.0, rng=seed)
    problem = RoutingProblem(mesh, power, comms)

    print(
        f"Routing {problem.num_comms} communications "
        f"(total demand {problem.total_rate:.0f} Mb/s) on an "
        f"{mesh.p}x{mesh.q} CMP\n"
    )

    rows = []
    for name in PAPER_HEURISTICS:
        res = get_heuristic(name).solve(problem)
        rep = res.report
        rows.append(
            [
                name,
                "yes" if res.valid else "NO",
                f"{res.power:.1f}" if res.valid else "-",
                f"{rep.static_power:.1f}",
                f"{rep.dynamic_power:.1f}",
                rep.active_links,
                f"{res.runtime_s * 1e3:.1f}",
            ]
        )
    best = BestOf().solve(problem)
    rows.append(
        [
            "BEST",
            "yes" if best.valid else "NO",
            f"{best.power:.1f}" if best.valid else "-",
            f"{best.report.static_power:.1f}",
            f"{best.report.dynamic_power:.1f}",
            best.report.active_links,
            f"{best.runtime_s * 1e3:.1f}",
        ]
    )
    print(
        format_table(
            ["heuristic", "valid", "power mW", "static", "dynamic", "links", "ms"],
            rows,
        )
    )
    if best.valid:
        xy = get_heuristic("XY").solve(problem)
        if xy.valid:
            print(
                f"\nBEST consumes {xy.power / best.power:.2f}x less power "
                "than XY on this instance."
            )
        else:
            print("\nXY found no valid routing; Manhattan routing did.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
