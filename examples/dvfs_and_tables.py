#!/usr/bin/env python3
"""From routing to silicon: DVFS plans and routing tables.

A routing is only half a deployment.  This example takes the PR heuristic's
solution for a hotspot workload and derives the two artefacts a real chip
needs:

* the **DVFS plan** — which frequency each link is programmed to, how much
  leakage the idle links save (the link-shutdown technique of the related
  work), and how much dynamic power the discrete levels waste versus ideal
  continuous scaling;
* the **routing tables** — per-router match-action entries, and the
  destination-table conflicts that show why power-aware Manhattan routing
  needs per-flow state where XY routing gets away with plain
  destination-indexed tables.

Run:  python examples/dvfs_and_tables.py
"""

from repro import Mesh, PowerModel, Routing, RoutingProblem
from repro.core.frequency import routing_frequency_plan
from repro.heuristics import get_heuristic
from repro.noc import destination_table_conflicts, router_tables, source_routes
from repro.utils.tables import format_table
from repro.viz import load_legend, render_loads
from repro.workloads import hotspot_pattern


def main() -> None:
    mesh = Mesh(6, 6)
    power = PowerModel.kim_horowitz()
    comms = hotspot_pattern(mesh, rate=320.0, hotspot=(2, 2))
    problem = RoutingProblem(mesh, power, comms)

    pr = get_heuristic("PR").solve(problem)
    xy = get_heuristic("XY").solve(problem)
    print(
        f"hotspot workload: {len(comms)} flows into core (2,2); "
        f"XY {'valid' if xy.valid else 'INVALID'}"
        f"{f' at {xy.power:.0f} mW' if xy.valid else ''}, "
        f"PR {'valid' if pr.valid else 'INVALID'} at {pr.power:.0f} mW\n"
    )
    routing = pr.routing

    print(render_loads(mesh, routing.link_loads(), power=power))
    print(load_legend())

    plan = routing_frequency_plan(routing)
    rows = []
    for level, freq in enumerate(power.frequencies):
        count = int((plan.levels == level).sum())
        rows.append([f"{freq:.0f} Mb/s", count])
    rows.append(["off", mesh.num_links - plan.active_links])
    print("\nDVFS plan (links per frequency level):")
    print(format_table(["level", "links"], rows))
    print(
        f"mean utilisation of active links: {plan.mean_utilization:.2f}\n"
        f"leakage saved by switching idle links off: "
        f"{plan.shutdown_savings():.1f} mW\n"
        f"dynamic power lost to frequency quantisation: "
        f"{plan.quantization_overhead():.1f} mW"
    )

    tables = router_tables(routing)
    entries = sum(len(t) for t in tables.values())
    conflicts = destination_table_conflicts(routing)
    print(
        f"\nrouting tables: {entries} entries across {len(tables)} routers; "
        f"{len(conflicts)} routers need per-flow entries "
        f"(destination-indexed tables would be ambiguous there)"
    )
    xy_conflicts = destination_table_conflicts(xy.routing)
    print(f"the XY routing, by contrast, has {len(xy_conflicts)} conflicts.")

    sr = source_routes(routing)
    i = max(range(len(comms)), key=lambda k: comms[k].length)
    print(
        f"\nexample source route for {comms[i].src}->{comms[i].snk}: "
        f"{''.join(sr[i][0])}"
    )


if __name__ == "__main__":
    main()
