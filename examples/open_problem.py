#!/usr/bin/env python3
"""The conclusion's open problem, solved on one instance end to end.

The paper (Section 7) asks: when all communications share one source and
one destination, how much of the Theorem 1 multi-path gain does the best
*single-path* routing capture?  This script walks the full ladder on a
p × p chip, corner to corner:

  XY  →  best heuristic 1-MP  →  exact optimal 1-MP (band DP)
      →  max-MP optimum (LP-sandwiched convex flow)  →  ideal-spread bound

and prints each rung's dynamic power with the ratios in between, for an
equal-rate and a skewed-rate workload (splitting matters most when one
communication dominates).

Run:  python examples/open_problem.py [p]
"""

import sys

from repro import Communication, Mesh, PowerModel, RoutingProblem
from repro.core.routing import Routing
from repro.heuristics import BestOf
from repro.optimal import (
    flow_to_routing,
    optimal_same_endpoint_single_path,
    same_endpoint_flow,
)
from repro.theory.bounds import diagonal_lower_bound
from repro.utils.tables import format_table

PROFILES = {
    "equal  (6 x 350 Mb/s)": [350.0] * 6,
    "skewed (1000/600/300/100)": [1000.0, 600.0, 300.0, 100.0],
}


def dynamic_power(problem: RoutingProblem, routing: Routing) -> float:
    """Dynamic-only power of a routing (the Section 4 objective)."""
    power = problem.power
    loads = routing.link_loads()
    return float(power.p0 * ((loads / power.freq_unit) ** power.alpha).sum())


def main(p: int = 8) -> None:
    mesh = Mesh(p, p)
    power = PowerModel.dynamic_only(alpha=2.95, bandwidth=float("inf"))

    for label, rates in PROFILES.items():
        comms = [Communication((0, 0), (p - 1, p - 1), r) for r in rates]
        problem = RoutingProblem(mesh, power, comms)
        total = sum(rates)

        xy = dynamic_power(problem, Routing.xy(problem))
        heur = BestOf().solve(problem)
        heur_dyn = dynamic_power(problem, heur.routing)
        dp = optimal_same_endpoint_single_path(problem)
        dp_dyn = dynamic_power(problem, dp.routing)
        flow = same_endpoint_flow(
            mesh, (0, 0), (p - 1, p - 1), total, power, segments=48
        )
        multi = flow_to_routing(problem, flow.loads)
        ideal = diagonal_lower_bound(problem)

        print(f"\n=== {label} on {p}x{p}, corner to corner ===")
        rows = [
            ["XY", f"{xy:.3e}", f"{xy / dp_dyn:.2f}x the 1-MP optimum"],
            [
                f"BEST heuristic ({heur.name})",
                f"{heur_dyn:.3e}",
                f"{heur_dyn / dp_dyn:.3f}x the 1-MP optimum",
            ],
            ["optimal 1-MP (exact DP)", f"{dp_dyn:.3e}", "1.000x (reference)"],
            [
                "max-MP optimum (flow LP)",
                f"{flow.upper_bound:.3e}",
                f"splitting saves {dp_dyn / flow.upper_bound:.2f}x more",
            ],
            [
                "certified LP lower bound",
                f"{flow.lower_bound:.3e}",
                f"sandwich gap {100 * flow.gap:.1f}%",
            ],
            ["ideal-spread band bound", f"{ideal:.3e}", "(may be unreachable)"],
        ]
        print(format_table(["routing", "dynamic power", "versus"], rows))
        print(
            f"max-MP materialised as {sum(len(f) for f in multi.flows)} "
            f"flows over {max(len(f) for f in multi.flows)} paths max/comm; "
            f"DP explored {dp.explored_states} states."
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
