#!/usr/bin/env python3
"""Full system flow on real application traffic: map → route → validate.

Takes the four classic multimedia task graphs of the NoC literature
(VOPD, MPEG-4 decoder, Multi-Window Display, Picture-In-Picture — 44
tasks total), carves the 8×8 chip into per-application regions, maps each
application with simulated annealing, routes the resulting 49-strong
communication set with the paper's heuristics, and finally deploys the
winning routing on the flit-level simulator to confirm it delivers the
demanded throughput at nominal load.

Run:  python examples/published_apps.py [scale]
      scale = Mb/s per published MB/s (default 3.0)
"""

import sys

import numpy as np

from repro import Mesh, PowerModel, RoutingProblem
from repro.heuristics import PAPER_HEURISTICS, get_heuristic
from repro.noc import FlitSimulator
from repro.utils.tables import format_table
from repro.workloads import (
    annealed_placement,
    map_applications,
    mpeg4_app,
    mwd_app,
    pip_app,
    placement_cost,
    region_split,
    vopd_app,
)
from repro.workloads.apps import MPEG4_TASKS


def main(scale: float = 3.0) -> None:
    mesh = Mesh(8, 8)
    power = PowerModel.kim_horowitz()
    apps = [
        vopd_app(scale=scale),
        mpeg4_app(scale=scale),
        mwd_app(scale=scale),
        pip_app(scale=scale),
    ]

    # --- map ------------------------------------------------------------
    regions = region_split(mesh, [a.num_tasks for a in apps])
    placements = []
    print("Mapping (simulated annealing per region):")
    for app, region in zip(apps, regions):
        placement = annealed_placement(
            mesh, app, region=region, iterations=2000, seed=0
        )
        placements.append(placement)
        print(
            f"  {app.name:6s} {app.num_tasks:2d} tasks -> "
            f"rate-weighted distance {placement_cost(app, placement):.0f}"
        )
    sdram_core = placements[1][MPEG4_TASKS.index("sdram")]
    print(f"  (MPEG-4's SDRAM hub landed on core {sdram_core})\n")

    # --- route ----------------------------------------------------------
    comms = map_applications(apps, placements)
    problem = RoutingProblem(mesh, power, comms)
    print(
        f"Routing {len(comms)} communications, "
        f"total {problem.total_rate:.0f} Mb/s:"
    )
    rows, best = [], None
    for name in PAPER_HEURISTICS:
        res = get_heuristic(name).solve(problem)
        rows.append(
            [
                name,
                "yes" if res.valid else "NO",
                f"{res.power:.0f}" if res.valid else "-",
                f"{res.runtime_s * 1e3:.1f}",
            ]
        )
        if res.valid and (best is None or res.power < best.power):
            best = res
    print(format_table(["heuristic", "valid", "power mW", "ms"], rows))
    if best is None:
        raise SystemExit(
            "no heuristic routed this scale; lower it or split paths"
        )
    print(f"\nDeploying the {best.name} routing on the flit simulator...")

    # --- validate -------------------------------------------------------
    sim = FlitSimulator(best.routing, injection="bernoulli", seed=1)
    report = sim.run(12000, warmup=2400)
    ach = [
        f.achieved_fraction for f in report.flows if f.injected_flits > 0
    ]
    lat = [
        f.mean_packet_latency
        for f in report.flows
        if f.delivered_packets > 0
    ]
    print(
        f"  {len(report.flows)} flows: min achieved throughput "
        f"{min(ach):.2f}, mean packet latency {np.mean(lat):.1f} cycles, "
        f"max link utilisation {report.link_utilization.max():.2f}"
    )
    # Bernoulli arrivals on ~95%-utilised links wobble a few percent over
    # a finite window; sustained delivery below ~85% would mean real loss
    assert min(ach) > 0.85, "a flow failed to meet its demand"
    print("  all flows meet their demanded rates — routing deploys cleanly")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 3.0)
