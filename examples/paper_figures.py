#!/usr/bin/env python3
"""Regenerate the paper's Figures 7–9 series and the §6.4 summary.

Runs the Monte-Carlo harness for every figure panel and prints the two
series the paper plots per panel — normalised power inverse and failure
ratio — one text table each, plus the Section 6.4 summary statistics.

Trials per point default to the harness default (override with the
``REPRO_TRIALS`` environment variable or the first CLI argument; the paper
used 50 000).  Full run takes minutes at the default; pass a small trial
count for a quick look:

    python examples/paper_figures.py 20        # 20 trials/point
    python examples/paper_figures.py 20 fig7a  # one panel only
"""

import os
import sys

from repro.experiments import (
    fig7a,
    fig7b,
    fig7c,
    fig8a,
    fig8b,
    fig8c,
    fig9a,
    fig9b,
    fig9c,
    summary_statistics,
    sweep_to_text,
)

PANELS = {
    "fig7a": fig7a,
    "fig7b": fig7b,
    "fig7c": fig7c,
    "fig8a": fig8a,
    "fig8b": fig8b,
    "fig8c": fig8c,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig9c": fig9c,
}


def main() -> None:
    if len(sys.argv) > 1:
        os.environ["REPRO_TRIALS"] = sys.argv[1]
    wanted = sys.argv[2:] or list(PANELS)
    for name in wanted:
        if name == "summary":
            continue
        if name not in PANELS:
            raise SystemExit(
                f"unknown panel {name!r}; choose from {sorted(PANELS)} or 'summary'"
            )
        print(f"\n##### {name} #####")
        print(sweep_to_text(PANELS[name]()))

    if not sys.argv[2:] or "summary" in sys.argv[2:]:
        print("\n##### Section 6.4 summary #####")
        s = summary_statistics()
        print(f"trials: {s.trials}")
        print("success ratios (paper: XY 15%, XYI 46%, PR 50%, BEST 51%):")
        for k, v in s.success_ratio.items():
            print(f"  {k:>5s}: {v:.2f}")
        print(
            "power-inverse vs XY "
            "(paper: XYI 2.44x, PR 2.57x, BEST 2.95x):"
        )
        for k, v in s.inverse_vs_xy.items():
            print(f"  {k:>5s}: {v:.2f}x")
        print(
            f"static power fraction (paper: ~1/7 = 0.143): "
            f"{s.static_fraction:.3f}"
        )
        print("mean runtimes (paper on 2011 hardware: XYI 24 ms, PR 38 ms):")
        for k, v in s.mean_runtime_s.items():
            print(f"  {k:>5s}: {v * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
