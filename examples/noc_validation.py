#!/usr/bin/env python3
"""Deploy a computed routing on the flit-level NoC simulator.

The paper assumes table-driven routing with "a deadlock avoidance
technique ... such as resource ordering or escape channels".  This example
closes the loop: it routes a transpose-pattern workload with the PR
heuristic, checks the channel-dependency graph, executes the routing on
the wormhole simulator with DVFS-scaled link speeds, and compares

* predicted per-link utilisation (load / assigned frequency) against the
  utilisation the simulator actually measures, and
* the unprotected single-VC deployment against the direction-class
  4-VC resource-ordering scheme on an adversarial ring workload.

Run:  python examples/noc_validation.py
"""

import numpy as np

from repro import Communication, Mesh, PowerModel, Routing, RoutingProblem
from repro.heuristics import get_heuristic
from repro.noc import (
    DeadlockError,
    FlitSimulator,
    direction_class_vc,
    is_deadlock_free,
    single_vc,
)
from repro.workloads import transpose_pattern


def predicted_vs_measured() -> None:
    mesh = Mesh(4, 4)
    power = PowerModel.kim_horowitz()
    comms = transpose_pattern(mesh, rate=600.0)
    problem = RoutingProblem(mesh, power, comms)
    res = get_heuristic("PR").solve(problem)
    assert res.valid, "PR should route the transpose pattern"
    routing = res.routing

    print(
        f"PR routed {len(comms)} transpose communications; "
        f"power {res.power:.1f} mW; "
        f"deadlock-free under direction-class VCs: "
        f"{is_deadlock_free(routing, direction_class_vc)}"
    )

    sim = FlitSimulator(routing, num_vcs=4, buffer_flits=4, packet_flits=8)
    rep = sim.run(30000, warmup=3000)

    loads = routing.link_loads()
    freqs = problem.power.quantize(loads)
    predicted = np.where(freqs > 0, loads / np.maximum(freqs, 1e-12), 0.0)
    used = loads > 0
    err = np.abs(rep.link_utilization[used] - predicted[used])
    print(
        f"link utilisation: predicted vs simulated — mean |err| = "
        f"{err.mean():.3f}, max |err| = {err.max():.3f} over "
        f"{int(used.sum())} active links"
    )
    ach = [f.achieved_fraction for f in rep.flows]
    print(
        f"flow throughput achieved: min {min(ach):.2f}, "
        f"mean {np.mean(ach):.2f} of demand"
    )
    lat = [f.mean_packet_latency for f in rep.flows if f.delivered_packets]
    print(f"mean packet latency: {np.mean(lat):.1f} cycles\n")


def deadlock_demo() -> None:
    mesh = Mesh(3, 3)
    power = PowerModel(p_leak=0.0, p0=1.0, alpha=3.0, bandwidth=1000.0)
    comms = [
        Communication((0, 0), (2, 2), 500.0),
        Communication((0, 2), (2, 0), 480.0),
        Communication((2, 2), (0, 0), 460.0),
        Communication((2, 0), (0, 2), 440.0),
    ]
    problem = RoutingProblem(mesh, power, comms)
    ring = Routing.from_moves(problem, ["HHVV", "VVHH", "HHVV", "VVHH"])
    print(
        "adversarial border ring: CDG acyclic with 1 VC? "
        f"{is_deadlock_free(ring, single_vc)} — with direction-class VCs? "
        f"{is_deadlock_free(ring, direction_class_vc)}"
    )
    try:
        FlitSimulator(
            ring, num_vcs=1, vc_of=single_vc, buffer_flits=1, packet_flits=32,
            deadlock_window=500,
        ).run(40000)
        print("single VC: survived (scheduling got lucky)")
    except DeadlockError:
        print("single VC: hard wormhole deadlock, as the cyclic CDG predicts")
    rep = FlitSimulator(ring, num_vcs=4, buffer_flits=1, packet_flits=32).run(
        40000, warmup=2000
    )
    ach = [round(f.achieved_fraction, 2) for f in rep.flows]
    print(f"direction-class VCs: no deadlock, throughput {ach}")


if __name__ == "__main__":
    predicted_vs_measured()
    deadlock_demo()
