#!/usr/bin/env python3
"""The Section 4 theory, numerically.

* Lemma 1: Manhattan path counts (closed form vs recursion).
* Theorem 1: on a square chip, the explicit max-MP flow pattern keeps the
  corner-to-corner power bounded while XY pays Θ(p) — the ratio grows
  linearly with the side.
* Lemma 2 / Theorem 2: the staircase instance where plain YX (a 1-MP
  routing!) beats XY by Θ(p^{α-1}).
* Theorem 3: the 2-PARTITION gadget — the witness routing is valid exactly
  for balanced subsets.
* The diagonal lower bound vs what the heuristics actually achieve.

Run:  python examples/theory_demo.py
"""

import numpy as np

from repro import Mesh, PowerModel, RoutingProblem
from repro.heuristics import get_heuristic
from repro.theory import (
    build_reduction,
    diagonal_lower_bound,
    lemma2_powers,
    manhattan_path_count,
    routing_from_partition,
    theorem1_powers,
)
from repro.theory.counting import path_count_by_recursion
from repro.utils.tables import format_table
from repro.workloads import uniform_random_workload


def main() -> None:
    print("Lemma 1 — number of Manhattan paths corner to corner:")
    rows = [
        [f"{p}x{p}", manhattan_path_count(p, p), path_count_by_recursion(p, p)]
        for p in (2, 4, 8, 12)
    ]
    print(format_table(["mesh", "C(p+q-2,p-1)", "recursion"], rows))

    print("\nTheorem 1 — single pair, XY vs constructed max-MP (α = 3):")
    rows = []
    for p in (4, 8, 16, 32, 64):
        r = theorem1_powers(p)
        rows.append([p, f"{r['p_xy']:.1f}", f"{r['p_manhattan']:.3f}", f"{r['ratio']:.2f}"])
    print(format_table(["p", "P_XY", "P_maxMP", "ratio (Θ(p))"], rows))

    print("\nLemma 2 — staircase instance, XY vs YX (α = 3 ⇒ Θ(p²)):")
    rows = []
    for p in (4, 8, 16, 32):
        r = lemma2_powers(p)
        rows.append([p, f"{r['p_xy']:.0f}", f"{r['p_yx']:.0f}", f"{r['ratio']:.1f}"])
    print(format_table(["p", "P_XY", "P_YX", "ratio"], rows))

    print("\nTheorem 3 — 2-PARTITION gadget (a = [3,3,2,2,1,1], s = 2):")
    a, s = [3, 3, 2, 2, 1, 1], 2
    problem = build_reduction(a, s)
    print(
        f"  gadget: {problem.mesh.p}x{problem.mesh.q} chip, "
        f"BW = {problem.power.bandwidth:g}, {problem.num_comms} comms"
    )
    for subset, label in (({0, 3, 5}, "{3,2,1} (balanced)"), ({0}, "{3} (unbalanced)")):
        ok = routing_from_partition(a, s, subset).is_valid()
        print(f"  witness routing for subset {label}: valid = {ok}")

    print("\nDiagonal lower bound vs heuristics (8x8, 20 mixed comms):")
    mesh = Mesh(8, 8)
    power = PowerModel.continuous_kim_horowitz()
    comms = uniform_random_workload(mesh, 20, 100.0, 2500.0, rng=11)
    problem = RoutingProblem(mesh, power, comms)
    lb = diagonal_lower_bound(problem)
    rows = [["diagonal bound", f"{lb:.1f}", "-"]]
    for name in ("XY", "XYI", "PR"):
        res = get_heuristic(name).solve(problem)
        dyn = res.report.dynamic_power
        rows.append([name, f"{dyn:.1f}", f"{dyn / lb:.2f}x"])
    print(format_table(["source", "dynamic power", "vs bound"], rows))


if __name__ == "__main__":
    main()
