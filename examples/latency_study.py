#!/usr/bin/env python3
"""Deployment study: latency, burstiness and router power of a routing.

The paper optimises link power at the system level; this script examines
what the produced routing does when actually deployed:

1. route a workload with PR and provision link frequencies from it;
2. sweep offered load from 20% to 250% of nominal under smooth
   (deterministic), Bernoulli and bursty arrivals — the load–latency
   curves show how much queueing headroom frequency quantisation leaves
   and how burstiness erodes it;
3. re-score the XY and PR routings under total network power (links +
   Orion-style routers) to see how much the router terms shift the
   comparison.

Run:  python examples/latency_study.py [seed]
"""

import sys

import numpy as np

from repro import Mesh, PowerModel, RoutingProblem
from repro.heuristics import get_heuristic
from repro.noc import (
    RouterPowerModel,
    latency_sweep,
    network_power,
    saturation_fraction,
)
from repro.utils.tables import format_table
from repro.workloads import uniform_random_workload

FRACTIONS = (0.2, 0.5, 0.8, 1.0, 1.5, 2.0, 2.5)


def main(seed: int = 3) -> None:
    mesh = Mesh(8, 8)
    power = PowerModel.kim_horowitz()
    comms = uniform_random_workload(mesh, 14, 100.0, 1200.0, rng=seed)
    problem = RoutingProblem(mesh, power, comms)

    pr = get_heuristic("PR").solve(problem)
    xy = get_heuristic("XY").solve(problem)
    if not pr.valid:
        raise SystemExit("PR failed on this seed; try another")
    print(
        f"PR routed {problem.num_comms} comms at {pr.power:.0f} mW "
        f"(XY: {'%.0f mW' % xy.power if xy.valid else 'FAILS'})\n"
    )

    # --- load–latency under three arrival models -----------------------
    print("Load-latency curves of the PR routing (packet latency, cycles):")
    curves = {}
    for model in ("deterministic", "bernoulli", "burst"):
        curves[model] = latency_sweep(
            pr.routing,
            FRACTIONS,
            cycles=4000,
            warmup=800,
            injection=model,
            seed=42,
        )
    rows = []
    for i, frac in enumerate(FRACTIONS):
        row = [f"{frac:.1f}"]
        for model in ("deterministic", "bernoulli", "burst"):
            pt = curves[model][i]
            row.append(
                f"{pt.mean_latency:.1f}"
                if np.isfinite(pt.mean_latency)
                else "-"
            )
        rows.append(row)
    print(format_table(["fraction", "smooth", "bernoulli", "burst"], rows))
    for model in ("deterministic", "bernoulli", "burst"):
        sat = saturation_fraction(curves[model])
        print(f"  {model:14s} saturates at ~{sat:.1f}x nominal")

    # --- total network power -------------------------------------------
    if xy.valid:
        print("\nTotal power with an Orion-style router model:")
        rows = []
        for leak in (0.0, 8.0, 32.0):
            model = RouterPowerModel(p_router_leak=leak)
            rep_xy = network_power(xy.routing, model)
            rep_pr = network_power(pr.routing, model)
            rows.append(
                [
                    f"{leak:.0f}",
                    f"{rep_xy.total:.0f}",
                    f"{rep_pr.total:.0f}",
                    f"{rep_xy.num_active_routers}/{rep_pr.num_active_routers}",
                ]
            )
        print(
            format_table(
                ["router leak mW", "XY total", "PR total", "routers XY/PR"],
                rows,
            )
        )
        print(
            "\nRouter dynamic power is identical for every Manhattan "
            "routing\n(all paths are shortest), so only leakage shifts "
            "the comparison."
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
