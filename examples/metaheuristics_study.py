#!/usr/bin/env python3
"""What extra search time buys: SA / GA / TABU vs the paper's heuristics.

The paper argues for cheap constructive heuristics (24–38 ms) and leaves
"how far from optimal?" open.  This script takes one constrained instance
and runs the whole field — the paper's five heuristics, the BEST
composite, and the three metaheuristic extensions at increasing budgets —
printing power, validity and runtime so the time/quality trade-off is
visible on one screen.

Run:  python examples/metaheuristics_study.py [n_comms] [seed]
"""

import sys

from repro import Mesh, PowerModel, RoutingProblem
from repro.heuristics import (
    PAPER_HEURISTICS,
    GeneticRouting,
    SimulatedAnnealing,
    TabuRouting,
    get_heuristic,
)
from repro.utils.tables import format_table
from repro.workloads import uniform_random_workload


def main(n_comms: int = 28, seed: int = 11) -> None:
    mesh = Mesh(8, 8)
    power = PowerModel.kim_horowitz()
    comms = uniform_random_workload(mesh, n_comms, 100.0, 2500.0, rng=seed)
    problem = RoutingProblem(mesh, power, comms)
    print(
        f"{n_comms} communications, total {problem.total_rate:.0f} Mb/s "
        f"on 8x8 (seed {seed})\n"
    )

    field = [(name, get_heuristic(name)) for name in PAPER_HEURISTICS]
    field += [
        ("SA 2k", SimulatedAnnealing(iterations=2000, seed=1)),
        ("SA 8k", SimulatedAnnealing(iterations=8000, seed=1)),
        ("SA 8k from XYI", SimulatedAnnealing(iterations=8000, init="XYI", seed=1)),
        ("GA 40 gen", GeneticRouting(population=24, generations=40, seed=1)),
        ("TABU 300", TabuRouting(iterations=300, seed=1)),
    ]

    rows = []
    best_power = float("inf")
    for label, heuristic in field:
        res = heuristic.solve(problem)
        if res.valid:
            best_power = min(best_power, res.power)
        rows.append(
            [
                label,
                "yes" if res.valid else "NO",
                f"{res.power:.1f}" if res.valid else "-",
                f"{res.runtime_s * 1e3:.0f}",
            ]
        )
    # annotate distance from the field's best
    for row in rows:
        row.append(
            f"+{(float(row[2]) / best_power - 1) * 100:.1f}%"
            if row[2] != "-"
            else "-"
        )
    print(
        format_table(
            ["heuristic", "valid", "power mW", "ms", "vs field best"], rows
        )
    )
    print(
        "\nReading: the paper's heuristics answer in tens of ms; the "
        "metaheuristics spend ~10x\nthat to land within a few percent of "
        "the field's best — on constrained instances like\nthis one, PR's "
        "constructive spread is remarkably hard to beat at any budget."
    )


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 28,
        int(sys.argv[2]) if len(sys.argv) > 2 else 11,
    )
