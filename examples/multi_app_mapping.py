#!/usr/bin/env python3
"""System-level scenario: several applications mapped on one CMP.

The paper's motivating setting (Section 1): "several parallel applications
executing on the CMP, and each of them has been mapped onto a set of
nodes".  We place three applications on an 8×8 chip —

* a 6-stage video-style streaming pipeline,
* a 4×4 halo-exchange stencil solver,
* a fork–join analytics job with 7 workers —

extract the resulting system-level communication set, and compare XY
against the best Manhattan heuristics, including the failure behaviour as
link bandwidth tightens.

Run:  python examples/multi_app_mapping.py [seed]
"""

import sys

from repro import Mesh, PowerModel, RoutingProblem
from repro.heuristics import PAPER_HEURISTICS, get_heuristic
from repro.utils.tables import format_table
from repro.workloads import (
    fork_join_app,
    map_applications,
    pipeline_app,
    random_placement,
    row_major_placement,
    stencil_app,
)


def main(seed: int = 7) -> None:
    mesh = Mesh(8, 8)
    power = PowerModel.kim_horowitz()

    pipeline = pipeline_app(stages=6, rate=900.0, name="video-pipeline")
    stencil = stencil_app(rows=4, cols=4, rate=350.0, name="cfd-stencil")
    analytics = fork_join_app(
        workers=7, scatter_rate=500.0, gather_rate=250.0, name="analytics"
    )

    # the pipeline gets a contiguous block; the stencil a square block;
    # the analytics job is scattered wherever cores remain
    placements = [
        row_major_placement(mesh, pipeline.num_tasks, origin=0),
        [(2 + r, 2 + c) for r in range(4) for c in range(4)],
    ]
    used = set(placements[0]) | set(placements[1])
    placements.append(
        random_placement(mesh, analytics.num_tasks, rng=seed, exclude=sorted(used))
    )

    comms = map_applications([pipeline, stencil, analytics], placements)
    problem = RoutingProblem(mesh, power, comms)
    print(
        f"{len(comms)} communications from 3 applications, "
        f"total demand {problem.total_rate:.0f} Mb/s\n"
    )

    rows = []
    for name in PAPER_HEURISTICS:
        res = get_heuristic(name).solve(problem)
        rows.append(
            [
                name,
                "yes" if res.valid else "NO",
                f"{res.power:.1f}" if res.valid else "-",
                res.report.active_links,
                f"{res.report.max_load:.0f}",
            ]
        )
    print(
        format_table(
            ["heuristic", "valid", "power mW", "active links", "max load Mb/s"],
            rows,
        )
    )

    # tighten the platform: drop all but the lowest frequency, forcing the
    # routers to spread every flow below 1 Gb/s per link
    tight = power.with_frequencies((1000.0,))
    tight_problem = RoutingProblem(mesh, tight, comms)
    print("\nSame workload with only the 1 Gb/s link frequency available:")
    rows = []
    tight_results = {}
    for name in PAPER_HEURISTICS:
        res = get_heuristic(name).solve(tight_problem)
        tight_results[name] = res
        rows.append(
            [
                name,
                "yes" if res.valid else "NO",
                f"{res.power:.1f}" if res.valid else "-",
                f"{res.report.max_load:.0f}",
            ]
        )
    print(format_table(["heuristic", "valid", "power mW", "max load"], rows))
    if not tight_results["XY"].valid and any(
        r.valid for n, r in tight_results.items() if n != "XY"
    ):
        print(
            "\nThe paper's headline in miniature: XY saturates a link while "
            "Manhattan heuristics still find valid routings."
        )
    else:
        print(
            "\nManhattan heuristics keep the maximum link load at the "
            "lowest frequency step, where XY has to clock links up."
        )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
