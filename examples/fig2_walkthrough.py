#!/usr/bin/env python3
"""Walk through the paper's Figure 2 worked example, exactly.

Two communications from C_{1,1} to C_{2,2} on a 2×2 chip with
``P_leak = 0, P0 = 1, α = 3, BW = 4``: γ₁ of 1 byte/s and γ₂ of 3 bytes/s.

* XY routes both on the same two links → P = 2 · 4³ = **128**;
* the best 1-MP routing separates them (XY + YX) → P = 2·(1³+3³) = **56**;
* the best 2-MP routing splits γ₂ into 1 + 2 and balances both links at
  load 2 → P = 2·(2³+2³) = **32**.

The script reproduces all three numbers from the library primitives and
cross-checks the 2-MP optimum against the Frank–Wolfe relaxation.

Run:  python examples/fig2_walkthrough.py
"""

from repro import Communication, Mesh, PowerModel, Routing, RoutedFlow, RoutingProblem
from repro.mesh.paths import Path
from repro.optimal import frank_wolfe_relaxation


def main() -> None:
    mesh = Mesh(2, 2)
    power = PowerModel.fig2_example()
    comms = [
        Communication((0, 0), (1, 1), 1.0),
        Communication((0, 0), (1, 1), 3.0),
    ]
    problem = RoutingProblem(mesh, power, comms)

    xy = Routing.xy(problem)
    print(f"Figure 2(a)  XY routing:    P = {xy.total_power():.0f}   (paper: 128)")

    one_mp = Routing.from_moves(problem, ["HV", "VH"])
    print(f"Figure 2(b)  best 1-MP:     P = {one_mp.total_power():.0f}    (paper: 56)")

    two_mp = Routing(
        problem,
        [
            [RoutedFlow(Path.xy(mesh, (0, 0), (1, 1)), 1.0)],
            [
                RoutedFlow(Path.xy(mesh, (0, 0), (1, 1)), 1.0),
                RoutedFlow(Path.yx(mesh, (0, 0), (1, 1)), 2.0),
            ],
        ],
    )
    print(f"Figure 2(c)  best 2-MP:     P = {two_mp.total_power():.0f}    (paper: 32)")

    fw = frank_wolfe_relaxation(problem, max_iter=500)
    print(
        f"\nFrank–Wolfe continuous max-MP relaxation: objective = "
        f"{fw.objective:.3f}, certified lower bound = {fw.lower_bound:.3f}"
    )
    print(
        "The 2-MP routing already achieves the relaxation optimum (perfect "
        "balance: both ways loaded 2 + 2)."
    )


if __name__ == "__main__":
    main()
