"""Deterministic random-number-generator plumbing.

All stochastic entry points in the library accept either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy), and
normalise it through :func:`ensure_rng`.  Monte-Carlo sweeps use
:func:`spawn_rngs` so that every trial has an independent, reproducible
stream regardless of execution order.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` creates a generator seeded from OS entropy; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a fresh PCG64 generator; an
    existing generator is returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be None, an int seed, a numpy SeedSequence, or a "
        f"numpy.random.Generator; got {type(rng).__name__}"
    )


def spawn_rngs(seed: Optional[int], n: int) -> Sequence[np.random.Generator]:
    """Create ``n`` independent generators from a root ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn` so that streams are
    statistically independent and the i-th stream is a pure function of
    ``(seed, i)`` — trials can be re-run or re-ordered without changing
    results.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def spawn_rngs_range(
    seed: Optional[int], lo: int, hi: int
) -> Sequence[np.random.Generator]:
    """Streams ``lo .. hi-1`` of :func:`spawn_rngs`, in O(hi - lo).

    ``SeedSequence.spawn`` derives child ``i`` purely from the root entropy
    and ``spawn_key=(i,)``, so a worker can materialise just its slice of
    the trial streams instead of spawning all ``n`` and slicing —
    ``spawn_rngs_range(seed, lo, hi) == spawn_rngs(seed, n)[lo:hi]`` for
    any ``n >= hi``.
    """
    if lo < 0 or hi < lo:
        raise ValueError(f"need 0 <= lo <= hi, got [{lo}, {hi})")
    root = np.random.SeedSequence(seed)
    return [
        np.random.default_rng(
            np.random.SeedSequence(entropy=root.entropy, spawn_key=(i,))
        )
        for i in range(lo, hi)
    ]
