"""Deterministic random-number-generator plumbing.

All stochastic entry points in the library accept either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy), and
normalise it through :func:`ensure_rng`.  Monte-Carlo sweeps use
:func:`spawn_rngs` so that every trial has an independent, reproducible
stream regardless of execution order.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` creates a generator seeded from OS entropy; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a fresh PCG64 generator; an
    existing generator is returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be None, an int seed, a numpy SeedSequence, or a "
        f"numpy.random.Generator; got {type(rng).__name__}"
    )


#: bit masks of the 32/64-bit words of numpy's bounded-draw kernels
_M32 = 0xFFFFFFFF
_M64 = (1 << 64) - 1

#: the ``2**-53`` double-conversion constant of numpy's ``next_double``
_TO_DOUBLE = 1.1102230246251565e-16


def raw_word_block(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` raw 64-bit generator words, one vectorised call.

    Full-range ``integers(0, 2**64)`` draws *are* the generator's raw
    output words, so consuming them block-wise is word-for-word identical
    to scalar draws.  This is the single refill primitive shared by
    :class:`StreamReplica` (Python tier) and
    :class:`repro.native.stream.NativeStream` (native tier): both replay
    numpy's scalar draw kernels over this stream, which is what keeps the
    two tiers — and the wrapped generator itself — bit-identical.  The
    words are drawn here, in Python, even when the draw kernels run in C.
    """
    return rng.integers(0, 2**64, size=n, dtype=np.uint64)


class StreamReplica:
    """Python-side replica of a PCG64 :class:`~numpy.random.Generator`.

    Scalar ``Generator`` draws cost over a microsecond each in dispatch
    overhead — the dominant cost of metaheuristic inner loops that make a
    handful of bounded draws per proposal.  This replica consumes the
    generator's **raw 64-bit output stream** in blocks (one vectorised
    ``integers(0, 2**64)`` call per ``block`` words — full-range draws
    are the raw words) and re-implements the exact word-consumption
    discipline of numpy's scalar kernels in Python:

    * ``random()`` — one raw word, ``(w >> 11) * 2**-53``;
    * ``integers(n)`` — Lemire rejection; bounds below ``2**32`` use the
      32-bit kernel fed by **half-words** (low half first, high half
      buffered), exactly like numpy's buffered ``next_uint32``;
    * ``shuffle(list)`` — Fisher–Yates with numpy's masked-rejection
      ``random_interval`` (32-bit path for small bounds, same half-word
      buffer).

    The replica therefore produces **bit-identical draw sequences** to
    calling the same methods on the wrapped generator directly, at a
    fraction of the per-draw cost (``tests/test_stream_replica.py``
    fuzzes the equivalence over hundreds of interleaving patterns).  Once
    wrapped, the underlying generator must not be used directly — the
    replica has already consumed words beyond the caller's position.

    Only the methods the metaheuristics need are provided; extend the
    replica (with its equivalence test) before handing it to new draw
    sites.
    """

    __slots__ = ("_rng", "_block", "_buf", "_i", "_n", "_has32", "_u32")

    def __init__(self, rng: np.random.Generator, block: int = 1024):
        self._rng = rng
        self._block = block
        self._buf: list = []
        self._i = 0
        self._n = 0
        self._has32 = False
        self._u32 = 0

    def _refill(self) -> None:
        # .tolist() matters: Python ints keep the arbitrary-precision
        # multiply semantics the Lemire kernel below relies on
        self._buf = raw_word_block(self._rng, self._block).tolist()
        self._i = 0
        self._n = self._block

    def _raw64(self) -> int:
        if self._i >= self._n:
            self._refill()
        v = self._buf[self._i]
        self._i += 1
        return v

    def _raw32(self) -> int:
        # numpy's next_uint32 on a 64-bit generator: serve the low half
        # first and buffer the high half for the next 32-bit draw
        if self._has32:
            self._has32 = False
            return self._u32
        if self._i >= self._n:
            self._refill()
        v = self._buf[self._i]
        self._i += 1
        self._has32 = True
        self._u32 = v >> 32
        return v & _M32

    # ------------------------------------------------------------------
    def random(self) -> float:
        """Uniform double in [0, 1) — ``Generator.random()`` bit for bit."""
        if self._i >= self._n:
            self._refill()
        v = self._buf[self._i]
        self._i += 1
        return (v >> 11) * _TO_DOUBLE

    def integers(self, n: int) -> int:
        """Uniform int in [0, n) — scalar ``Generator.integers(n)`` bit
        for bit (int64 dtype: Lemire rejection, 32-bit kernel for small
        bounds)."""
        rng_ = n - 1
        if rng_ <= 0:
            if rng_ < 0:
                # match Generator.integers: fail loudly instead of
                # desynchronising the word stream with a bogus draw
                raise ValueError(f"high <= 0 in integers({n})")
            return 0
        if rng_ <= _M32:
            rng_excl = rng_ + 1
            m = self._raw32() * rng_excl
            leftover = m & _M32
            if leftover < rng_excl:
                threshold = (_M32 - rng_) % rng_excl
                while leftover < threshold:
                    m = self._raw32() * rng_excl
                    leftover = m & _M32
            return m >> 32
        if rng_ == _M64:
            return self._raw64()
        rng_excl = rng_ + 1
        m = self._raw64() * rng_excl
        leftover = m & _M64
        if leftover < rng_excl:
            threshold = (_M64 - rng_) % rng_excl
            while leftover < threshold:
                m = self._raw64() * rng_excl
                leftover = m & _M64
        return m >> 64

    def shuffle(self, x: list) -> None:
        """In-place shuffle — ``Generator.shuffle`` on a plain sequence
        bit for bit (masked-rejection ``random_interval`` per step)."""
        interval = self._interval
        for i in range(len(x) - 1, 0, -1):
            j = interval(i)
            x[i], x[j] = x[j], x[i]

    def _interval(self, mx: int) -> int:
        if mx == 0:
            return 0
        mask = mx
        mask |= mask >> 1
        mask |= mask >> 2
        mask |= mask >> 4
        mask |= mask >> 8
        mask |= mask >> 16
        mask |= mask >> 32
        if mx <= _M32:
            while True:
                v = self._raw32() & mask
                if v <= mx:
                    return v
        while True:
            v = self._raw64() & mask
            if v <= mx:
                return v


def spawn_rngs(seed: Optional[int], n: int) -> Sequence[np.random.Generator]:
    """Create ``n`` independent generators from a root ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn` so that streams are
    statistically independent and the i-th stream is a pure function of
    ``(seed, i)`` — trials can be re-run or re-ordered without changing
    results.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def spawn_rngs_range(
    seed: Optional[int], lo: int, hi: int
) -> Sequence[np.random.Generator]:
    """Streams ``lo .. hi-1`` of :func:`spawn_rngs`, in O(hi - lo).

    ``SeedSequence.spawn`` derives child ``i`` purely from the root entropy
    and ``spawn_key=(i,)``, so a worker can materialise just its slice of
    the trial streams instead of spawning all ``n`` and slicing —
    ``spawn_rngs_range(seed, lo, hi) == spawn_rngs(seed, n)[lo:hi]`` for
    any ``n >= hi``.
    """
    if lo < 0 or hi < lo:
        raise ValueError(f"need 0 <= lo <= hi, got [{lo}, {hi})")
    root = np.random.SeedSequence(seed)
    return [
        np.random.default_rng(
            np.random.SeedSequence(entropy=root.entropy, spawn_key=(i,))
        )
        for i in range(lo, hi)
    ]
