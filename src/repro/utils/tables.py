"""Plain-text table and series formatting for experiment reports.

The benchmark harness prints paper-style rows (one per sweep point) through
these helpers so that every figure reproduction has a uniform, diffable text
rendering, and EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _fmt_cell(value: object, width: int, ndigits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}f}".rjust(width)
    return str(value).rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    ndigits: int = 3,
    min_width: int = 6,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table."""
    rows = [list(r) for r in rows]
    ncols = len(headers)
    for r in rows:
        if len(r) != ncols:
            raise ValueError(
                f"row {r!r} has {len(r)} cells, expected {ncols} to match headers"
            )
    widths = []
    for c, h in enumerate(headers):
        w = max(
            [len(str(h)), min_width]
            + [len(_fmt_cell(r[c], 0, ndigits).strip()) for r in rows]
        )
        widths.append(w)
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(str(h).rjust(w) for h, w in zip(headers, widths)), sep]
    for r in rows:
        out.append(" | ".join(_fmt_cell(v, w, ndigits) for v, w in zip(r, widths)))
    return "\n".join(out)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    ndigits: int = 3,
) -> str:
    """Render a sweep (one x column, one column per named series)."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    headers = [x_name] + names
    rows = [
        [x] + [series[name][i] for name in names] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, ndigits=ndigits)
