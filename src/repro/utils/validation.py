"""Small validation helpers and the library exception hierarchy.

Every user-facing entry point validates its parameters eagerly and raises
:class:`InvalidParameterError` with an actionable message, so misuse fails at
the API boundary rather than deep inside a heuristic.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of its documented domain."""


class InfeasibleRoutingError(ReproError):
    """Raised when an exact solver proves that no valid routing exists."""


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise unless ``value`` is positive (strictly, by default).

    Parameters
    ----------
    name:
        Parameter name used in the error message.
    value:
        The value to check.
    strict:
        If ``True`` require ``value > 0``; otherwise ``value >= 0``.
    """
    if strict and not value > 0:
        raise InvalidParameterError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    lo_strict: bool = False,
    hi_strict: bool = False,
) -> None:
    """Raise unless ``lo (≤|<) value (≤|<) hi``."""
    lo_ok = value > lo if lo_strict else value >= lo
    hi_ok = value < hi if hi_strict else value <= hi
    if not (lo_ok and hi_ok):
        lo_b = "(" if lo_strict else "["
        hi_b = ")" if hi_strict else "]"
        raise InvalidParameterError(
            f"{name} must lie in {lo_b}{lo}, {hi}{hi_b}, got {value!r}"
        )


def check_index(name: str, value: Any, size: int) -> int:
    """Check that ``value`` is an integer in ``[0, size)`` and return it."""
    try:
        idx = int(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}") from exc
    if idx != value:
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if not 0 <= idx < size:
        raise InvalidParameterError(f"{name} must be in [0, {size}), got {idx}")
    return idx
