"""Shared utilities: deterministic RNG handling, table formatting, validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import format_table, format_series
from repro.utils.validation import (
    check_positive,
    check_in_range,
    check_index,
    ReproError,
    InvalidParameterError,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "format_table",
    "format_series",
    "check_positive",
    "check_in_range",
    "check_index",
    "ReproError",
    "InvalidParameterError",
]
