"""Routing-table export: source routes and per-router tables.

The paper (Section 1): "Each communication is routed from source to
destination along a given path using either source routing or table-based
routing."  This module materialises both deployment artefacts from a
computed routing:

* :func:`source_routes` — per flow, the ordered list of output ports the
  header would encode (source routing);
* :func:`router_tables` — per router, the ``(comm id, flow id) → output
  port`` match-action table (table-based routing with per-flow keys);
* :func:`destination_table_conflicts` — a feasibility check for the
  *cheaper* per-destination tables: two flows to the same destination that
  need different output ports at one router cannot share a plain
  destination-indexed table entry; the conflicts returned are the routers
  where per-flow (or VC-disambiguated) tables are actually required.
* :func:`flow_link_table` — the flit engines' ``(flow, hop) → link id``
  tables, computed with the flat kernel's O(1) id arithmetic
  (:func:`repro.mesh.kernel.direction_link_bases`) instead of per-hop
  ``link_between`` walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.routing import Routing
from repro.mesh.diagonals import direction_of, direction_steps
from repro.mesh.kernel import links_from_vmask, moves_to_vmask
from repro.mesh.topology import Mesh, Orientation

Coord = Tuple[int, int]
#: table key: (router, comm index, flow index)
FlowKey = Tuple[Coord, int, int]


@dataclass(frozen=True)
class TableConflict:
    """Two flows toward one destination diverging at one router."""

    router: Coord
    destination: Coord
    ports: Tuple[str, ...]
    flows: Tuple[Tuple[int, int], ...]  #: (comm, flow) pairs involved


def _port_of(mesh: Mesh, tail: Coord, head: Coord) -> str:
    return mesh.link_orientation(mesh.link_between(tail, head)).value


def source_routes(routing: Routing) -> List[List[List[str]]]:
    """Per communication, per flow: the ordered output-port list.

    ``result[i][j]`` is the port sequence (e.g. ``['E', 'E', 'S']``) flow
    ``j`` of communication ``i`` would carry in its header under source
    routing.
    """
    mesh = routing.problem.mesh
    out: List[List[List[str]]] = []
    for flows in routing.flows:
        per_comm = []
        for f in flows:
            cores = f.path.cores()
            per_comm.append(
                [_port_of(mesh, a, b) for a, b in zip(cores, cores[1:])]
            )
        out.append(per_comm)
    return out


def router_tables(routing: Routing) -> Dict[Coord, Dict[Tuple[int, int], str]]:
    """Per-router match-action tables keyed by ``(comm, flow)``.

    ``tables[router][(i, j)] = port`` — the exact deployment of the
    paper's "table-based routing" for per-flow keys.  Entries exist for
    every router a flow transits (its source included, its sink excluded).
    """
    mesh = routing.problem.mesh
    tables: Dict[Coord, Dict[Tuple[int, int], str]] = {}
    for i, flows in enumerate(routing.flows):
        for j, f in enumerate(flows):
            cores = f.path.cores()
            for a, b in zip(cores, cores[1:]):
                tables.setdefault(a, {})[(i, j)] = _port_of(mesh, a, b)
    return tables


def flow_link_table(routing: Routing) -> List[Tuple[int, ...]]:
    """Per-flow hop tables: ``table[f][h]`` is the link id of hop ``h``.

    Flows are flattened in the simulators' order (communications in
    problem order, each communication's flows in routing order), so
    ``table[f]`` is exactly the ``(flow, hop) → link id`` lookup both flit
    engines deploy.  Link ids are produced by the flat kernel's
    :func:`~repro.mesh.kernel.direction_link_bases` arithmetic — one
    vectorised :func:`~repro.mesh.kernel.links_from_vmask` call per flow,
    no per-hop ``link_between`` walks.
    """
    mesh = routing.problem.mesh
    out: List[Tuple[int, ...]] = []
    steps_memo: Dict[Tuple[Coord, Coord], Tuple[int, int]] = {}
    for flows in routing.flows:
        for f in flows:
            key = (f.path.src, f.path.snk)
            steps = steps_memo.get(key)
            if steps is None:
                steps = direction_steps(direction_of(*key))
                steps_memo[key] = steps
            lids = links_from_vmask(
                mesh, f.path.src, steps[0], steps[1],
                moves_to_vmask(f.path.moves),
            )
            out.append(tuple(int(x) for x in lids))
    return out


def destination_table_conflicts(routing: Routing) -> List[TableConflict]:
    """Where plain destination-indexed tables would be ambiguous.

    XY routing never conflicts (its next hop is a function of the current
    router and the destination alone); power-aware Manhattan routings
    generally do — the returned conflicts quantify the extra table state
    (per-flow entries, or one VC per conflicting class) the deployment
    needs, which is the systems cost the paper's conclusion alludes to.
    """
    mesh = routing.problem.mesh
    by_router_dest: Dict[Tuple[Coord, Coord], Dict[str, List[Tuple[int, int]]]] = {}
    for i, flows in enumerate(routing.flows):
        dest = routing.problem.comms[i].snk
        for j, f in enumerate(flows):
            cores = f.path.cores()
            for a, b in zip(cores, cores[1:]):
                port = _port_of(mesh, a, b)
                by_router_dest.setdefault((a, dest), {}).setdefault(
                    port, []
                ).append((i, j))
    conflicts = []
    for (router, dest), ports in sorted(by_router_dest.items()):
        if len(ports) > 1:
            conflicts.append(
                TableConflict(
                    router=router,
                    destination=dest,
                    ports=tuple(sorted(ports)),
                    flows=tuple(
                        sorted(fl for port in ports.values() for fl in port)
                    ),
                )
            )
    return conflicts
