"""Router-microarchitecture power on top of the paper's link power.

The paper's objective charges only the *links* (Section 3.1); real
routers also burn energy in buffers, crossbars and arbiters, and leak
while powered.  This module adds an Orion-style per-router model so the
XY-vs-Manhattan comparison can be re-examined under total network power:

* **router dynamic power** — every flit hop reads a buffer, wins an
  arbitration, crosses a crossbar and is written into the downstream
  buffer; the per-hop energy coefficient turns traffic (Mb/s) into mW.
  Because every Manhattan routing of a communication has the *same* hop
  count (they are all shortest paths), router dynamic power is
  **routing-invariant** for a fixed communication set — a clean
  analytical fact the tests pin down.
* **router static power** — a router leaks while any of its ports is in
  use.  Manhattan routings spread traffic over more links and routers
  than XY, so their static share grows; sweeping the leak coefficient
  locates where XY's concentration advantage offsets its dynamic-power
  loss (the ``ablation_router_power`` campaign experiment).

Default coefficients are representative of published 65 nm router power
breakdowns (buffer ≈ 45 %, crossbar ≈ 30 %, arbitration ≈ 10 % of
router dynamic power, ~1 mW per Gb/s per hop overall); they are plain
dataclass fields, so calibrating to another technology is one
constructor call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.core.routing import Routing
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]


@dataclass(frozen=True)
class RouterPowerModel:
    """Per-router energy coefficients (mW per Mb/s, mW per router).

    Parameters
    ----------
    e_buffer_write, e_buffer_read, e_crossbar, e_arbiter:
        Dynamic coefficients in mW per (Mb/s) of traffic taking one hop
        through a router.
    p_router_leak:
        Static power of a powered-on router (mW).  A router is powered on
        when some flow enters, leaves or traverses it.
    """

    e_buffer_write: float = 2.25e-4
    e_buffer_read: float = 2.25e-4
    e_crossbar: float = 3.0e-4
    e_arbiter: float = 1.0e-4
    p_router_leak: float = 8.0

    def __post_init__(self) -> None:
        for name in ("e_buffer_write", "e_buffer_read", "e_crossbar", "e_arbiter"):
            if getattr(self, name) < 0:
                raise InvalidParameterError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if self.p_router_leak < 0:
            raise InvalidParameterError(
                f"p_router_leak must be >= 0, got {self.p_router_leak}"
            )

    @property
    def e_hop(self) -> float:
        """Total dynamic coefficient of one hop (mW per Mb/s)."""
        return (
            self.e_buffer_write
            + self.e_buffer_read
            + self.e_crossbar
            + self.e_arbiter
        )

    def with_leak(self, p_router_leak: float) -> "RouterPowerModel":
        """Copy with a different router leakage (the ablation knob)."""
        return RouterPowerModel(
            e_buffer_write=self.e_buffer_write,
            e_buffer_read=self.e_buffer_read,
            e_crossbar=self.e_crossbar,
            e_arbiter=self.e_arbiter,
            p_router_leak=p_router_leak,
        )


def active_routers(routing: Routing) -> Set[Coord]:
    """Routers powered on by ``routing`` (every core some flow touches)."""
    active: Set[Coord] = set()
    for flows in routing.flows:
        for flow in flows:
            active.update(flow.path.cores())
    return active


def router_traffic(routing: Routing) -> Dict[Coord, float]:
    """Traffic through each router in Mb/s (hop-weighted).

    A flow of rate δ on a path with cores ``c0 .. cL`` charges δ to every
    core: the source injects, intermediate routers forward, the sink
    ejects — each is one buffer/crossbar transaction of the same width.
    """
    traffic: Dict[Coord, float] = {}
    for flows in routing.flows:
        for flow in flows:
            for core in flow.path.cores():
                traffic[core] = traffic.get(core, 0.0) + flow.rate
    return traffic


@dataclass(frozen=True)
class NetworkPowerReport:
    """Link + router power of one routing."""

    link_power: float  #: the paper's objective (leak + dynamic, quantised)
    router_dynamic: float
    router_static: float
    num_active_routers: int

    @property
    def router_power(self) -> float:
        return self.router_dynamic + self.router_static

    @property
    def total(self) -> float:
        """Whole-network power: paper links + router microarchitecture."""
        return self.link_power + self.router_power


def network_power(
    routing: Routing, router_model: RouterPowerModel
) -> NetworkPowerReport:
    """Evaluate a routing under links-plus-routers power.

    ``link_power`` follows the paper's model exactly (``inf`` when the
    routing is invalid); router dynamic power charges ``e_hop`` per hop of
    traffic; router static power charges every active router.
    """
    problem = routing.problem
    link_power = problem.power.total_power(routing.link_loads())
    dyn = 0.0
    for flows in routing.flows:
        for flow in flows:
            # hops + 1 router transactions: inject, forward x (L-1), eject
            dyn += flow.rate * (flow.path.length + 1) * router_model.e_hop
    active = active_routers(routing)
    return NetworkPowerReport(
        link_power=float(link_power),
        router_dynamic=dyn,
        router_static=router_model.p_router_leak * len(active),
        num_active_routers=len(active),
    )
