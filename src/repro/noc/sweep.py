"""Load–latency sweeps of a provisioned routing.

The classic NoC evaluation: fix a routing (and therefore the DVFS
frequency of every link, provisioned for the nominal loads), then sweep
the *offered* traffic from a trickle past the nominal point and record
packet latency and delivered throughput.  A good routing keeps latency
flat until offered load approaches what its links were provisioned for;
saturation shows as latency blow-up and a delivered/offered ratio
falling below 1.

This quantifies a deployment property the paper's system-level model
abstracts away: two routings with equal (or similar) *power* can behave
differently under bursty arrivals because their queueing headroom
differs.  ``benchmarks/test_noc_latency.py`` uses it to compare XY and
PR routings of the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.routing import Routing
from repro.noc.simulator import DeadlockError, FlitSimulator, SimulationReport
from repro.utils.rng import RngLike
from repro.utils.validation import InvalidParameterError

#: latency reported for a point that deadlocked or delivered nothing
UNSTABLE = float("inf")


@dataclass(frozen=True)
class LatencyPoint:
    """One point of a load–latency curve."""

    fraction: float  #: offered load as a multiple of the nominal rates
    injected_flits: int
    delivered_flits: int
    mean_latency: float  #: packet-weighted mean latency (cycles); inf if none
    max_link_utilization: float
    deadlocked: bool

    @property
    def delivered_ratio(self) -> float:
        """Delivered/injected over the measured window (≈1 below saturation)."""
        if self.injected_flits == 0:
            return 1.0
        return self.delivered_flits / self.injected_flits

    @property
    def stable(self) -> bool:
        """Heuristic stability flag: most injected traffic got through."""
        return not self.deadlocked and self.delivered_ratio >= 0.9


def _aggregate(report: SimulationReport, fraction: float) -> LatencyPoint:
    injected = sum(f.injected_flits for f in report.flows)
    delivered = sum(f.delivered_flits for f in report.flows)
    pkts = sum(f.delivered_packets for f in report.flows)
    if pkts:
        lat = (
            sum(
                f.mean_packet_latency * f.delivered_packets
                for f in report.flows
                if f.delivered_packets
            )
            / pkts
        )
    else:
        lat = UNSTABLE
    return LatencyPoint(
        fraction=fraction,
        injected_flits=injected,
        delivered_flits=delivered,
        mean_latency=float(lat),
        max_link_utilization=float(report.link_utilization.max()),
        deadlocked=False,
    )


def latency_sweep(
    routing: Routing,
    fractions: Sequence[float],
    *,
    cycles: int = 4000,
    warmup: int = 800,
    injection="bernoulli",
    packet_flits: int = 8,
    buffer_flits: int = 4,
    num_vcs: int = 4,
    seed: RngLike = 0,
) -> List[LatencyPoint]:
    """Run the simulator at each offered-load fraction of ``routing``.

    Link frequencies stay provisioned for the *nominal* loads; only the
    offered traffic scales.  Deadlocked points (possible only with unsafe
    VC assignments) are reported with ``deadlocked=True`` rather than
    raised, so a sweep can document where an unprotected configuration
    collapses.
    """
    if not fractions:
        raise InvalidParameterError("fractions must be non-empty")
    points: List[LatencyPoint] = []
    for frac in fractions:
        if frac <= 0:
            raise InvalidParameterError(f"fractions must be > 0, got {frac}")
        sim = FlitSimulator(
            routing,
            injection=injection,
            rate_scale=frac,
            packet_flits=packet_flits,
            buffer_flits=buffer_flits,
            num_vcs=num_vcs,
            seed=seed,
        )
        try:
            report = sim.run(cycles, warmup=warmup)
        except DeadlockError:
            points.append(
                LatencyPoint(
                    fraction=frac,
                    injected_flits=0,
                    delivered_flits=0,
                    mean_latency=UNSTABLE,
                    max_link_utilization=1.0,
                    deadlocked=True,
                )
            )
            continue
        points.append(_aggregate(report, frac))
    return points


def saturation_fraction(
    points: Sequence[LatencyPoint], *, latency_factor: float = 3.0
) -> float:
    """Estimate where the curve saturates.

    The first swept fraction whose point is unstable *or* whose latency
    exceeds ``latency_factor`` times the lowest-load latency; ``inf`` when
    the curve never saturates inside the sweep.
    """
    if not points:
        raise InvalidParameterError("points must be non-empty")
    if latency_factor <= 1.0:
        raise InvalidParameterError(
            f"latency_factor must be > 1, got {latency_factor}"
        )
    base = points[0].mean_latency
    for pt in points:
        if not pt.stable or (
            np.isfinite(base) and pt.mean_latency > latency_factor * base
        ):
            return pt.fraction
    return float("inf")
