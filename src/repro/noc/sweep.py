"""Load–latency sweeps of a provisioned routing.

The classic NoC evaluation: fix a routing (and therefore the DVFS
frequency of every link, provisioned for the nominal loads), then sweep
the *offered* traffic from a trickle past the nominal point and record
packet latency and delivered throughput.  A good routing keeps latency
flat until offered load approaches what its links were provisioned for;
saturation shows as latency blow-up and a delivered/offered ratio
falling below 1.

This quantifies a deployment property the paper's system-level model
abstracts away: two routings with equal (or similar) *power* can behave
differently under bursty arrivals because their queueing headroom
differs.  The ``noc_latency`` campaign experiment uses it to compare XY
and PR routings of the same instance.

Execution engines
-----------------

Each point runs on the array flit engine
(:class:`~repro.noc.engine.ArrayFlitSimulator`, ``engine="array"``, the
default) or the reference simulator (``engine="reference"``) — the two
are cycle-exact, so the choice never changes a curve, only its cost.
``jobs > 1`` fans the points of one sweep out to a process pool, one
task per offered-load fraction; every point's simulator is seeded
identically either way, so serial and parallel sweeps are bit-identical
point for point.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.routing import Routing
from repro.noc.engine import ArrayFlitSimulator
from repro.noc.simulator import (
    DeadlockError,
    FlitSimulator,
    FlowTable,
    SimulationReport,
    build_flow_table,
)
from repro.utils.rng import RngLike
from repro.utils.validation import InvalidParameterError

#: latency reported for a point that deadlocked or delivered nothing
UNSTABLE = float("inf")

#: engine name → simulator class (the reference simulator is the oracle)
ENGINES = {
    "array": ArrayFlitSimulator,
    "reference": FlitSimulator,
}


@dataclass(frozen=True)
class LatencyPoint:
    """One point of a load–latency curve."""

    fraction: float  #: offered load as a multiple of the nominal rates
    injected_flits: int
    delivered_flits: int
    mean_latency: float  #: packet-weighted mean latency (cycles); inf if none
    max_link_utilization: float
    deadlocked: bool

    @property
    def delivered_ratio(self) -> float:
        """Delivered/injected over the measured window (≈1 below saturation).

        Zero-injection convention: a point whose measured window saw no
        injected traffic delivered everything it was offered, so the ratio
        is **1.0** (vacuously) — the same convention as
        :attr:`repro.noc.simulator.FlowStats.achieved_fraction`.
        """
        if self.injected_flits == 0:
            return 1.0
        return self.delivered_flits / self.injected_flits

    @property
    def stable(self) -> bool:
        """Heuristic stability flag: most injected traffic got through."""
        return not self.deadlocked and self.delivered_ratio >= 0.9

    def to_jsonable(self) -> dict:
        """Exact (hex-float) snapshot of this point — the single schema
        used by every saved latency curve (CLI ``--json``, scenario
        results)."""
        return {
            "fraction": self.fraction.hex(),
            "injected_flits": self.injected_flits,
            "delivered_flits": self.delivered_flits,
            "mean_latency": self.mean_latency.hex(),
            "max_link_utilization": self.max_link_utilization.hex(),
            "deadlocked": self.deadlocked,
        }


def points_table(points: Sequence["LatencyPoint"]) -> str:
    """Human-readable latency-curve table — the single renderer shared by
    the CLI and the scenario results."""
    from repro.utils.tables import format_table

    rows = [
        [
            f"{pt.fraction:.2f}",
            f"{pt.mean_latency:.1f}" if pt.mean_latency < 1e12 else "-",
            f"{pt.delivered_ratio:.2f}",
            f"{pt.max_link_utilization:.2f}",
            "DEADLOCK" if pt.deadlocked else ("ok" if pt.stable else "sat"),
        ]
        for pt in points
    ]
    return format_table(
        ["fraction", "latency", "delivered", "max util", "state"], rows
    )


def _aggregate(report: SimulationReport, fraction: float) -> LatencyPoint:
    injected = sum(f.injected_flits for f in report.flows)
    delivered = sum(f.delivered_flits for f in report.flows)
    pkts = sum(f.delivered_packets for f in report.flows)
    if pkts:
        lat = (
            sum(
                f.mean_packet_latency * f.delivered_packets
                for f in report.flows
                if f.delivered_packets
            )
            / pkts
        )
    else:
        lat = UNSTABLE
    return LatencyPoint(
        fraction=fraction,
        injected_flits=injected,
        delivered_flits=delivered,
        mean_latency=float(lat),
        max_link_utilization=float(report.link_utilization.max()),
        deadlocked=False,
    )


def _sweep_point(
    routing: Routing,
    fraction: float,
    *,
    cycles: int,
    warmup: int,
    injection,
    packet_flits: int,
    buffer_flits: int,
    num_vcs: int,
    seed: RngLike,
    engine: str,
    flow_table: Optional[FlowTable] = None,
) -> LatencyPoint:
    """Run one offered-load fraction and fold it into a point."""
    sim = ENGINES[engine](
        routing,
        injection=injection,
        rate_scale=fraction,
        packet_flits=packet_flits,
        buffer_flits=buffer_flits,
        num_vcs=num_vcs,
        seed=seed,
        flow_table=flow_table,
    )
    try:
        report = sim.run(cycles, warmup=warmup)
    except DeadlockError:
        return LatencyPoint(
            fraction=fraction,
            injected_flits=0,
            delivered_flits=0,
            mean_latency=UNSTABLE,
            max_link_utilization=1.0,
            deadlocked=True,
        )
    return _aggregate(report, fraction)


def _sweep_point_task(args) -> LatencyPoint:
    """Module-level process-pool entry (one task per fraction)."""
    routing, fraction, kwargs = args
    return _sweep_point(routing, fraction, **kwargs)


def latency_sweep(
    routing: Routing,
    fractions: Sequence[float],
    *,
    cycles: int = 4000,
    warmup: int = 800,
    injection="bernoulli",
    packet_flits: int = 8,
    buffer_flits: int = 4,
    num_vcs: int = 4,
    seed: RngLike = 0,
    engine: str = "array",
    jobs: int = 1,
) -> List[LatencyPoint]:
    """Run the simulator at each offered-load fraction of ``routing``.

    Link frequencies stay provisioned for the *nominal* loads; only the
    offered traffic scales.  Deadlocked points (possible only with unsafe
    VC assignments) are reported with ``deadlocked=True`` rather than
    raised, so a sweep can document where an unprotected configuration
    collapses.

    ``engine`` selects the array flit engine (default) or the cycle-exact
    ``"reference"`` oracle; ``jobs > 1`` runs the points on a process
    pool, one worker task per fraction, with bit-identical results in
    fraction order (parallel execution needs a picklable ``routing`` and
    ``injection`` — registry names always are).
    """
    if not fractions:
        raise InvalidParameterError("fractions must be non-empty")
    for frac in fractions:
        if frac <= 0:
            raise InvalidParameterError(f"fractions must be > 0, got {frac}")
    if engine not in ENGINES:
        raise InvalidParameterError(
            f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
        )
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1 and isinstance(seed, np.random.Generator):
        # a live generator is shared (and advanced) across the serial
        # points but would be *copied* to every worker — the two could
        # never be bit-identical, so refuse rather than silently diverge
        raise InvalidParameterError(
            "parallel sweeps need a reproducible seed (int, SeedSequence "
            "or None), not a live numpy Generator"
        )
    kwargs = dict(
        cycles=cycles,
        warmup=warmup,
        injection=injection,
        packet_flits=packet_flits,
        buffer_flits=buffer_flits,
        num_vcs=num_vcs,
        seed=seed,
        engine=engine,
    )
    if jobs == 1 or len(fractions) == 1:
        # pay the routing flattening once for the whole curve
        table = build_flow_table(routing, num_vcs=num_vcs)
        return [
            _sweep_point(routing, frac, flow_table=table, **kwargs)
            for frac in fractions
        ]
    tasks = [(routing, frac, kwargs) for frac in fractions]
    with ProcessPoolExecutor(max_workers=min(jobs, len(fractions))) as pool:
        return list(pool.map(_sweep_point_task, tasks))


def saturation_fraction(
    points: Sequence[LatencyPoint], *, latency_factor: float = 3.0
) -> float:
    """Estimate where the curve saturates.

    The first swept fraction whose point is unstable *or* whose latency
    exceeds ``latency_factor`` times the lowest-load latency; ``inf`` when
    the curve never saturates inside the sweep.
    """
    if not points:
        raise InvalidParameterError("points must be non-empty")
    if latency_factor <= 1.0:
        raise InvalidParameterError(
            f"latency_factor must be > 1, got {latency_factor}"
        )
    base = points[0].mean_latency
    for pt in points:
        if not pt.stable or (
            np.isfinite(base) and pt.mean_latency > latency_factor * base
        ):
            return pt.fraction
    return float("inf")
