"""Structure-of-arrays wormhole engine, cycle-exact with the reference.

:class:`ArrayFlitSimulator` replays the semantics of
:class:`~repro.noc.simulator.FlitSimulator` — the same round-robin VC
arbitration order, the same budget accrual and idle cap, the same wormhole
ownership and head-of-line blocking, the same deadlock window — on flat
array state instead of per-flit Python objects:

* per-flow hop tables (``(flow, hop) → link id``, via
  :func:`repro.noc.tables.flow_link_table` and the kernel's
  ``direction_link_bases`` arithmetic) replace the reference's
  ``next_hop[(flow, link)]`` dict;
* every ``(link, vc)`` FIFO is a fixed-capacity ring buffer slice of one
  packed flat array per flit lane (flow / packet / flit index /
  injection cycle / next link), with head+count cursors — no deques, no
  ``_Flit`` objects, no tuple-keyed dict lookups;
* injection is batched: the whole arrival schedule is drawn up front by
  :func:`repro.noc.traffic.precompute_arrivals` (vectorised Bernoulli
  blocks, :class:`~repro.utils.rng.StreamReplica`-replayed bursts),
  draw-for-draw identical to the reference's per-cycle scalar draws;
* links advance in grouped passes gated by two exact occupancy counters —
  ``feed[l]`` (flits anywhere whose next hop is ``l``) and ``occ[l]``
  (flits resident in ``l``'s buffers).  ``feed[l] == 0`` proves the
  reference's ``_try_forward`` would return ``None`` and ``occ[l] == 0``
  proves its ejection scan would find nothing, so skipping those links
  changes no observable state; all remaining budget/cap updates are the
  same float operations per link.

The arbitration-order contract this engine (and any future one) must
honour is documented in ``docs/performance.md`` §6: links are serviced in
ascending link-id order *within* a cycle with state visible immediately
(a flit forwarded by link ``a`` can be forwarded again by link ``b > a``
in the same cycle), ejection of the whole fabric completes before any
traversal, VCs are scanned round-robin from the per-link pointer, and
feeder queues are polled in flow-index order.

The reference simulator stays as the oracle:
``tests/probes/noc_probes.json`` pins both engines to reports recorded
from the pre-engine simulator, and ``tests/test_noc_engine.py`` fuzzes
the equivalence (meshes, VC counts, buffer depths, injection models,
faulty/derated platforms) report-for-report.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.routing import Routing
from repro.noc.deadlock import VcAssignment, direction_class_vc
from repro.noc.simulator import (
    DeadlockError,
    FlowStats,
    FlowTable,
    PacketRecord,
    SimulationReport,
    build_flow_table,
)
from repro.noc.traffic import injection_factory, precompute_arrivals
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError


class ArrayFlitSimulator:
    """Array-state wormhole simulator (drop-in for ``FlitSimulator``).

    Accepts exactly the parameters of
    :class:`~repro.noc.simulator.FlitSimulator` and produces bit-identical
    :class:`~repro.noc.simulator.SimulationReport` objects (flows,
    utilisation, packet records, deadlock behaviour) for every
    configuration, at a fraction of the wall-clock cost.  See the module
    docstring for the state layout and the equivalence argument.
    """

    def __init__(
        self,
        routing: Routing,
        *,
        num_vcs: int = 4,
        vc_of: VcAssignment = direction_class_vc,
        buffer_flits: int = 4,
        packet_flits: int = 8,
        deadlock_window: int = 1000,
        injection="deterministic",
        rate_scale: float = 1.0,
        seed: RngLike = 0,
        collect_packets: bool = False,
        flow_table: Optional[FlowTable] = None,
    ):
        if num_vcs < 1:
            raise InvalidParameterError(f"num_vcs must be >= 1, got {num_vcs}")
        if buffer_flits < 1:
            raise InvalidParameterError(
                f"buffer_flits must be >= 1, got {buffer_flits}"
            )
        if packet_flits < 1:
            raise InvalidParameterError(
                f"packet_flits must be >= 1, got {packet_flits}"
            )
        if deadlock_window < 1:
            raise InvalidParameterError(
                f"deadlock_window must be >= 1, got {deadlock_window}"
            )
        if not routing.is_valid():
            raise InvalidParameterError(
                "cannot simulate an invalid routing (some link exceeds BW)"
            )
        if rate_scale <= 0:
            raise InvalidParameterError(
                f"rate_scale must be > 0, got {rate_scale}"
            )
        self.injection = injection_factory(injection)
        self.rate_scale = rate_scale
        self._rng = ensure_rng(seed)
        self.collect_packets = collect_packets
        self.routing = routing
        problem = routing.problem
        self.mesh = problem.mesh
        power = problem.power
        loads = routing.link_loads()
        freqs = power.quantize(loads)
        self.speed = np.where(freqs > 0, freqs / power.bandwidth, 0.0)
        self.num_vcs = num_vcs
        self.buffer_flits = buffer_flits
        self.packet_flits = packet_flits
        self.deadlock_window = deadlock_window

        if flow_table is None:
            flow_table = build_flow_table(routing, num_vcs=num_vcs, vc_of=vc_of)
        elif flow_table.num_vcs != num_vcs:
            raise InvalidParameterError(
                f"flow table was built for {flow_table.num_vcs} VCs, "
                f"simulator runs {num_vcs}"
            )
        self.flow_table = flow_table
        self.flow_paths: List[List[int]] = [list(p) for p in flow_table.paths]
        self.flow_comm: List[int] = list(flow_table.comm)
        self.flow_vc: List[int] = list(flow_table.vc)
        self.flow_rate_frac: List[float] = [
            rate * rate_scale / power.bandwidth for rate in flow_table.rates
        ]

        # ---- compact link universe: only links some flow traverses -----
        used = sorted({lid for p in self.flow_paths for lid in p})
        self._used_links = used
        L = len(used)
        self._num_used = L
        g2c = {lid: cl for cl, lid in enumerate(used)}
        # per-flow compact paths, successor tables and hop positions
        self._cpaths: List[List[int]] = [
            [g2c[lid] for lid in p] for p in self.flow_paths
        ]
        self._next_after: List[List[int]] = [
            cp[1:] + [-1] for cp in self._cpaths
        ]
        pos_of = [[-1] * L for _ in self._cpaths]
        for fi, cp in enumerate(self._cpaths):
            row = pos_of[fi]
            for p, cl in enumerate(cp):
                row[cl] = p
        self._pos_of = pos_of
        self._first_cl = [cp[0] for cp in self._cpaths]
        # feeders per (compact link, vc), in flow-index order — the exact
        # candidate order of the reference's _eligible_flit scan
        feeders: List[List[Tuple[int, int]]] = [
            [] for _ in range(L * num_vcs)
        ]
        for fi, cp in enumerate(self._cpaths):
            vc = self.flow_vc[fi]
            feeders[cp[0] * num_vcs + vc].append((fi, -1))
            for up, cl in zip(cp, cp[1:]):
                feeders[cl * num_vcs + vc].append((fi, up))
        self._feeders = [tuple(f) for f in feeders]
        self._speed_used = [float(self.speed[lid]) for lid in used]
        self._cap_used = [max(1.0, s) for s in self._speed_used]
        # observable fast-path tier (REPRO_NATIVE): when the compiled
        # extension is active the whole cycle loop runs in C, bit-identical
        from repro.native import native_kernels

        self._native = native_kernels()
        self._native_tables = None  # static flat tables, built lazily
        self.tier = "python" if self._native is None else "native"

    # ------------------------------------------------------------------
    def run(self, cycles: int, *, warmup: int = 0) -> SimulationReport:
        """Simulate ``cycles`` cycles (statistics ignore the first ``warmup``)."""
        if cycles < 1:
            raise InvalidParameterError(f"cycles must be >= 1, got {cycles}")
        if not 0 <= warmup < cycles:
            raise InvalidParameterError(
                f"warmup must lie in [0, cycles), got {warmup}"
            )
        if self._native is not None:
            from repro.native.engine import run_native

            return run_native(self, cycles, warmup=warmup)
        nf = len(self.flow_paths)
        nvc = self.num_vcs
        bf = self.buffer_flits
        pf = self.packet_flits
        pf_last = pf - 1
        L = self._num_used
        window = self.deadlock_window
        collect = self.collect_packets
        flow_comm = self.flow_comm

        # batched injection: the whole arrival schedule, drawn up front
        # with the reference's exact RNG word-consumption order
        arrivals = precompute_arrivals(
            self.injection, self.flow_rate_frac, pf, self._rng, cycles
        )
        events: List[list] = [[] for _ in range(cycles)]
        for fi in range(nf):
            arr = arrivals[fi]
            for t in np.flatnonzero(arr).tolist():
                events[t].append((fi, int(arr[t])))

        # flat state (see module docstring for the layout)
        nb = L * nvc
        nslots = nb * bf
        bflow = [0] * nslots  # flit lane: owning flow
        bpk = [0] * nslots  # flit lane: packet id (per flow, sequential)
        bk = [0] * nslots  # flit lane: index within packet
        bt = [0] * nslots  # flit lane: injection cycle
        bnext = [0] * nslots  # flit lane: next compact link (-1 = eject)
        hd = [0] * nb
        cnt = [0] * nb
        ow_f = [-1] * nb  # wormhole owner flow (-1 = channel free)
        ow_p = [0] * nb  # wormhole owner packet
        iq_t: List[List[int]] = [[] for _ in range(nf)]  # per-packet t
        iq_head = [0] * nf  # head packet id == its index in iq_t
        iq_k = [0] * nf  # flits of the head packet already departed
        iq_n = [0] * nf  # flits currently queued
        budget = [0.0] * L
        rr = [0] * L
        feed = [0] * L  # flits anywhere whose next hop is this link
        occ = [0] * L  # flits resident in this link's buffers
        in_flight = 0

        injected = [0] * nf
        delivered = [0] * nf
        delivered_pkts = [0] * nf
        latency_sum = [0.0] * nf
        packet_records: List[PacketRecord] = []
        fwd = [0] * L
        total_delivered = 0
        idle_cycles = 0
        deadlocked = False

        next_after = self._next_after
        pos_of = self._pos_of
        first_cl = self._first_cl
        feeders = self._feeders
        speed_l = self._speed_used
        cap_l = self._cap_used

        t = 0
        for t in range(cycles):
            measuring = t >= warmup
            progress = False

            # 1) arrivals (precomputed; same packet cutting and stats)
            ev = events[t]
            if ev:
                for fi, n in ev:
                    tq = iq_t[fi]
                    for _ in range(n):
                        tq.append(t)
                    add = n * pf
                    iq_n[fi] += add
                    feed[first_cl[fi]] += add
                    in_flight += add
                    if measuring:
                        injected[fi] += add

            # 2) ejection: drain head flits whose next hop is -1
            for cl in range(L):
                if not occ[cl]:
                    continue
                b0 = cl * nvc
                for vc in range(nvc):
                    b = b0 + vc
                    c = cnt[b]
                    if not c:
                        continue
                    h = hd[b]
                    sb = b * bf
                    while c and bnext[sb + h] == -1:
                        s = sb + h
                        fi = bflow[s]
                        k = bk[s]
                        h += 1
                        if h == bf:
                            h = 0
                        c -= 1
                        progress = True
                        occ[cl] -= 1
                        in_flight -= 1
                        tail = k == pf_last
                        if tail and ow_f[b] == fi and ow_p[b] == bpk[s]:
                            ow_f[b] = -1
                        if measuring:
                            delivered[fi] += 1
                            total_delivered += 1
                            if tail:
                                delivered_pkts[fi] += 1
                                latency_sum[fi] += t - bt[s]
                                if collect:
                                    packet_records.append(
                                        PacketRecord(
                                            flow=fi,
                                            comm=flow_comm[fi],
                                            injected_at=bt[s],
                                            completed_at=t,
                                        )
                                    )
                    hd[b] = h
                    cnt[b] = c

            # 3) traversal: budget accrual + wormhole RR arbitration
            for cl in range(L):
                bdg = budget[cl] + speed_l[cl]
                if bdg >= 1.0 and feed[cl]:
                    b0 = cl * nvc
                    while True:
                        # -- the reference's _try_forward, inlined --------
                        start = rr[cl]
                        moved = False
                        for off in range(nvc):
                            vc = start + off
                            if vc >= nvc:
                                vc -= nvc
                            b = b0 + vc
                            c_b = cnt[b]
                            if c_b >= bf:
                                continue
                            of = ow_f[b]
                            for fi, up in feeders[b]:
                                if up < 0:
                                    if not iq_n[fi]:
                                        continue
                                    pk = iq_head[fi]
                                    k = iq_k[fi]
                                    us = -1
                                else:
                                    ub = up * nvc + vc
                                    cu = cnt[ub]
                                    if not cu:
                                        continue
                                    us = ub * bf + hd[ub]
                                    if bflow[us] != fi:
                                        continue
                                    pk = bpk[us]
                                    k = bk[us]
                                if of >= 0:
                                    if fi != of or pk != ow_p[b]:
                                        continue
                                elif k != 0:
                                    # only a head flit claims a free channel
                                    continue
                                # ---- move the flit across cl ------------
                                tail = k == pf_last
                                if us < 0:
                                    tstamp = iq_t[fi][pk]
                                    kk = k + 1
                                    if kk == pf:
                                        iq_head[fi] = pk + 1
                                        iq_k[fi] = 0
                                    else:
                                        iq_k[fi] = kk
                                    iq_n[fi] -= 1
                                else:
                                    tstamp = bt[us]
                                    hu = hd[ub] + 1
                                    hd[ub] = 0 if hu == bf else hu
                                    cnt[ub] = cu - 1
                                    occ[up] -= 1
                                    if (
                                        tail
                                        and ow_f[ub] == fi
                                        and ow_p[ub] == pk
                                    ):
                                        ow_f[ub] = -1
                                s = b * bf + hd[b] + c_b
                                if s >= b * bf + bf:
                                    s -= bf
                                bflow[s] = fi
                                bpk[s] = pk
                                bk[s] = k
                                bt[s] = tstamp
                                nx = next_after[fi][pos_of[fi][cl]]
                                bnext[s] = nx
                                cnt[b] = c_b + 1
                                occ[cl] += 1
                                feed[cl] -= 1
                                if nx >= 0:
                                    feed[nx] += 1
                                if tail:
                                    ow_f[b] = -1
                                else:
                                    ow_f[b] = fi
                                    ow_p[b] = pk
                                vcn = vc + 1
                                rr[cl] = 0 if vcn == nvc else vcn
                                moved = True
                                break
                            if moved:
                                break
                        if not moved:
                            break
                        bdg -= 1.0
                        progress = True
                        if measuring:
                            fwd[cl] += 1
                        if bdg < 1.0:
                            break
                # cap idle budget so long-idle links can't burst
                cap = cap_l[cl]
                budget[cl] = cap if bdg > cap else bdg

            if progress or not in_flight:
                idle_cycles = 0
            else:
                idle_cycles += 1
                if idle_cycles >= window:
                    deadlocked = True
                    break

        if deadlocked:
            raise DeadlockError(
                f"no flit moved for {self.deadlock_window} cycles at t={t} "
                "with traffic in flight — wormhole deadlock"
            )
        measured = max(1, t + 1 - warmup)
        forwarded = np.zeros(self.mesh.num_links)
        if L:
            forwarded[self._used_links] = fwd
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                self.speed > 0, forwarded / (measured * self.speed), 0.0
            )
        flows = tuple(
            FlowStats(
                comm_index=self.flow_comm[fi],
                rate_fraction=self.flow_rate_frac[fi],
                injected_flits=injected[fi],
                delivered_flits=delivered[fi],
                delivered_packets=delivered_pkts[fi],
                mean_packet_latency=(
                    latency_sum[fi] / delivered_pkts[fi]
                    if delivered_pkts[fi]
                    else float("nan")
                ),
            )
            for fi in range(nf)
        )
        return SimulationReport(
            cycles=cycles,
            flows=flows,
            link_utilization=util,
            total_delivered_flits=total_delivered,
            deadlocked=False,
            packets=tuple(packet_records),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayFlitSimulator({len(self.flow_paths)} flows, "
            f"{self._num_used} links, {self.num_vcs} VCs)"
        )
