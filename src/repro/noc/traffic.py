"""Packet-injection processes for the flit simulator.

The paper characterises a communication by its sustained rate (bytes per
second); how that rate arrives in time is a deployment property the
system-level model abstracts away.  The simulator supports three arrival
models per flow, all matching the demanded rate in expectation:

* :class:`DeterministicInjection` — a fluid credit counter emits a packet
  exactly every ``packet_flits / rate`` cycles (the smoothest arrival,
  and the default: it matches the system-level model's intent);
* :class:`BernoulliInjection` — geometric inter-arrivals (each cycle a
  packet appears with probability ``rate / packet_flits``), the standard
  open-loop NoC evaluation model;
* :class:`BurstInjection` — a two-state Markov-modulated Bernoulli
  process: an OFF state injecting nothing and an ON state injecting at
  ``rate / duty`` so that the long-run average still meets the demand;
  ``burst_length`` controls the expected ON-run in packets.

Burstier arrivals stress queues harder at equal mean load, which is what
the latency sweeps of :mod:`repro.noc.sweep` quantify.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.utils.rng import StreamReplica
from repro.utils.validation import InvalidParameterError


class InjectionProcess(Protocol):
    """Per-flow arrival process driven once per cycle."""

    def packets(self) -> int:
        """Number of packets to inject this cycle."""
        ...  # pragma: no cover - protocol


#: builds a process for (flow rate fraction in flits/cycle, packet size, rng)
InjectionFactory = Callable[
    [float, int, np.random.Generator], InjectionProcess
]


class DeterministicInjection:
    """Fluid credit counter — one packet every ``packet_flits/rate`` cycles."""

    __slots__ = ("rate_frac", "packet_flits", "credit")

    def __init__(
        self,
        rate_frac: float,
        packet_flits: int,
        rng: Optional[np.random.Generator] = None,
    ):
        _check_rate(rate_frac)
        self.rate_frac = rate_frac
        self.packet_flits = packet_flits
        self.credit = 0.0

    def packets(self) -> int:
        self.credit += self.rate_frac
        n = 0
        while self.credit >= self.packet_flits:
            self.credit -= self.packet_flits
            n += 1
        return n


class BernoulliInjection:
    """Geometric inter-arrivals with mean rate ``rate_frac`` flits/cycle."""

    __slots__ = ("p", "rng")

    def __init__(
        self, rate_frac: float, packet_flits: int, rng: np.random.Generator
    ):
        _check_rate(rate_frac)
        self.p = rate_frac / packet_flits
        if self.p > 1.0:
            raise InvalidParameterError(
                f"Bernoulli injection needs rate <= packet size; got "
                f"{rate_frac} flits/cycle over {packet_flits}-flit packets"
            )
        self.rng = rng

    def packets(self) -> int:
        return int(self.rng.random() < self.p)


class BurstInjection:
    """Two-state MMBP: OFF (silent) / ON (Bernoulli at ``rate/duty``).

    Parameters
    ----------
    duty:
        Long-run fraction of time in the ON state (0 < duty <= 1); the ON
        injection probability is scaled by ``1/duty`` so the mean rate is
        preserved.  ``duty=1`` degenerates to :class:`BernoulliInjection`.
    burst_length:
        Expected ON-dwell measured in packets.
    """

    __slots__ = ("p_on", "stay_on", "stay_off", "on", "rng")

    def __init__(
        self,
        rate_frac: float,
        packet_flits: int,
        rng: np.random.Generator,
        *,
        duty: float = 0.3,
        burst_length: float = 8.0,
    ):
        _check_rate(rate_frac)
        if not 0.0 < duty <= 1.0:
            raise InvalidParameterError(f"duty must lie in (0, 1], got {duty}")
        if burst_length <= 0:
            raise InvalidParameterError(
                f"burst_length must be > 0, got {burst_length}"
            )
        self.p_on = min(1.0, rate_frac / packet_flits / duty)
        # expected ON dwell = burst_length packets = burst_length / p_on cycles
        dwell_on = max(1.0, burst_length / max(self.p_on, 1e-12))
        dwell_off = dwell_on * (1.0 - duty) / duty
        self.stay_on = 1.0 - 1.0 / dwell_on
        self.stay_off = 1.0 - 1.0 / max(dwell_off, 1e-12) if dwell_off > 0 else 0.0
        self.on = rng.random() < duty
        self.rng = rng

    def packets(self) -> int:
        if self.on:
            emitted = int(self.rng.random() < self.p_on)
            if self.rng.random() > self.stay_on:
                self.on = False
            return emitted
        if self.rng.random() > self.stay_off:
            self.on = True
        return 0


def _check_rate(rate_frac: float) -> None:
    if rate_frac < 0:
        raise InvalidParameterError(
            f"injection rate must be >= 0 flits/cycle, got {rate_frac}"
        )


#: name → factory registry used by the simulator's ``injection=`` knob
INJECTION_MODELS: dict[str, InjectionFactory] = {
    "deterministic": DeterministicInjection,
    "bernoulli": BernoulliInjection,
    "burst": BurstInjection,
}


def _replay_burst(proc: BurstInjection, cycles: int) -> np.ndarray:
    """Replay the MMBP state machine on block-fetched raw words.

    ``proc`` has already drawn its initial-state word from its generator;
    the per-cycle draws are served by a :class:`~repro.utils.rng.
    StreamReplica` wrapped around the *same* generator, so the word stream
    is consumed in exactly the order ``packets()`` would consume it.
    """
    rep = StreamReplica(proc.rng)
    random = rep.random
    p_on, stay_on, stay_off = proc.p_on, proc.stay_on, proc.stay_off
    on = proc.on
    counts = [0] * cycles
    for t in range(cycles):
        if on:
            if random() < p_on:
                counts[t] = 1
            if random() > stay_on:
                on = False
        elif random() > stay_off:
            on = True
    return np.asarray(counts, dtype=np.int64)


def precompute_arrivals(
    factory: InjectionFactory,
    rate_fracs: Sequence[float],
    packet_flits: int,
    rng: np.random.Generator,
    cycles: int,
) -> List[np.ndarray]:
    """Per-flow packet-arrival schedules for an open-loop run.

    Returns ``arrivals`` with ``arrivals[f][t]`` = packets flow ``f``
    injects at cycle ``t`` — **bit-identical** to constructing the
    injection processes inside :meth:`FlitSimulator.run
    <repro.noc.simulator.FlitSimulator.run>` and calling ``packets()``
    once per cycle.  Arrival processes are open loop (they never observe
    network state), so the whole schedule can be drawn up front; this is
    what lets the array engine batch injection.

    The RNG draw-order contract of the reference simulator is replayed
    exactly: one ``rng.integers(2**63)`` seeding draw per flow, in flow
    order, each feeding a private child generator; Bernoulli flows then
    draw one vectorised ``random(cycles)`` block (the same words, in the
    same order, as ``cycles`` scalar draws), and burst flows replay their
    two-state machine on a :class:`~repro.utils.rng.StreamReplica` over
    the child stream.  Every other factory — the draw-free deterministic
    model included — is driven through ``packets()`` directly, which is
    bit-identical by construction.
    """
    out: List[np.ndarray] = []
    for rate_frac in rate_fracs:
        child = np.random.default_rng(rng.integers(2**63))
        proc = factory(rate_frac, packet_flits, child)
        if factory is BernoulliInjection:
            out.append((child.random(cycles) < proc.p).astype(np.int64))
        elif factory is BurstInjection:
            out.append(_replay_burst(proc, cycles))
        else:
            out.append(
                np.fromiter(
                    (proc.packets() for _ in range(cycles)),
                    dtype=np.int64,
                    count=cycles,
                )
            )
    return out


def injection_factory(name_or_factory) -> InjectionFactory:
    """Resolve a factory from a registry name (or pass a factory through)."""
    if callable(name_or_factory):
        return name_or_factory
    try:
        return INJECTION_MODELS[name_or_factory]
    except KeyError:
        raise InvalidParameterError(
            f"unknown injection model {name_or_factory!r}; "
            f"available: {sorted(INJECTION_MODELS)}"
        ) from None
