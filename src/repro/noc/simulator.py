"""Cycle-based wormhole NoC simulator driven by a computed routing.

The simulator deploys a :class:`~repro.core.routing.Routing` the way the
paper envisions ("a table-driven scheduling algorithm"): every flow follows
its fixed path, links run at the discrete frequency the power model
assigns to their load, and packets are wormhole-switched through per-link,
per-virtual-channel FIFO buffers.

Model (one *cycle* = one flit time of a full-speed link):

* link ℓ accrues ``speed_ℓ = f_ℓ / BW`` flits of budget per cycle and
  forwards a flit whenever its budget reaches 1;
* each ``(link, vc)`` has a downstream FIFO of ``buffer_flits`` flits; only
  the FIFO head may advance (head-of-line blocking);
* wormhole ownership: once a packet's head flit wins a ``(link, vc)``, the
  channel is dedicated to that packet until its tail passes;
* arbitration is round-robin over VCs per link;
* sinks eject at unbounded rate; sources inject ``rate / BW`` flits per
  cycle into unbounded injection queues, cut into ``packet_flits``-sized
  packets.

With a single VC, routings whose channel dependency graph is cyclic can
and do deadlock — the simulator detects global no-progress and raises
:class:`DeadlockError`.  With the direction-class VC assignment (see
:mod:`repro.noc.deadlock`) every Manhattan routing is deadlock-free.

This module is the **reference** implementation — the readable oracle the
structure-of-arrays engine (:mod:`repro.noc.engine`) is proven
cycle-exact against.  Prefer the engine (or the ``engine=`` default of
:func:`repro.noc.sweep.latency_sweep`) for anything measured in seconds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.routing import Routing
from repro.noc.deadlock import VcAssignment, comm_vcs, direction_class_vc
from repro.noc.tables import flow_link_table
from repro.noc.traffic import injection_factory
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError, ReproError


class DeadlockError(ReproError):
    """The network made no progress for the configured window."""


@dataclass(frozen=True)
class FlowTable:
    """Flattened per-flow deployment metadata, shared by both flit engines.

    Flattening a routing — communications in problem order, each
    communication's flows in routing order — yields one traffic class per
    flow: its hop table (link ids via the flat kernel arithmetic of
    :func:`repro.noc.tables.flow_link_table`), its owning communication,
    its virtual channel and its *raw* rate in Mb/s.  Rate scaling and the
    bandwidth division happen in the simulators (``rate * rate_scale /
    BW``, in exactly that order) so a shared table cannot perturb the
    float math of any sweep point.

    Build once with :func:`build_flow_table` and pass the same table to
    every simulator of a sweep — the flattening (direction lookups, VC
    assignment, hop-table arithmetic) is then paid once per routing
    instead of once per sweep point.
    """

    num_vcs: int
    paths: Tuple[Tuple[int, ...], ...]  #: link ids per hop, per flow
    comm: Tuple[int, ...]  #: owning communication index per flow
    vc: Tuple[int, ...]  #: virtual channel per flow
    rates: Tuple[float, ...]  #: raw flow rates (Mb/s), unscaled


def build_flow_table(
    routing: Routing,
    *,
    num_vcs: int = 4,
    vc_of: VcAssignment = direction_class_vc,
) -> FlowTable:
    """Flatten ``routing`` into a :class:`FlowTable`.

    ``direction_of`` lookups are memoised per endpoint pair and the VC
    assignment is evaluated once per communication
    (:func:`repro.noc.deadlock.comm_vcs`), matching the reference
    flattening bit for bit.
    """
    paths = flow_link_table(routing)
    comm: List[int] = []
    vcs: List[int] = []
    rates: List[float] = []
    per_comm_vc = comm_vcs(routing, vc_of)
    for i, flows in enumerate(routing.flows):
        vc = per_comm_vc[i]
        if not 0 <= vc < num_vcs:
            raise InvalidParameterError(
                f"vc assignment returned {vc}, outside [0, {num_vcs})"
            )
        for f in flows:
            comm.append(i)
            vcs.append(vc)
            rates.append(f.rate)
    return FlowTable(
        num_vcs=num_vcs,
        paths=tuple(paths),
        comm=tuple(comm),
        vc=tuple(vcs),
        rates=tuple(rates),
    )


@dataclass(frozen=True)
class FlowStats:
    """Per-flow outcome of a simulation run."""

    comm_index: int
    rate_fraction: float  #: demanded injection rate in flits/cycle
    injected_flits: int
    delivered_flits: int
    delivered_packets: int
    mean_packet_latency: float  #: cycles, tail-in to tail-out; NaN if none

    @property
    def achieved_fraction(self) -> float:
        """Delivered/demanded throughput ratio (measured over the run).

        Zero-injection convention: a flow that injected nothing during the
        measured window demanded nothing, so its ratio is **1.0**
        (vacuously achieved) — the same convention as
        :attr:`repro.noc.sweep.LatencyPoint.delivered_ratio`, so idle flows
        never drag aggregate minima to zero.
        """
        if self.injected_flits == 0:
            return 1.0
        return self.delivered_flits / self.injected_flits


@dataclass(frozen=True)
class PacketRecord:
    """One delivered packet (collected when ``collect_packets=True``)."""

    flow: int  #: simulator flow index (one comm may own several flows)
    comm: int  #: communication index in the problem
    injected_at: int  #: cycle the packet entered its injection queue
    completed_at: int  #: cycle its tail flit ejected at the sink


@dataclass(frozen=True)
class SimulationReport:
    """Aggregate outcome of a simulation run."""

    cycles: int
    flows: Tuple[FlowStats, ...]
    link_utilization: np.ndarray  #: flits forwarded / (cycles * speed)
    total_delivered_flits: int
    deadlocked: bool
    packets: Tuple[PacketRecord, ...] = ()  #: empty unless collected

    def utilization_of(self, lid: int) -> float:
        return float(self.link_utilization[lid])


class _Flit:
    __slots__ = ("flow", "packet", "index", "is_tail", "injected_at")

    def __init__(self, flow: int, packet: int, index: int, is_tail: bool, t: int):
        self.flow = flow
        self.packet = packet
        self.index = index
        self.is_tail = is_tail
        self.injected_at = t


class FlitSimulator:
    """Execute a routing at flit granularity.

    Parameters
    ----------
    routing:
        A valid routing (loads within bandwidth) of any split degree; each
        flow becomes an independent traffic class with its own path.
    num_vcs:
        Virtual channels per link; must cover the range of ``vc_of``.
    vc_of:
        Per-flow VC assignment; defaults to the deadlock-free
        direction-class scheme (needs ``num_vcs >= 4``).
    buffer_flits:
        FIFO depth of each ``(link, vc)`` buffer.
    packet_flits:
        Flits per packet.
    deadlock_window:
        Cycles of global no-progress (with traffic in flight) after which
        :class:`DeadlockError` is raised.
    injection:
        Arrival model per flow: a name from
        :data:`repro.noc.traffic.INJECTION_MODELS` ("deterministic" —
        the default fluid model, "bernoulli", "burst") or a factory
        ``(rate_frac, packet_flits, rng) -> InjectionProcess``.
    rate_scale:
        Multiplier on every flow's injected traffic.  Link speeds stay at
        the frequencies the power model assigns to the *nominal* routing
        loads, so sweeping ``rate_scale`` toward (and past) 1.0 traces the
        load–latency curve of the provisioned network (see
        :mod:`repro.noc.sweep`).
    seed:
        RNG seed for stochastic injection models.
    flow_table:
        Optional pre-built :class:`FlowTable` (``build_flow_table``) so a
        sweep pays the routing flattening once; must have been built with
        the same ``num_vcs``.  When given, ``vc_of`` is ignored.
    """

    def __init__(
        self,
        routing: Routing,
        *,
        num_vcs: int = 4,
        vc_of: VcAssignment = direction_class_vc,
        buffer_flits: int = 4,
        packet_flits: int = 8,
        deadlock_window: int = 1000,
        injection="deterministic",
        rate_scale: float = 1.0,
        seed: RngLike = 0,
        collect_packets: bool = False,
        flow_table: Optional[FlowTable] = None,
    ):
        if num_vcs < 1:
            raise InvalidParameterError(f"num_vcs must be >= 1, got {num_vcs}")
        if buffer_flits < 1:
            raise InvalidParameterError(
                f"buffer_flits must be >= 1, got {buffer_flits}"
            )
        if packet_flits < 1:
            raise InvalidParameterError(
                f"packet_flits must be >= 1, got {packet_flits}"
            )
        if deadlock_window < 1:
            raise InvalidParameterError(
                f"deadlock_window must be >= 1, got {deadlock_window}"
            )
        if not routing.is_valid():
            raise InvalidParameterError(
                "cannot simulate an invalid routing (some link exceeds BW)"
            )
        if rate_scale <= 0:
            raise InvalidParameterError(
                f"rate_scale must be > 0, got {rate_scale}"
            )
        self.injection = injection_factory(injection)
        self.rate_scale = rate_scale
        self._rng = ensure_rng(seed)
        self.collect_packets = collect_packets
        self.routing = routing
        problem = routing.problem
        self.mesh = problem.mesh
        power = problem.power
        loads = routing.link_loads()
        freqs = power.quantize(loads)
        self.speed = np.where(freqs > 0, freqs / power.bandwidth, 0.0)
        self.num_vcs = num_vcs
        self.buffer_flits = buffer_flits
        self.packet_flits = packet_flits
        self.deadlock_window = deadlock_window

        # flatten flows (memoised direction/VC lookups; reusable per sweep)
        if flow_table is None:
            flow_table = build_flow_table(routing, num_vcs=num_vcs, vc_of=vc_of)
        elif flow_table.num_vcs != num_vcs:
            raise InvalidParameterError(
                f"flow table was built for {flow_table.num_vcs} VCs, "
                f"simulator runs {num_vcs}"
            )
        self.flow_table = flow_table
        self.flow_paths: List[List[int]] = [list(p) for p in flow_table.paths]
        self.flow_comm: List[int] = list(flow_table.comm)
        self.flow_vc: List[int] = list(flow_table.vc)
        self.flow_rate_frac: List[float] = [
            rate * rate_scale / power.bandwidth for rate in flow_table.rates
        ]

        # per link: the (flow, upstream link) pairs that may feed it
        # (upstream None = the flow's injection queue)
        self._feeders: Dict[int, List[Tuple[int, Optional[int]]]] = {}
        for fi, path in enumerate(self.flow_paths):
            self._feeders.setdefault(path[0], []).append((fi, None))
            for a, b in zip(path, path[1:]):
                self._feeders.setdefault(b, []).append((fi, a))

    # ------------------------------------------------------------------
    def run(self, cycles: int, *, warmup: int = 0) -> SimulationReport:
        """Simulate ``cycles`` cycles (statistics ignore the first ``warmup``)."""
        if cycles < 1:
            raise InvalidParameterError(f"cycles must be >= 1, got {cycles}")
        if not 0 <= warmup < cycles:
            raise InvalidParameterError(
                f"warmup must lie in [0, cycles), got {warmup}"
            )
        nf = len(self.flow_paths)
        n_links = self.mesh.num_links
        nvc = self.num_vcs

        buffers: Dict[Tuple[int, int], Deque[_Flit]] = {}
        owner: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {}
        inject_q: List[Deque[_Flit]] = [deque() for _ in range(nf)]
        injectors = [
            self.injection(
                self.flow_rate_frac[fi],
                self.packet_flits,
                np.random.default_rng(self._rng.integers(2**63)),
            )
            for fi in range(nf)
        ]
        packet_counter = [0] * nf
        budget = np.zeros(n_links)
        rr_next_vc = [0] * n_links

        injected = [0] * nf
        delivered = [0] * nf
        delivered_pkts = [0] * nf
        latency_sum = [0.0] * nf
        packet_records: List[PacketRecord] = []
        forwarded = np.zeros(n_links)
        total_delivered = 0
        idle_cycles = 0
        deadlocked = False

        used_links = sorted({l for p in self.flow_paths for l in p})
        next_hop: Dict[Tuple[int, int], Optional[int]] = {}
        first_flows: Dict[int, List[int]] = {}
        for fi, path in enumerate(self.flow_paths):
            first_flows.setdefault(path[0], []).append(fi)
            for a, b in zip(path, path[1:]):
                next_hop[(fi, a)] = b
            next_hop[(fi, path[-1])] = None

        for t in range(cycles):
            measuring = t >= warmup
            progress = False

            # 1) arrivals: the per-flow injection process cuts packets
            for fi in range(nf):
                for _ in range(injectors[fi].packets()):
                    pk = packet_counter[fi]
                    packet_counter[fi] += 1
                    for k in range(self.packet_flits):
                        inject_q[fi].append(
                            _Flit(fi, pk, k, k == self.packet_flits - 1, t)
                        )
                    if measuring:
                        injected[fi] += self.packet_flits

            # 2) ejection: drain flits whose next hop is None
            for lid in used_links:
                for vc in range(nvc):
                    buf = buffers.get((lid, vc))
                    if not buf:
                        continue
                    while buf and next_hop[(buf[0].flow, lid)] is None:
                        flit = buf.popleft()
                        progress = True
                        if owner.get((lid, vc)) == (flit.flow, flit.packet) and flit.is_tail:
                            owner[(lid, vc)] = None
                        if measuring:
                            delivered[flit.flow] += 1
                            total_delivered += 1
                            if flit.is_tail:
                                delivered_pkts[flit.flow] += 1
                                latency_sum[flit.flow] += t - flit.injected_at
                                if self.collect_packets:
                                    packet_records.append(
                                        PacketRecord(
                                            flow=flit.flow,
                                            comm=self.flow_comm[flit.flow],
                                            injected_at=flit.injected_at,
                                            completed_at=t,
                                        )
                                    )

            # 3) link traversal with wormhole ownership + RR over VCs
            for lid in used_links:
                budget[lid] += self.speed[lid]
                while budget[lid] >= 1.0:
                    moved = self._try_forward(
                        lid, rr_next_vc, buffers, owner, inject_q, first_flows,
                        next_hop,
                    )
                    if moved is None:
                        break
                    budget[lid] -= 1.0
                    progress = True
                    if measuring:
                        forwarded[lid] += 1
                # cap idle budget so long-idle links can't burst unrealistically
                budget[lid] = min(budget[lid], max(1.0, self.speed[lid]))

            in_flight = any(inject_q[fi] for fi in range(nf)) or any(
                buffers.get((l, v)) for l in used_links for v in range(nvc)
            )
            if progress or not in_flight:
                idle_cycles = 0
            else:
                idle_cycles += 1
                if idle_cycles >= self.deadlock_window:
                    deadlocked = True
                    break

        measured = max(1, (t + 1 if not deadlocked else t) - warmup)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                self.speed > 0, forwarded / (measured * self.speed), 0.0
            )
        flows = tuple(
            FlowStats(
                comm_index=self.flow_comm[fi],
                rate_fraction=self.flow_rate_frac[fi],
                injected_flits=injected[fi],
                delivered_flits=delivered[fi],
                delivered_packets=delivered_pkts[fi],
                mean_packet_latency=(
                    latency_sum[fi] / delivered_pkts[fi]
                    if delivered_pkts[fi]
                    else float("nan")
                ),
            )
            for fi in range(nf)
        )
        if deadlocked:
            raise DeadlockError(
                f"no flit moved for {self.deadlock_window} cycles at t={t} "
                "with traffic in flight — wormhole deadlock"
            )
        return SimulationReport(
            cycles=cycles,
            flows=flows,
            link_utilization=util,
            total_delivered_flits=total_delivered,
            deadlocked=False,
            packets=tuple(packet_records),
        )

    # ------------------------------------------------------------------
    def _try_forward(
        self,
        lid: int,
        rr_next_vc: List[int],
        buffers: Dict[Tuple[int, int], Deque[_Flit]],
        owner: Dict[Tuple[int, int], Optional[Tuple[int, int]]],
        inject_q: List[Deque[_Flit]],
        first_flows: Dict[int, List[int]],
        next_hop: Dict[Tuple[int, int], Optional[int]],
    ) -> Optional[int]:
        """Move one flit across ``lid`` if some VC has an eligible head flit.

        Returns the winning VC, or ``None``.  Eligibility: the flit sits at
        the head of its upstream queue (the injection queue for the flow's
        first link, the previous link's buffer otherwise), the downstream
        ``(lid, vc)`` buffer has space, and wormhole ownership permits it.
        """
        nvc = self.num_vcs
        start = rr_next_vc[lid]
        for off in range(nvc):
            vc = (start + off) % nvc
            buf = buffers.setdefault((lid, vc), deque())
            if len(buf) >= self.buffer_flits:
                continue
            own = owner.get((lid, vc))
            flit = self._eligible_flit(lid, vc, own, buffers, inject_q, first_flows)
            if flit is None:
                continue
            # dequeue from upstream
            src_q = self._upstream_queue(flit.flow, lid, buffers, inject_q)
            assert src_q[0] is flit
            src_q.popleft()
            # release upstream ownership when the tail leaves
            up = self._upstream_link(flit.flow, lid)
            if up is not None and flit.is_tail:
                if owner.get((up, vc)) == (flit.flow, flit.packet):
                    owner[(up, vc)] = None
            buf.append(flit)
            owner[(lid, vc)] = None if flit.is_tail else (flit.flow, flit.packet)
            rr_next_vc[lid] = (vc + 1) % nvc
            return vc
        return None

    def _upstream_link(self, flow: int, lid: int) -> Optional[int]:
        path = self.flow_paths[flow]
        k = path.index(lid)
        return path[k - 1] if k > 0 else None

    def _upstream_queue(
        self,
        flow: int,
        lid: int,
        buffers: Dict[Tuple[int, int], Deque[_Flit]],
        inject_q: List[Deque[_Flit]],
    ) -> Deque[_Flit]:
        up = self._upstream_link(flow, lid)
        if up is None:
            return inject_q[flow]
        return buffers[(up, self.flow_vc[flow])]

    def _eligible_flit(
        self,
        lid: int,
        vc: int,
        own: Optional[Tuple[int, int]],
        buffers: Dict[Tuple[int, int], Deque[_Flit]],
        inject_q: List[Deque[_Flit]],
        first_flows: Dict[int, List[int]],
    ) -> Optional[_Flit]:
        """Head flit allowed to cross ``(lid, vc)`` now, if any."""
        candidates: List[Deque[_Flit]] = []
        for fi, up in self._feeders.get(lid, []):
            if self.flow_vc[fi] != vc:
                continue
            if up is None:
                if inject_q[fi]:
                    candidates.append(inject_q[fi])
            else:
                buf = buffers.get((up, vc))
                if buf and buf[0].flow == fi:
                    candidates.append(buf)
        for q in candidates:
            flit = q[0]
            if own is not None:
                if (flit.flow, flit.packet) == own:
                    return flit
                continue
            if flit.index == 0:  # only a head flit may claim a free channel
                return flit
        return None
