"""Flit-level NoC validation substrate.

The paper routes *flows* and assumes "a deadlock avoidance technique is
used (such as resource ordering [5] or escape channels [3])" and a
table-driven deployment.  This package closes that loop:

* :mod:`repro.noc.deadlock` — channel-dependency-graph (CDG) analysis of a
  computed routing, plus the *direction-class* virtual-channel assignment
  (a resource-ordering scheme: every Manhattan path of direction ``d``
  only ever turns between the two link orientations of its quadrant, so
  giving each direction its own VC makes every per-VC CDG acyclic);
* :mod:`repro.noc.simulator` — the cycle-based wormhole *reference*
  simulator that executes a routing's tables with DVFS-scaled link
  speeds, measuring per-flow throughput, packet latency and per-link
  utilisation — and demonstrating real deadlock when the CDG analysis
  says so;
* :mod:`repro.noc.engine` — the structure-of-arrays wormhole engine,
  cycle-exact with the reference (probe-pinned and fuzz-proven) at a
  fraction of the cost; the default engine of every sweep;
* :mod:`repro.noc.traffic` — deterministic / Bernoulli / bursty arrival
  processes, all meeting the demanded rates in expectation, plus the
  batched arrival precomputation the array engine injects from;
* :mod:`repro.noc.sweep` — load–latency curves of a provisioned routing
  (offered traffic swept past nominal, link DVFS held fixed), with an
  ``engine=`` switch and a one-process-per-fraction parallel runner;
* :mod:`repro.noc.router_power` — Orion-style buffer/crossbar/arbiter
  energy plus router leakage, to re-examine XY vs Manhattan under total
  network power rather than link power alone.
"""

from repro.noc.deadlock import (
    build_cdg,
    cdg_cycles,
    comm_vcs,
    is_deadlock_free,
    direction_class_vc,
    single_vc,
)
from repro.noc.simulator import (
    FlitSimulator,
    FlowTable,
    SimulationReport,
    FlowStats,
    PacketRecord,
    DeadlockError,
    build_flow_table,
)
from repro.noc.engine import ArrayFlitSimulator
from repro.noc.reorder import ReorderStats, reorder_stats, worst_reorder_buffer
from repro.noc.tables import (
    TableConflict,
    destination_table_conflicts,
    flow_link_table,
    router_tables,
    source_routes,
)
from repro.noc.traffic import (
    INJECTION_MODELS,
    BernoulliInjection,
    BurstInjection,
    DeterministicInjection,
)
from repro.noc.sweep import (
    ENGINES,
    LatencyPoint,
    latency_sweep,
    points_table,
    saturation_fraction,
)
from repro.noc.router_power import (
    NetworkPowerReport,
    RouterPowerModel,
    active_routers,
    network_power,
    router_traffic,
)

__all__ = [
    "TableConflict",
    "destination_table_conflicts",
    "flow_link_table",
    "router_tables",
    "source_routes",
    "ArrayFlitSimulator",
    "FlowTable",
    "build_flow_table",
    "ENGINES",
    "build_cdg",
    "cdg_cycles",
    "comm_vcs",
    "is_deadlock_free",
    "direction_class_vc",
    "single_vc",
    "FlitSimulator",
    "SimulationReport",
    "FlowStats",
    "DeadlockError",
    "INJECTION_MODELS",
    "DeterministicInjection",
    "BernoulliInjection",
    "BurstInjection",
    "LatencyPoint",
    "latency_sweep",
    "points_table",
    "saturation_fraction",
    "RouterPowerModel",
    "NetworkPowerReport",
    "active_routers",
    "router_traffic",
    "network_power",
    "PacketRecord",
    "ReorderStats",
    "reorder_stats",
    "worst_reorder_buffer",
]
