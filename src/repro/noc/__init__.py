"""Flit-level NoC validation substrate.

The paper routes *flows* and assumes "a deadlock avoidance technique is
used (such as resource ordering [5] or escape channels [3])" and a
table-driven deployment.  This package closes that loop:

* :mod:`repro.noc.deadlock` — channel-dependency-graph (CDG) analysis of a
  computed routing, plus the *direction-class* virtual-channel assignment
  (a resource-ordering scheme: every Manhattan path of direction ``d``
  only ever turns between the two link orientations of its quadrant, so
  giving each direction its own VC makes every per-VC CDG acyclic);
* :mod:`repro.noc.simulator` — a cycle-based wormhole simulator that
  executes a routing's tables with DVFS-scaled link speeds, measuring
  per-flow throughput, packet latency and per-link utilisation — and
  demonstrating real deadlock when the CDG analysis says so;
* :mod:`repro.noc.traffic` — deterministic / Bernoulli / bursty arrival
  processes, all meeting the demanded rates in expectation;
* :mod:`repro.noc.sweep` — load–latency curves of a provisioned routing
  (offered traffic swept past nominal, link DVFS held fixed);
* :mod:`repro.noc.router_power` — Orion-style buffer/crossbar/arbiter
  energy plus router leakage, to re-examine XY vs Manhattan under total
  network power rather than link power alone.
"""

from repro.noc.deadlock import (
    build_cdg,
    cdg_cycles,
    is_deadlock_free,
    direction_class_vc,
    single_vc,
)
from repro.noc.simulator import (
    FlitSimulator,
    SimulationReport,
    FlowStats,
    PacketRecord,
    DeadlockError,
)
from repro.noc.reorder import ReorderStats, reorder_stats, worst_reorder_buffer
from repro.noc.tables import (
    TableConflict,
    destination_table_conflicts,
    router_tables,
    source_routes,
)
from repro.noc.traffic import (
    INJECTION_MODELS,
    BernoulliInjection,
    BurstInjection,
    DeterministicInjection,
)
from repro.noc.sweep import LatencyPoint, latency_sweep, saturation_fraction
from repro.noc.router_power import (
    NetworkPowerReport,
    RouterPowerModel,
    active_routers,
    network_power,
    router_traffic,
)

__all__ = [
    "TableConflict",
    "destination_table_conflicts",
    "router_tables",
    "source_routes",
    "build_cdg",
    "cdg_cycles",
    "is_deadlock_free",
    "direction_class_vc",
    "single_vc",
    "FlitSimulator",
    "SimulationReport",
    "FlowStats",
    "DeadlockError",
    "INJECTION_MODELS",
    "DeterministicInjection",
    "BernoulliInjection",
    "BurstInjection",
    "LatencyPoint",
    "latency_sweep",
    "saturation_fraction",
    "RouterPowerModel",
    "NetworkPowerReport",
    "active_routers",
    "router_traffic",
    "network_power",
    "PacketRecord",
    "ReorderStats",
    "reorder_stats",
    "worst_reorder_buffer",
]
