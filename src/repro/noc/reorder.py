"""Out-of-order delivery analysis — the multi-path overhead, measured.

The paper restricts its heuristics to single paths because "with the
packets following different paths, reconstructing the message becomes a
time-consuming task and may well involve complicated buffering policies".
This module turns that qualitative concern into numbers: run a (possibly
split) routing through the flit simulator with packet collection on, view
each communication's packets as one stream ordered by injection time, and
measure how far delivery deviates from that order:

* ``out_of_order_fraction`` — packets overtaken by a later-injected
  packet of the same communication;
* ``reorder_buffer_packets`` — the maximum number of packets a receiver
  must hold while waiting for an earlier packet still in flight (the
  "complicated buffering" requirement, in packets);
* ``max_displacement`` — the worst rank shift between injection and
  completion order.

Single-path communications are in-order by construction under wormhole
switching (one FIFO path), so every metric is 0 for them — which the
tests assert — and the interesting numbers isolate exactly the split
communications of s-MP routings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.noc.simulator import PacketRecord, SimulationReport
from repro.utils.validation import InvalidParameterError


@dataclass(frozen=True)
class ReorderStats:
    """Delivery-order metrics of one communication."""

    comm: int
    packets: int
    paths: int  #: flows the communication's packets travelled on
    out_of_order_fraction: float
    reorder_buffer_packets: int
    max_displacement: int

    @property
    def in_order(self) -> bool:
        return self.reorder_buffer_packets == 0


def _comm_stats(comm: int, records: List[PacketRecord]) -> ReorderStats:
    # stream order: injection time, ties broken by completion (a tie means
    # two flows injected the same cycle; either order is defensible)
    order = sorted(records, key=lambda r: (r.injected_at, r.completed_at))
    seq_of = {id(r): k for k, r in enumerate(order)}
    by_completion = sorted(
        records, key=lambda r: (r.completed_at, seq_of[id(r)])
    )

    n = len(records)
    out_of_order = 0
    max_disp = 0
    # receiver simulation: deliver next expected seq, buffer the rest
    expected = 0
    buffered: set[int] = set()
    max_buffer = 0
    for rank, rec in enumerate(by_completion):
        seq = seq_of[id(rec)]
        max_disp = max(max_disp, abs(rank - seq))
        if seq != expected:
            if seq > expected:
                buffered.add(seq)
                out_of_order += 1
                max_buffer = max(max_buffer, len(buffered))
                continue
        expected = seq + 1
        while expected in buffered:
            buffered.remove(expected)
            expected += 1
        max_buffer = max(max_buffer, len(buffered))
    flows = {r.flow for r in records}
    return ReorderStats(
        comm=comm,
        packets=n,
        paths=len(flows),
        out_of_order_fraction=out_of_order / n if n else 0.0,
        reorder_buffer_packets=max_buffer,
        max_displacement=max_disp,
    )


def reorder_stats(report: SimulationReport) -> Dict[int, ReorderStats]:
    """Per-communication delivery-order metrics of a simulation run.

    Requires the run to have been made with ``collect_packets=True``.
    """
    if not report.packets:
        raise InvalidParameterError(
            "no packet records: run FlitSimulator(..., collect_packets=True)"
        )
    by_comm: Dict[int, List[PacketRecord]] = {}
    for rec in report.packets:
        by_comm.setdefault(rec.comm, []).append(rec)
    return {c: _comm_stats(c, recs) for c, recs in sorted(by_comm.items())}


def worst_reorder_buffer(report: SimulationReport) -> int:
    """The largest per-communication reorder buffer the run required."""
    stats = reorder_stats(report)
    return max((s.reorder_buffer_packets for s in stats.values()), default=0)
