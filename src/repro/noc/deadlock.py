"""Channel-dependency-graph deadlock analysis (Dally–Seitz style).

A routing is deadlock-free under wormhole switching iff the *channel
dependency graph* — nodes are ``(link, vc)`` buffers, with an edge whenever
some packet may hold one buffer while requesting the next — is acyclic.

Manhattan paths give a natural resource-ordering scheme: a path of
direction ``d`` only uses the two link orientations of its quadrant
(e.g. direction 1 uses only E and S links) and strictly advances the
diagonal index at every hop — so dependencies *within one direction class*
can never cycle.  Assigning each direction class its own virtual channel
(:func:`direction_class_vc`, 4 VCs) therefore guarantees deadlock freedom
for every Manhattan routing, which the tests verify both via the CDG and
by running the flit simulator on adversarial instances.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set, Tuple

from repro.core.routing import Routing
from repro.mesh.diagonals import direction_of
from repro.utils.validation import InvalidParameterError

#: a CDG node: (link id, virtual channel)
Channel = Tuple[int, int]
#: maps (comm index, flow) direction info to a VC id
VcAssignment = Callable[[int, int], int]


def direction_class_vc(comm_index: int, direction: int) -> int:
    """Resource-ordering VC assignment: one VC per direction class (4 VCs)."""
    if direction not in (1, 2, 3, 4):
        raise InvalidParameterError(f"direction must be 1..4, got {direction}")
    return direction - 1


def single_vc(comm_index: int, direction: int) -> int:
    """Everything on VC 0 — the unprotected baseline."""
    return 0


def comm_vcs(
    routing: Routing, vc_of: VcAssignment = direction_class_vc
) -> List[int]:
    """Per-communication VC assignment of ``routing`` under ``vc_of``.

    ``direction_of`` is memoised per endpoint pair and ``vc_of`` evaluated
    once per communication — the single home of the VC flattening shared
    by the CDG analysis and both flit engines (via
    :func:`repro.noc.simulator.build_flow_table`).
    """
    dir_memo: Dict[Tuple, int] = {}
    out: List[int] = []
    for i, comm in enumerate(routing.problem.comms):
        key = (comm.src, comm.snk)
        d = dir_memo.get(key)
        if d is None:
            d = direction_of(comm.src, comm.snk)
            dir_memo[key] = d
        out.append(vc_of(i, d))
    return out


def build_cdg(
    routing: Routing, vc_of: VcAssignment = direction_class_vc
) -> Dict[Channel, Set[Channel]]:
    """Adjacency sets of the channel dependency graph of ``routing``.

    Each flow contributes, for every pair of consecutive links on its path,
    a dependency from the earlier ``(link, vc)`` to the later one (the VC
    is constant along a path under per-flow assignments).
    """
    adj: Dict[Channel, Set[Channel]] = {}
    vcs = comm_vcs(routing, vc_of)
    for i, flows in enumerate(routing.flows):
        vc = vcs[i]
        if vc < 0:
            raise InvalidParameterError(f"vc assignment returned {vc} < 0")
        for flow in flows:
            lids = [int(x) for x in flow.path.link_ids]
            for a, b in zip(lids, lids[1:]):
                adj.setdefault((a, vc), set()).add((b, vc))
                adj.setdefault((b, vc), set())
    return adj


def cdg_cycles(adj: Dict[Channel, Set[Channel]]) -> List[List[Channel]]:
    """All elementary dependency cycles found by iterative DFS (at most one
    reported per strongly connected region — enough to witness deadlock).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[Channel, int] = {v: WHITE for v in adj}
    cycles: List[List[Channel]] = []
    for root in adj:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[Channel, Iterable[Channel]]] = [(root, iter(adj[root]))]
        color[root] = GREY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, iter(adj[nxt])))
                    advanced = True
                    break
                if color[nxt] == GREY:
                    # found a back edge: extract the cycle from the path
                    k = path.index(nxt)
                    cycles.append(path[k:] + [nxt])
            if not advanced:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return cycles


def is_deadlock_free(
    routing: Routing, vc_of: VcAssignment = direction_class_vc
) -> bool:
    """True when the routing's CDG under ``vc_of`` is acyclic."""
    return not cdg_cycles(build_cdg(routing, vc_of))
