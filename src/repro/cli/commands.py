"""Implementations of the non-campaign subcommands.

Each ``cmd_*`` function is a thin shell over the library API; argument
validation goes through :mod:`repro.cli.helpers` so every subcommand
reports domain errors identically (exit code 2, one-line message).
"""

from __future__ import annotations

import argparse

from repro import RoutingProblem
from repro.cli.helpers import (
    check_jobs,
    check_min,
    check_seed,
    check_trials,
    parse_fractions,
    parse_mesh,
    parse_model,
    save_json,
)
from repro.utils.validation import ReproError


# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    from repro.io import workload_to_csv
    from repro.workloads import (
        hotspot_pattern,
        length_targeted_workload,
        transpose_pattern,
        uniform_random_workload,
    )

    mesh = parse_mesh(args.mesh)
    check_seed(args.seed)
    if args.kind == "random":
        comms = uniform_random_workload(
            mesh, args.n, args.rate_min, args.rate_max, rng=args.seed
        )
    elif args.kind == "length":
        comms = length_targeted_workload(
            mesh, args.n, args.length, args.rate_min, args.rate_max,
            rng=args.seed,
        )
    elif args.kind == "transpose":
        comms = transpose_pattern(mesh, args.rate_max)
    elif args.kind == "hotspot":
        comms = hotspot_pattern(mesh, args.rate_max, rng=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown workload kind {args.kind!r}")
    text = workload_to_csv(comms, args.out)
    if args.out:
        print(f"wrote {len(comms)} communications to {args.out}")
    else:
        print(text, end="")
    return 0


def _route_remote(args: argparse.Namespace) -> int:
    """``repro route --server/--socket``: route on a running service."""
    from repro.io import load_routing, save_routing, workload_from_csv
    from repro.io.jsonio import problem_to_dict, routing_from_dict, routing_to_dict
    from repro.service import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        DEFAULT_SOLVER,
        POLISH_MODES,
        ServiceClient,
    )

    check_seed(args.seed)
    if args.polish not in POLISH_MODES:
        raise ReproError(
            f"unknown polish mode {args.polish!r}; choose from "
            f"{', '.join(POLISH_MODES)}"
        )
    mesh = parse_mesh(args.mesh)
    power = parse_model(args.model)
    if args.socket:  # endpoint flags validate before any workload I/O
        client = ServiceClient(socket_path=args.socket)
    else:
        host, _, port_text = args.server.partition(":")
        try:
            port = int(port_text) if port_text else DEFAULT_PORT
        except ValueError:
            raise ReproError(
                f"--server must look like HOST or HOST:PORT, "
                f"got {args.server!r}"
            ) from None
        client = ServiceClient(host or DEFAULT_HOST, port)
    comms = workload_from_csv(args.workload)
    problem = RoutingProblem(mesh, power, comms)
    doc = {
        "problem": problem_to_dict(problem),
        # ALL is the local-mode default; remotely it means the service's
        # default cold solver
        "solver": DEFAULT_SOLVER if args.heuristic == "ALL" else args.heuristic,
        "polish": args.polish,
        "seed": args.seed if args.seed is not None else 0,
        "cache": not args.no_cache,
    }
    if args.prev:
        doc["prev"] = routing_to_dict(load_routing(args.prev))
    try:
        resp = client.route(doc)
    except OSError as exc:
        raise ReproError(f"cannot reach the routing service: {exc}") from None
    stats = resp.get("stats", {})
    power = f"power {resp['power']:.2f}" if resp["valid"] else "INVALID"
    print(f"{resp['mode']} route: {power}")
    print(
        f"cache_hit={resp['cache_hit']}  "
        f"elapsed {resp.get('elapsed_ms', 0.0):.1f} ms  "
        f"(matched {stats.get('matched', 0)}, rerouted "
        f"{stats.get('rerouted', 0)}, polish flips "
        f"{stats.get('polish_flips', 0)})"
    )
    if args.out:
        save_routing(routing_from_dict(resp["routing"]), args.out)
        print(f"routing saved to {args.out}")
    return 0 if resp["valid"] else 1


def cmd_route(args: argparse.Namespace) -> int:
    from typing import Sequence

    from repro.heuristics import PAPER_HEURISTICS, BestOf, get_heuristic
    from repro.io import save_routing, workload_from_csv
    from repro.utils.tables import format_table

    if args.server or args.socket:
        return _route_remote(args)
    mesh = parse_mesh(args.mesh)
    power = parse_model(args.model)
    comms = workload_from_csv(args.workload)
    problem = RoutingProblem(mesh, power, comms)

    names: Sequence[str]
    if args.heuristic == "ALL":
        names = PAPER_HEURISTICS
    elif args.heuristic == "BEST":
        names = ()
    else:
        names = (args.heuristic,)

    rows = []
    best_result = None
    if args.heuristic == "BEST":
        best_result = BestOf().solve(problem)
        rows.append(
            [
                "BEST",
                "yes" if best_result.valid else "NO",
                f"{best_result.power:.2f}" if best_result.valid else "-",
                f"{best_result.runtime_s * 1e3:.1f}",
            ]
        )
    else:
        for name in names:
            res = get_heuristic(name).solve(problem)
            rows.append(
                [
                    name,
                    "yes" if res.valid else "NO",
                    f"{res.power:.2f}" if res.valid else "-",
                    f"{res.runtime_s * 1e3:.1f}",
                ]
            )
            if best_result is None or (
                res.valid
                and (not best_result.valid or res.power < best_result.power)
            ):
                best_result = res
    print(format_table(["heuristic", "valid", "power", "ms"], rows))

    assert best_result is not None
    if args.show_map:
        from repro.viz import load_legend, render_loads

        print()
        print(render_loads(mesh, best_result.routing.link_loads(), power=power))
        print(load_legend())
    if args.out:
        save_routing(best_result.routing, args.out)
        print(f"routing saved to {args.out}")
    if args.svg:
        from repro.viz import mesh_heatmap_svg, save_svg

        save_svg(
            args.svg,
            mesh_heatmap_svg(
                mesh,
                best_result.routing.link_loads(),
                power,
                title=f"{best_result.name} link loads",
            ),
        )
        print(f"heat map saved to {args.svg}")
    return 0 if best_result.valid else 1


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures, sweep_to_text

    check_jobs(args.jobs)
    if args.panel != "summary" and args.panel not in figures.PANELS:
        raise ReproError(
            f"unknown panel {args.panel!r}; choose from "
            f"{', '.join(figures.PANELS)} or 'summary'"
        )
    # pass trials explicitly rather than through REPRO_TRIALS — mutating
    # os.environ would leak into everything else running in this process
    check_trials(args.trials)
    kw = {}
    if args.trials:
        kw["trials"] = args.trials
    if args.panel == "summary":
        if args.trials:
            # historical CLI semantics: summary always sampled 10x the
            # per-point trial budget (it averages over ~100 instance
            # families, so it needs the larger pool)
            kw["trials"] = 10 * args.trials
        s = figures.summary_statistics(jobs=args.jobs, **kw)
        for name, ratio in s.success_ratio.items():
            print(f"success {name:>5s}: {ratio:.2f}")
        print(f"static fraction: {s.static_fraction:.3f}")
        return 0
    sweep = getattr(figures, args.panel)(jobs=args.jobs, **kw)
    print(sweep_to_text(sweep))
    if args.svg_dir:
        import pathlib

        from repro.viz import save_svg, sweep_to_svg

        out_dir = pathlib.Path(args.svg_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for metric in ("norm_power_inverse", "failure_ratio"):
            path = out_dir / f"{args.panel}_{metric}.svg"
            save_svg(path, sweep_to_svg(sweep, metric))
            print(f"chart saved to {path}")
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import available_scenarios, get_scenario, run_scenario

    if args.action == "list":
        for name in available_scenarios():
            sc = get_scenario(name)
            print(f"{name:>16}  [{sc.mesh.describe()}]  {sc.description}")
        return 0
    # run
    check_jobs(args.jobs)
    check_trials(args.trials)
    check_seed(args.seed)
    result = run_scenario(
        args.name, jobs=args.jobs, trials=args.trials, seed=args.seed
    )
    print(result.to_text())
    if args.json:
        save_json(args.json, result.to_jsonable(), "snapshot")
    return 0


def cmd_theory(args: argparse.Namespace) -> int:
    from repro.theory import lemma2_powers, theorem1_powers
    from repro.utils.tables import format_table

    sizes = args.sizes or [4, 8, 16, 32]
    rows1 = []
    rows2 = []
    for p in sizes:
        if p % 2 == 0:
            r = theorem1_powers(p)
            rows1.append([p, f"{r['p_xy']:.1f}", f"{r['p_manhattan']:.3f}",
                          f"{r['ratio']:.2f}"])
        r = lemma2_powers(p)
        rows2.append([p, f"{r['p_xy']:.0f}", f"{r['p_yx']:.0f}",
                      f"{r['ratio']:.1f}"])
    print("Theorem 1 (single pair, max-MP construction):")
    print(format_table(["p", "P_XY", "P_maxMP", "ratio"], rows1))
    print("\nLemma 2 (staircase, YX vs XY):")
    print(format_table(["p", "P_XY", "P_YX", "ratio"], rows2))
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    from repro.io import load_routing
    from repro.noc import latency_sweep, saturation_fraction
    from repro.utils.tables import format_table

    fractions = parse_fractions(args.fractions)  # validate before any I/O
    check_seed(args.seed)
    routing = load_routing(args.routing)
    points = latency_sweep(
        routing,
        fractions,
        cycles=args.cycles,
        warmup=args.cycles // 5,
        injection=args.injection,
        seed=args.seed,
    )
    rows = [
        [
            f"{pt.fraction:.2f}",
            f"{pt.mean_latency:.1f}" if pt.mean_latency < 1e12 else "-",
            f"{pt.delivered_ratio:.2f}",
            f"{pt.max_link_utilization:.2f}",
            "DEADLOCK" if pt.deadlocked else ("ok" if pt.stable else "sat"),
        ]
        for pt in points
    ]
    print(
        format_table(
            ["fraction", "latency", "delivered", "max util", "state"], rows
        )
    )
    sat = saturation_fraction(points)
    print(f"saturation fraction: {sat:.2f}" if sat != float("inf")
          else "no saturation inside the sweep")
    return 0


def cmd_noc_sweep(args: argparse.Namespace) -> int:
    from repro.noc import latency_sweep, points_table, saturation_fraction

    check_jobs(args.jobs)
    check_min(args.cycles, "--cycles")
    check_seed(args.seed)
    fractions = parse_fractions(args.fractions)
    if bool(args.routing) == bool(args.scenario):
        raise ReproError(
            "pass exactly one input: a routing JSON path or --scenario NAME"
        )
    if args.scenario:
        from repro.scenarios import scenario_latency_curve

        result = scenario_latency_curve(
            args.scenario,
            heuristic=args.heuristic,
            fractions=fractions,
            cycles=args.cycles,
            warmup=args.cycles // 5,
            injection=args.injection,
            seed=args.seed,
            jobs=args.jobs,
            engine=args.engine,
        )
        print(result.to_text())
        doc = result.to_jsonable()
    else:
        from repro.io import load_routing

        routing = load_routing(args.routing)
        points = latency_sweep(
            routing,
            fractions,
            cycles=args.cycles,
            warmup=args.cycles // 5,
            injection=args.injection,
            seed=args.seed if args.seed is not None else 0,
            jobs=args.jobs,
            engine=args.engine,
        )
        print(points_table(points))
        sat = saturation_fraction(points)
        print(
            f"saturation fraction: {sat:.2f}"
            if sat != float("inf")
            else "no saturation inside the sweep"
        )
        doc = {
            "routing": args.routing,
            "engine": args.engine,
            "injection": args.injection,
            "cycles": args.cycles,
            "seed": args.seed if args.seed is not None else 0,
            "points": [pt.to_jsonable() for pt in points],
        }
    if args.json:
        save_json(args.json, doc, "latency curve")
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    from repro.heuristics import PAPER_HEURISTICS, get_heuristic
    from repro.utils.tables import format_table
    from repro.workloads import (
        annealed_placement,
        bandwidth_aware_placement,
        map_applications,
        published_app,
        region_split,
    )

    mesh = parse_mesh(args.mesh)
    power = parse_model(args.model)
    check_seed(args.seed)
    apps = [published_app(n, scale=args.scale) for n in args.apps.split(",")]
    regions = region_split(mesh, [a.num_tasks for a in apps])
    placements = []
    for app, region in zip(apps, regions):
        if args.mapping == "annealed":
            placements.append(
                annealed_placement(
                    mesh, app, region=region, iterations=2000, seed=args.seed
                )
            )
        elif args.mapping == "greedy":
            placements.append(
                bandwidth_aware_placement(
                    mesh, app, region=region, rng=args.seed
                )
            )
        else:  # row-major
            placements.append(list(region[: app.num_tasks]))
    comms = map_applications(apps, placements)
    problem = RoutingProblem(mesh, power, comms)
    print(
        f"{', '.join(a.name for a in apps)}: {len(comms)} communications, "
        f"total {problem.total_rate:.0f} Mb/s ({args.mapping} mapping)"
    )
    rows = []
    for name in PAPER_HEURISTICS:
        res = get_heuristic(name).solve(problem)
        rows.append(
            [
                name,
                "yes" if res.valid else "NO",
                f"{res.power:.1f}" if res.valid else "-",
                f"{res.runtime_s * 1e3:.1f}",
            ]
        )
    print(format_table(["heuristic", "valid", "power mW", "ms"], rows))
    return 0


def cmd_open_problem(args: argparse.Namespace) -> int:
    from repro import PowerModel
    from repro.core.problem import Communication
    from repro.optimal import same_endpoint_gap
    from repro.utils.tables import format_table

    mesh = parse_mesh(args.mesh)
    power = PowerModel.dynamic_only(alpha=args.alpha, bandwidth=float("inf"))
    rates = [float(r) for r in args.rates.split(",")]
    problem = RoutingProblem(
        mesh,
        power,
        [
            Communication((0, 0), (mesh.p - 1, mesh.q - 1), r)
            for r in rates
        ],
    )
    gap = same_endpoint_gap(problem)
    rows = [
        ["XY", f"{gap.xy_power:.4g}"],
        ["optimal 1-MP (exact DP)", f"{gap.single_path_power:.4g}"],
        ["max-MP upper (flow LP)", f"{gap.flow_upper:.4g}"],
        ["max-MP lower (certified)", f"{gap.flow_lower:.4g}"],
        ["ideal-spread bound", f"{gap.ideal_bound:.4g}"],
    ]
    print(
        f"shared-endpoint ladder on {mesh.p}x{mesh.q}, rates {rates}, "
        f"alpha={args.alpha} (dynamic power only)"
    )
    print(format_table(["routing", "power"], rows))
    print(
        f"XY / optimal-1MP = {gap.xy_vs_single:.2f};  "
        f"optimal-1MP / maxMP = {gap.single_vs_multi:.3f}"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the routing service until SIGTERM/SIGINT.

    Shutdown is graceful: the first SIGTERM/SIGINT stops accepting,
    finishes in-flight requests under ``--drain-timeout``, then closes
    the worker pool.  A fault plan in ``REPRO_FAULTS`` (chaos testing)
    is honoured.  ``--shards N`` preforks N accept-loop processes under
    a restarting supervisor; ``--batch-window`` coalesces concurrent
    requests into shared-cache batch submissions.
    """
    import asyncio
    import signal

    from repro.service import DEFAULT_PORT, FaultPlan, RoutingServer
    from repro.service.prefork import run_prefork

    check_jobs(args.jobs)
    if args.port is None:
        args.port = DEFAULT_PORT
    if args.socket is None and not 0 <= args.port < 65536:
        raise ReproError(
            "--port must lie in [0, 65535] (0 picks an ephemeral port), "
            f"got {args.port}"
        )
    check_min(args.max_inflight, "--max-inflight")
    check_min(args.queue_depth, "--queue-depth", 0)
    check_min(args.shards, "--shards")
    if args.batch_window is not None and not args.batch_window >= 0:
        raise ReproError(
            "--batch-window must be >= 0 milliseconds, "
            f"got {args.batch_window}"
        )
    check_min(args.max_batch, "--max-batch")
    if args.compute_timeout is not None and not args.compute_timeout > 0:
        raise ReproError(
            f"--compute-timeout must be > 0 seconds, got {args.compute_timeout}"
        )
    if not args.drain_timeout >= 0:
        raise ReproError(
            f"--drain-timeout must be >= 0 seconds, got {args.drain_timeout}"
        )
    batch_window = (
        None if args.batch_window is None else args.batch_window / 1e3
    )
    server_kwargs = dict(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        compute_timeout=args.compute_timeout,
        batch_window=batch_window,
        max_batch=args.max_batch,
        verbose=args.verbose,
    )
    if args.shards > 1:
        return run_prefork(
            shards=args.shards,
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            drain_timeout=args.drain_timeout,
            **server_kwargs,
        )
    server = RoutingServer(fault_plan=FaultPlan.from_env(), **server_kwargs)

    async def _run() -> None:
        if args.socket:
            srv = await server.start_unix(args.socket)
            where = f"unix:{args.socket}"
        else:
            srv = await server.start_tcp(args.host, args.port)
            port = srv.sockets[0].getsockname()[1]
            where = f"http://{args.host}:{port}"
        cache = "off" if args.no_cache else (args.cache_dir or "default")
        batching = (
            "off" if batch_window is None
            else f"{args.batch_window:g}ms/max{args.max_batch}"
        )
        print(
            f"repro service listening on {where} "
            f"(jobs={args.jobs}, cache={cache}, "
            f"max_inflight={args.max_inflight}, "
            f"queue_depth={args.queue_depth}, "
            f"batching={batching})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        async with srv:
            await stop.wait()
            print("draining (finishing in-flight requests)", flush=True)
            drained = await server.drain(srv, timeout=args.drain_timeout)
            print(
                "drained cleanly" if drained
                else "drain deadline hit; abandoning in-flight work",
                flush=True,
            )

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        print("shutting down")
    except OSError as exc:
        raise ReproError(f"cannot start the routing service: {exc}") from None
    finally:
        server.close()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io import load_routing
    from repro.noc import FlitSimulator, direction_class_vc, is_deadlock_free

    routing = load_routing(args.routing)
    free = is_deadlock_free(routing, direction_class_vc)
    print(f"deadlock-free under direction-class VCs: {free}")
    sim = FlitSimulator(
        routing,
        num_vcs=4,
        buffer_flits=args.buffer_flits,
        packet_flits=args.packet_flits,
    )
    rep = sim.run(args.cycles, warmup=args.cycles // 10)
    ach = [f.achieved_fraction for f in rep.flows]
    print(
        f"delivered {rep.total_delivered_flits} flits over {args.cycles} "
        f"cycles; throughput achieved: min {min(ach):.2f} mean "
        f"{sum(ach) / len(ach):.2f}"
    )
    return 0
