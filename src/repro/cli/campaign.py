"""The ``repro campaign`` subcommand: list / run / check / clean.

``run`` regenerates committed artifacts (``results/<name>.txt``) through
the content-addressed cache; ``check`` regenerates and byte-compares
without writing; ``clean`` drops cache entries.  Exit codes: 0 on
success, 1 when ``check`` finds a diff, 2 on usage errors.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.cli.helpers import check_jobs, check_trials
from repro.utils.validation import ReproError


def _store(args: argparse.Namespace):
    from repro.experiments.campaign import ArtifactStore

    return ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()


def _select_names(args: argparse.Namespace, *, default_all: bool) -> List[str]:
    from repro.experiments.campaign import (
        FAST_SUBSET,
        available_experiments,
        get_experiment,
    )

    chosen: List[str] = []
    if getattr(args, "fast", False):
        chosen += list(FAST_SUBSET)
    for name in args.names:
        get_experiment(name)  # validates; raises ReproError on unknown
        if name not in chosen:
            chosen.append(name)
    if getattr(args, "all", False) or (not chosen and default_all):
        return available_experiments()
    if not chosen:
        raise ReproError(
            "name at least one experiment, or pass --all / --fast "
            "(see 'repro campaign list')"
        )
    return chosen


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import (
        check_experiment,
        get_experiment,
        run_experiment,
        write_artifact,
    )

    if args.action == "list":
        from repro.experiments.campaign import available_experiments

        store = _store(args)
        for name in available_experiments():
            exp = get_experiment(name)
            shards = exp.shards()
            # existence probe only — re-hashing every record payload just
            # to count cache entries would reread the whole cache
            cached = sum(1 for s in shards if store.has_shard(exp, s.key))
            print(
                f"{name:>24}  [{cached}/{len(shards)} shards cached]  "
                f"{exp.title}"
            )
        return 0

    if args.action == "clean":
        store = _store(args)
        if args.all:
            removed = store.clean()
        else:
            names = _select_names(args, default_all=False)
            removed = sum(store.clean(name) for name in names)
        print(f"removed {removed} cache entries under {store.root}")
        return 0

    check_jobs(args.jobs)
    store = _store(args)

    if args.action == "run":
        check_trials(args.trials)
        names = _select_names(args, default_all=False)
        for name in names:
            exp = get_experiment(name)
            overridden = False
            if args.trials is not None:
                new = exp.with_trials(args.trials)
                if new is exp:
                    print(
                        f"note: {name} has no trial count; "
                        f"--trials {args.trials} ignored"
                    )
                overridden = new is not exp and new != exp
                exp = new
            report = run_experiment(
                exp, jobs=args.jobs, store=store, use_cache=not args.no_cache
            )
            print(report.summary())
            if overridden:
                # a non-spec trial count never overwrites the committed
                # artifact — print the table instead
                print(report.text)
                print(
                    f"note: --trials {args.trials} overrides the spec; "
                    f"artifact {name}.txt not written"
                )
            else:
                path = write_artifact(report, args.results_dir)
                print(f"wrote {path}")
        return 0

    # check
    names = _select_names(args, default_all=True)
    failures = 0
    for name in names:
        outcome = check_experiment(
            name, jobs=args.jobs, store=store, results_dir=args.results_dir
        )
        status = "ok" if outcome.ok else "DIFF"
        print(f"{status:>4}  {name}  ({outcome.run.summary()})")
        if not outcome.ok:
            failures += 1
            print(f"      {outcome.message}")
    print(
        f"campaign check: {len(names) - failures}/{len(names)} artifacts "
        "byte-identical"
    )
    return 1 if failures else 0


def add_campaign_parser(sub) -> None:
    """Wire ``campaign list|run|check|clean`` into the main parser."""
    camp = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns (the results/ artifacts)",
    )
    camp_sub = camp.add_subparsers(dest="action", required=True)

    c_list = camp_sub.add_parser(
        "list", help="show every registered experiment and its cache state"
    )
    c_list.add_argument("--cache-dir", default=None)
    c_list.set_defaults(func=cmd_campaign)

    common = dict(
        jobs=(
            ("--jobs",),
            dict(
                type=int,
                default=1,
                help="worker processes for missing shards (default: serial)",
            ),
        ),
        cache=(("--cache-dir",), dict(default=None)),
        results=(
            ("--results-dir",),
            dict(default=None, help="artifact directory (default: results/)"),
        ),
    )

    c_run = camp_sub.add_parser(
        "run", help="regenerate artifacts through the cache"
    )
    c_run.add_argument("names", nargs="*", help="experiment names")
    c_run.add_argument("--all", action="store_true")
    c_run.add_argument(
        "--fast", action="store_true", help="the small CI subset"
    )
    c_run.add_argument(
        "--trials", type=int, default=None,
        help="override the spec trial count (artifact is NOT written)",
    )
    c_run.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything, do not read or write the cache",
    )
    for flags, kw in common.values():
        c_run.add_argument(*flags, **kw)
    c_run.set_defaults(func=cmd_campaign)

    c_check = camp_sub.add_parser(
        "check",
        help="regenerate and byte-compare artifacts (default: all)",
    )
    c_check.add_argument("names", nargs="*", help="experiment names")
    c_check.add_argument("--all", action="store_true")
    c_check.add_argument(
        "--fast", action="store_true", help="the small CI subset"
    )
    for flags, kw in common.values():
        c_check.add_argument(*flags, **kw)
    c_check.set_defaults(func=cmd_campaign)

    c_clean = camp_sub.add_parser("clean", help="drop cache entries")
    c_clean.add_argument("names", nargs="*", help="experiment names")
    c_clean.add_argument("--all", action="store_true")
    c_clean.add_argument(
        "--fast", action="store_true", help="the small CI subset"
    )
    c_clean.add_argument("--cache-dir", default=None)
    c_clean.set_defaults(func=cmd_campaign)
