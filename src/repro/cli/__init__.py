"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``generate``   draw a workload (random / length-targeted / pattern) to CSV
``route``      route a workload with one heuristic (or BEST/ALL) and report;
               with ``--server``/``--socket`` it submits to a running
               ``repro serve`` instead (``--prev`` warm-starts)
``serve``      run the long-lived routing service (JSON over HTTP on TCP
               or a unix socket, warm-start repair, result cache)
``figures``    regenerate paper figure panels (fig7a..fig9c, summary)
``scenarios``  list or run registered scenarios (faulty / derated / ...)
``campaign``   list / run / check / clean the declarative experiment
               registry behind every committed ``results/*.txt`` artifact
``theory``     print the Theorem 1 / Lemma 2 separation tables
``simulate``   run a saved routing on the flit-level NoC simulator
``noc sweep``  load–latency curve of a saved routing or a registry
               scenario on the array flit engine (``--jobs``/``--engine``)

Every command is a thin shell over the library API; ``main(argv)`` returns
a process exit code so the CLI is unit-testable.  User errors (unknown
scenario, experiment or panel names, out-of-domain ``--jobs`` values,
malformed inputs) exit with code 2 and a one-line ``error:`` message —
never a traceback.  Shared argument validation lives in
:mod:`repro.cli.helpers`; ``repro --version`` prints the package version
(from installed metadata, or pyproject.toml on source-tree runs).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli.campaign import add_campaign_parser
from repro.cli.commands import (
    cmd_apps,
    cmd_figures,
    cmd_generate,
    cmd_latency,
    cmd_noc_sweep,
    cmd_open_problem,
    cmd_route,
    cmd_scenarios,
    cmd_serve,
    cmd_simulate,
    cmd_theory,
)
from repro.utils.validation import ReproError
from repro.version import __version__


class _VersionAction(argparse.Action):
    """``--version`` with the active fast-path tier (REPRO_NATIVE).

    The tier is resolved lazily — only when ``--version`` is actually
    requested — so ordinary subcommands never trigger a native build or
    a ``REPRO_NATIVE=1`` availability check from the parser.
    """

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.mesh.kernel import stacked_mode
        from repro.native import active_tier

        print(
            f"repro {__version__} "
            f"(tier: {active_tier()}, stacked: {stacked_mode()})"
        )
        parser.exit()


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-aware Manhattan routing on chip multiprocessors",
    )
    parser.add_argument(
        "--version", action=_VersionAction,
        help="show the version and the active fast-path tier, then exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="draw a workload to CSV")
    g.add_argument("--mesh", default="8x8")
    g.add_argument(
        "--kind", choices=("random", "length", "transpose", "hotspot"),
        default="random",
    )
    g.add_argument("--n", type=int, default=20)
    g.add_argument("--length", type=int, default=6)
    g.add_argument("--rate-min", type=float, default=100.0)
    g.add_argument("--rate-max", type=float, default=2500.0)
    g.add_argument("--seed", type=int, default=None)
    g.add_argument("--out", default=None)
    g.set_defaults(func=cmd_generate)

    r = sub.add_parser("route", help="route a CSV workload")
    r.add_argument("workload", help="workload CSV path")
    r.add_argument("--mesh", default="8x8")
    r.add_argument("--model", default="kim-horowitz")
    r.add_argument("--heuristic", default="ALL",
                   help="XY|SG|IG|TB|XYI|PR|YX|BEST|ALL")
    r.add_argument("--out", default=None, help="save best routing JSON here")
    r.add_argument("--show-map", action="store_true")
    r.add_argument(
        "--svg", default=None, help="save an SVG link-load heat map here"
    )
    remote = r.add_argument_group(
        "remote mode", "submit to a running 'repro serve' instead"
    )
    remote.add_argument(
        "--server", default=None, metavar="HOST[:PORT]",
        help="route on this service endpoint (TCP)",
    )
    remote.add_argument(
        "--socket", default=None, metavar="PATH",
        help="route on the service listening on this unix socket",
    )
    remote.add_argument(
        "--prev", default=None, metavar="ROUTING_JSON",
        help="previous routing to warm-start the service from",
    )
    remote.add_argument(
        "--polish", default="anneal",
        help="service polish mode: anneal|descent|none (default: anneal)",
    )
    remote.add_argument(
        "--seed", type=int, default=None,
        help="polish-burst / cold RNG seed (default: 0)",
    )
    remote.add_argument(
        "--no-cache", action="store_true",
        help="ask the service not to consult/fill its result cache",
    )
    r.set_defaults(func=cmd_route)

    srv = sub.add_parser(
        "serve", help="run the long-lived routing service"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=None)
    srv.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a unix socket instead of TCP",
    )
    srv.add_argument(
        "--jobs", type=int, default=1,
        help="routing worker processes (1 = inline, strictly serial)",
    )
    srv.add_argument(
        "--cache-dir", default=None,
        help="artifact-store root for the result cache "
        "(default: .repro-cache / REPRO_CACHE_DIR)",
    )
    srv.add_argument(
        "--no-cache", action="store_true",
        help="disable the cross-request result cache",
    )
    srv.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="admission control: route requests computing at once "
        "(default: 8)",
    )
    srv.add_argument(
        "--queue-depth", type=int, default=32, metavar="N",
        help="admission control: waiting requests beyond --max-inflight "
        "before answering 429 (default: 32)",
    )
    srv.add_argument(
        "--compute-timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-request compute deadline; overruns answer 504 "
        "(default: 300)",
    )
    srv.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-shutdown deadline for in-flight requests on "
        "SIGTERM/SIGINT (default: 10)",
    )
    srv.add_argument(
        "--verbose", action="store_true",
        help="log one structured line per request to stderr",
    )
    srv.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="prefork N accept-loop processes sharing the port via "
        "SO_REUSEPORT (unix sockets share one inherited fd); a "
        "supervisor restarts dead shards and /stats aggregates the "
        "fleet (default: 1 = classic single process)",
    )
    srv.add_argument(
        "--batch-window", type=float, default=None, metavar="MS",
        help="micro-batching: coalesce concurrently-queued /route "
        "requests for up to MS milliseconds (0 coalesces within one "
        "event-loop tick) into one pool submission sharing parse "
        "caches; responses stay bit-identical (default: off)",
    )
    srv.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="micro-batching: submit a batch once N requests wait "
        "(default: 8)",
    )
    srv.set_defaults(func=cmd_serve)

    sc = sub.add_parser(
        "scenarios", help="list or run registered scenarios"
    )
    sc_sub = sc.add_subparsers(dest="action", required=True)
    sc_list = sc_sub.add_parser("list", help="show every registered scenario")
    sc_list.set_defaults(func=cmd_scenarios)
    sc_run = sc_sub.add_parser("run", help="run one scenario and report")
    sc_run.add_argument("name", help="registry name (see 'scenarios list')")
    sc_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo trials (default: serial)",
    )
    sc_run.add_argument(
        "--trials", type=int, default=None,
        help="override the scenario's default trial count",
    )
    sc_run.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's default seed",
    )
    sc_run.add_argument(
        "--json", default=None,
        help="also save the exact (hex-float) snapshot to this path",
    )
    sc_run.set_defaults(func=cmd_scenarios)

    add_campaign_parser(sub)

    f = sub.add_parser("figures", help="regenerate paper figures")
    f.add_argument("panel", help="fig7a..fig9c or 'summary'")
    f.add_argument("--trials", type=int, default=None)
    f.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo sweep (default: serial)",
    )
    f.add_argument(
        "--svg-dir",
        default=None,
        help="also render the sweep to SVG charts in this directory",
    )
    f.set_defaults(func=cmd_figures)

    t = sub.add_parser("theory", help="Theorem 1 / Lemma 2 tables")
    t.add_argument("--sizes", type=int, nargs="*", default=None)
    t.set_defaults(func=cmd_theory)

    s = sub.add_parser("simulate", help="flit-simulate a saved routing")
    s.add_argument("routing", help="routing JSON path")
    s.add_argument("--cycles", type=int, default=20000)
    s.add_argument("--buffer-flits", type=int, default=4)
    s.add_argument("--packet-flits", type=int, default=8)
    s.set_defaults(func=cmd_simulate)

    n = sub.add_parser(
        "noc", help="flit-engine NoC evaluation (load-latency sweeps)"
    )
    n_sub = n.add_subparsers(dest="action", required=True)
    n_sweep = n_sub.add_parser(
        "sweep",
        help="load-latency curve of a saved routing or a registry scenario",
    )
    n_sweep.add_argument(
        "routing", nargs="?", default=None,
        help="routing JSON path (omit when using --scenario)",
    )
    n_sweep.add_argument(
        "--scenario", default=None,
        help="sweep a registry scenario's trial-0 instance instead "
        "(see 'scenarios list')",
    )
    n_sweep.add_argument(
        "--heuristic", default="BEST",
        help="heuristic deployed for --scenario (default: BEST)",
    )
    n_sweep.add_argument("--fractions", default="0.2,0.5,0.8,1.0,1.5,2.0")
    n_sweep.add_argument("--cycles", type=int, default=4000)
    n_sweep.add_argument(
        "--injection",
        choices=("deterministic", "bernoulli", "burst"),
        default="bernoulli",
    )
    n_sweep.add_argument("--seed", type=int, default=None)
    n_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes, one sweep point each (default: serial)",
    )
    n_sweep.add_argument(
        "--engine", choices=("array", "reference"), default="array",
        help="flit engine (the cycle-exact 'reference' oracle is slower)",
    )
    n_sweep.add_argument(
        "--json", default=None,
        help="also save the exact (hex-float) latency curve to this path",
    )
    n_sweep.set_defaults(func=cmd_noc_sweep)

    l = sub.add_parser(
        "latency", help="load-latency sweep of a saved routing"
    )
    l.add_argument("routing", help="routing JSON path")
    l.add_argument("--fractions", default="0.2,0.5,0.8,1.0,1.5,2.0")
    l.add_argument("--cycles", type=int, default=4000)
    l.add_argument(
        "--injection",
        choices=("deterministic", "bernoulli", "burst"),
        default="bernoulli",
    )
    l.add_argument("--seed", type=int, default=0)
    l.set_defaults(func=cmd_latency)

    a = sub.add_parser(
        "apps", help="route the published multimedia task graphs"
    )
    a.add_argument("--apps", default="vopd,mpeg4,mwd,pip",
                   help="comma-separated: vopd,mpeg4,mwd,pip")
    a.add_argument("--mesh", default="8x8")
    a.add_argument("--model", default="kim-horowitz")
    a.add_argument("--scale", type=float, default=3.0,
                   help="Mb/s per published MB/s")
    a.add_argument(
        "--mapping",
        choices=("annealed", "greedy", "row-major"),
        default="annealed",
    )
    a.add_argument("--seed", type=int, default=0)
    a.set_defaults(func=cmd_apps)

    o = sub.add_parser(
        "open-problem",
        help="shared-endpoint ladder: XY vs exact 1-MP vs max-MP",
    )
    o.add_argument("--mesh", default="8x8")
    o.add_argument("--rates", default="500,500,500,500",
                   help="comma-separated Mb/s, all corner-to-corner")
    o.add_argument("--alpha", type=float, default=2.95)
    o.set_defaults(func=cmd_open_problem)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # unwritable --out/--json/--svg paths, unreadable inputs, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
