"""Shared argument validation and output plumbing for every subcommand.

One place for the checks each subcommand used to hand-roll: ``--jobs`` /
``--trials`` / ``--cycles`` domains, fraction-list parsing, mesh / power
model parsing, and the deterministic JSON snapshot writer.  All failures
raise :class:`~repro.utils.validation.ReproError`, which ``main`` turns
into a one-line ``error:`` message and exit code 2 — never a traceback.
"""

from __future__ import annotations

from typing import List

from repro.utils.validation import ReproError


def check_min(value: int, flag: str, minimum: int = 1) -> None:
    """Validate an integer CLI flag's lower bound."""
    if value < minimum:
        raise ReproError(f"{flag} must be >= {minimum}, got {value}")


def check_jobs(jobs: int) -> None:
    """Validate ``--jobs`` (worker process count)."""
    check_min(jobs, "--jobs")


def check_trials(trials: "int | None") -> None:
    """Validate an *optional* ``--trials`` override."""
    if trials is not None:
        check_min(trials, "--trials")


def check_seed(seed: "int | None") -> None:
    """Validate an *optional* ``--seed`` (RNG seeds must be >= 0).

    ``numpy.random.default_rng`` rejects negative seeds with a raw
    ``ValueError`` traceback; catch the domain error at the CLI boundary
    instead so it reports like every other flag error (exit code 2).
    """
    if seed is not None and seed < 0:
        raise ReproError(f"--seed must be >= 0, got {seed}")


def parse_fractions(text: str) -> List[float]:
    """Parse a ``--fractions`` comma-separated list of offered loads.

    Every fraction must be a positive finite number — an offered load of
    ``0``, ``-0.5``, ``nan`` or ``inf`` is meaningless to the flit
    engine and used to slip straight through to the simulator.
    """
    import math

    try:
        fractions = [float(f) for f in text.split(",") if f.strip()]
    except ValueError:
        raise ReproError(
            f"--fractions must be comma-separated numbers, got {text!r}"
        ) from None
    if not fractions:
        raise ReproError("--fractions must name at least one fraction")
    bad = [f for f in fractions if not (math.isfinite(f) and f > 0.0)]
    if bad:
        raise ReproError(
            "--fractions must be positive finite offered loads, "
            f"got {bad[0]!r}"
        )
    return fractions


def parse_mesh(text: str):
    """Parse an ``8x8``-style ``--mesh`` argument into a :class:`Mesh`."""
    from repro import Mesh

    try:
        p, q = text.lower().split("x")
        return Mesh(int(p), int(q))
    except (ValueError, AttributeError):
        raise ReproError(f"mesh must look like '8x8', got {text!r}") from None


def parse_model(name: str):
    """Resolve a ``--model`` name into a :class:`PowerModel`."""
    from repro import PowerModel

    models = {
        "kim-horowitz": PowerModel.kim_horowitz,
        "continuous": PowerModel.continuous_kim_horowitz,
        "fig2": PowerModel.fig2_example,
    }
    if name not in models:
        raise ReproError(
            f"unknown power model {name!r}; choose from {sorted(models)}"
        )
    return models[name]()


def save_json(path: str, doc: dict, label: str) -> None:
    """Write a deterministic JSON snapshot and announce it.

    The shared ``--json`` plumbing: ``indent=1, sort_keys=True`` plus a
    trailing newline, exactly the format the golden corpus and the
    campaign store use.
    """
    import json

    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"{label} saved to {path}")
