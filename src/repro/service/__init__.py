"""Routing-as-a-service: warm-start incremental re-routing under churn.

The serving layer on top of the heuristics: a long-lived asyncio server
(:mod:`repro.service.server`, ``repro serve``) accepts mesh+workload
request documents, routes them, and memoizes finished responses in the
content-addressed artifact store (:mod:`repro.service.cache`).  Requests
that carry the client's previous routing are **warm-started** — matched,
seeded, incrementally repaired and locally polished instead of
cold-solved (:mod:`repro.service.warmstart`) — which is what makes
resubmission-heavy churn traffic (rate drift, comms added/removed, link
failures) cheap.  :mod:`repro.service.client` is the stdlib-only client
the ``repro route --server/--socket`` remote mode uses; the E-CHURN
bench (``benchmarks/record_baseline.py --suite churn``) pins the
warm-vs-cold speedup and the SLA latency percentiles.
"""

from repro.service.cache import (
    SERVICE_CACHE_NAME,
    RouteRequestKey,
    load_cached,
    request_wire,
    save_cached,
)
from repro.service.client import DEFAULT_HOST, ServiceClient
from repro.service.server import (
    DEFAULT_PORT,
    RoutingServer,
    handle_request_doc,
    outcome_to_doc,
)
from repro.service.warmstart import (
    DEFAULT_POLISH,
    DEFAULT_SOLVER,
    POLISH_MODES,
    RepairStats,
    RouteOutcome,
    SeedMatch,
    match_previous,
    repair_state,
    route_incremental,
)

__all__ = [
    "SERVICE_CACHE_NAME",
    "RouteRequestKey",
    "load_cached",
    "request_wire",
    "save_cached",
    "DEFAULT_HOST",
    "ServiceClient",
    "DEFAULT_PORT",
    "RoutingServer",
    "handle_request_doc",
    "outcome_to_doc",
    "DEFAULT_POLISH",
    "DEFAULT_SOLVER",
    "POLISH_MODES",
    "RepairStats",
    "RouteOutcome",
    "SeedMatch",
    "match_previous",
    "repair_state",
    "route_incremental",
]
