"""Routing-as-a-service: warm-start incremental re-routing under churn.

The serving layer on top of the heuristics: a long-lived asyncio server
(:mod:`repro.service.server`, ``repro serve``) accepts mesh+workload
request documents, routes them, and memoizes finished responses in the
content-addressed artifact store (:mod:`repro.service.cache`).  Requests
that carry the client's previous routing are **warm-started** — matched,
seeded, incrementally repaired and locally polished instead of
cold-solved (:mod:`repro.service.warmstart`) — which is what makes
resubmission-heavy churn traffic (rate drift, comms added/removed, link
failures) cheap.  :mod:`repro.service.client` is the stdlib-only client
the ``repro route --server/--socket`` remote mode uses; the E-CHURN
bench (``benchmarks/record_baseline.py --suite churn``) pins the
warm-vs-cold speedup and the SLA latency percentiles.

The resilience layer (:mod:`repro.service.resilience`) keeps the
service honest under load and infrastructure faults: bounded admission
with 429 backpressure, per-phase deadlines (504 on compute overrun),
transparent worker-pool rebuild after a crashed worker, keep-alive
client connections with seeded retry/backoff, graceful drain on
SIGTERM, and a deterministic :class:`FaultPlan` harness that scripts
worker crashes / compute delays / dropped connections so every
recovery path is exercised by ordinary tests and the E-SOAK chaos
bench (``--suite soak``).

The scaling layer saturates a host: :class:`MicroBatcher`
(:mod:`repro.service.batching`) coalesces concurrently-queued ``/route``
requests into one pool submission sharing a parse cache — responses stay
bit-identical to one-at-a-time handling — and :func:`run_prefork`
(:mod:`repro.service.prefork`, ``repro serve --shards N``) forks N
accept-loop shards over one ``SO_REUSEPORT`` port (or one inherited unix
socket), restarts dead shards, and aggregates ``/stats`` across the
fleet.  The E-SAT saturation bench (``--suite sat``) gates the win.
"""

from repro.service.batching import (
    DEFAULT_MAX_BATCH,
    MicroBatcher,
    ParsedRequest,
    handle_batch_docs,
    parse_request_doc,
    probe_request_doc,
)
from repro.service.cache import (
    SERVICE_CACHE_NAME,
    RouteRequestKey,
    load_cached,
    request_wire,
    save_cached,
)
from repro.service.client import DEFAULT_HOST, READY_POLICY, ServiceClient
from repro.service.prefork import ShardServer, StatsBoard, run_prefork
from repro.service.resilience import (
    FAULTS_ENV,
    RETRYABLE_STATUSES,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TruncatedResponseError,
    parse_retry_after,
)
from repro.service.server import (
    DEFAULT_PORT,
    RoutingServer,
    handle_request_doc,
    outcome_to_doc,
)
from repro.service.warmstart import (
    DEFAULT_POLISH,
    DEFAULT_SOLVER,
    POLISH_MODES,
    RepairStats,
    RouteOutcome,
    SeedMatch,
    match_previous,
    repair_state,
    route_incremental,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "MicroBatcher",
    "ParsedRequest",
    "handle_batch_docs",
    "parse_request_doc",
    "probe_request_doc",
    "ShardServer",
    "StatsBoard",
    "run_prefork",
    "SERVICE_CACHE_NAME",
    "RouteRequestKey",
    "load_cached",
    "request_wire",
    "save_cached",
    "DEFAULT_HOST",
    "READY_POLICY",
    "ServiceClient",
    "FAULTS_ENV",
    "RETRYABLE_STATUSES",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "TruncatedResponseError",
    "parse_retry_after",
    "DEFAULT_PORT",
    "RoutingServer",
    "handle_request_doc",
    "outcome_to_doc",
    "DEFAULT_POLISH",
    "DEFAULT_SOLVER",
    "POLISH_MODES",
    "RepairStats",
    "RouteOutcome",
    "SeedMatch",
    "match_previous",
    "repair_state",
    "route_incremental",
]
