"""Minimal blocking client for the routing service.

Stdlib-only (raw sockets, one request per connection — the server speaks
``Connection: close``), over TCP or a unix socket.  This is what the
``repro route --server/--socket`` remote mode and the CI smoke job use.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Optional

from repro.service.server import DEFAULT_PORT
from repro.utils.validation import ReproError

DEFAULT_HOST = "127.0.0.1"


class ServiceClient:
    """One routing-service endpoint (TCP host/port or a unix socket)."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        socket_path: Optional[str] = None,
        timeout: float = 120.0,
    ):
        self.host = host
        self.port = int(port)
        self.socket_path = socket_path
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            return sock
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, doc: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = b"" if doc is None else json.dumps(doc).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: repro\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        with self._connect() as sock:
            sock.sendall(head + body)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        header, _, payload = raw.partition(b"\r\n\r\n")
        status_line = header.split(b"\r\n", 1)[0].split()
        if len(status_line) < 2:
            raise ReproError("malformed response from the routing service")
        status = int(status_line[1])
        try:
            rbody = json.loads(payload.decode("utf-8")) if payload else {}
        except ValueError:
            raise ReproError(
                "routing service returned a non-JSON body "
                f"(HTTP {status})"
            ) from None
        if status != 200 or not rbody.get("ok", False):
            raise ReproError(
                f"routing service error (HTTP {status}): "
                f"{rbody.get('error', 'unknown error')}"
            )
        return rbody

    # ------------------------------------------------------------------
    def route(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a request document; returns the response document."""
        return self._request("POST", "/route", doc)

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document (raises when unreachable)."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """The server's ``/stats`` counters."""
        return self._request("GET", "/stats")

    def wait_ready(
        self, *, attempts: int = 100, delay: float = 0.1
    ) -> Dict[str, Any]:
        """Poll ``/healthz`` until the server answers (startup races)."""
        last: Exception = ReproError("service never polled")
        for _ in range(attempts):
            try:
                return self.health()
            except (OSError, ReproError) as exc:
                last = exc
                time.sleep(delay)
        raise ReproError(f"routing service did not become ready: {last}")
