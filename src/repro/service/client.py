"""Resilient blocking client for the routing service.

Stdlib-only (raw sockets), over TCP or a unix socket.  This is what the
``repro route --server/--socket`` remote mode, the CI smoke jobs and
the E-SOAK bench use.  Two resilience behaviours on top of the old
one-shot client:

* **Keep-alive** — responses are read by ``Content-Length`` (never
  to-EOF), so the connection can be reused across requests; the client
  holds it open until the server answers ``Connection: close`` or the
  transport fails.  A connection cut mid-body raises
  :class:`~repro.service.resilience.TruncatedResponseError` instead of
  feeding a partial payload to the JSON decoder.
* **Seeded retry** — connection errors, truncated responses and HTTP
  429/503/504 are retried on a deterministic exponential-backoff-with-
  jitter schedule (:class:`~repro.service.resilience.RetryPolicy`),
  honouring a numeric ``Retry-After`` hint when the server sends one.
  Retrying a ``/route`` POST is safe: the handler is a pure function of
  the request document, so a replay returns the same bytes.
  ``retry=None`` restores strict one-shot behaviour.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.service.resilience import (
    RETRYABLE_STATUSES,
    RetryPolicy,
    TruncatedResponseError,
    parse_retry_after,
)
from repro.service.server import DEFAULT_PORT
from repro.utils.validation import ReproError

DEFAULT_HOST = "127.0.0.1"

#: the schedule ``wait_ready`` polls startup on (long, patient tail)
READY_POLICY = RetryPolicy(
    attempts=100, base=0.05, multiplier=1.2, max_delay=0.5, jitter=0.2
)


class _Conn:
    """One keep-alive connection slot of a :class:`ServiceClient`."""

    __slots__ = ("sock", "rfile", "lock")

    def __init__(self) -> None:
        self.sock: Optional[socket.socket] = None
        self.rfile = None
        self.lock = threading.Lock()

    def drop(self) -> None:
        if self.rfile is not None:
            try:
                self.rfile.close()
            except OSError:
                pass
            self.rfile = None
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None


class ServiceClient:
    """One routing-service endpoint (TCP host/port or a unix socket).

    Parameters
    ----------
    retry:
        The :class:`RetryPolicy` for transient failures (connection
        errors, truncated responses, HTTP 429/503/504).  ``None``
        disables retries — every failure surfaces immediately.
    pool_size:
        Keep-alive connections to round-robin requests over.  The
        default ``1`` is the classic single-connection client;
        ``N > 1`` makes the client safe and non-serializing for up to
        N concurrent callers (each request exclusively holds one
        connection for its exchange) — what the E-SAT load generator
        and the soak suite drive through one client object.  The retry
        contract is per-request and unchanged; a transport failure
        drops only the connection it happened on.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        socket_path: Optional[str] = None,
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        pool_size: int = 1,
    ):
        if isinstance(pool_size, bool) or not isinstance(pool_size, int) \
                or pool_size < 1:
            raise ReproError(
                f"pool_size must be an integer >= 1, got {pool_size!r}"
            )
        self.host = host
        self.port = int(port)
        self.socket_path = socket_path
        self.timeout = float(timeout)
        self.retry = retry
        self.pool_size = pool_size
        self._conns: List[_Conn] = [_Conn() for _ in range(pool_size)]
        self._rr = itertools.count()
        self._count_lock = threading.Lock()
        #: connections opened over this client's lifetime (observability:
        #: keep-alive reuse means this stays far below the request count)
        self.connections_opened = 0

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        with self._count_lock:
            self.connections_opened += 1
        return sock

    def close(self) -> None:
        """Drop every kept-alive connection (reopened on next use)."""
        for conn in self._conns:
            conn.drop()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _request_once(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request over the next round-robin connection → (status,
        headers, payload).  Raises ``OSError`` /
        ``TruncatedResponseError`` on transport trouble (the failed
        connection is dropped first); the caller decides whether to
        retry."""
        conn = self._conns[next(self._rr) % self.pool_size]
        with conn.lock:
            try:
                return self._exchange(conn, method, path, body)
            except (TruncatedResponseError, OSError):
                conn.drop()  # a fresh connection for the next try
                raise

    def _exchange(
        self, conn: _Conn, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        if conn.sock is None:
            conn.sock = self._connect()
            conn.rfile = conn.sock.makefile("rb")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: repro\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        conn.sock.sendall(head + body)
        status_line = conn.rfile.readline()
        if not status_line:
            raise TruncatedResponseError(
                "connection closed before any response arrived"
            )
        parts = status_line.split()
        if len(parts) < 2:
            raise ReproError("malformed response from the routing service")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = conn.rfile.readline()
            if not line:
                raise TruncatedResponseError(
                    "connection closed inside the response headers"
                )
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ReproError(
                "routing service sent a bad Content-Length header"
            ) from None
        payload = conn.rfile.read(length) if length else b""
        if len(payload) != length:
            raise TruncatedResponseError(
                f"response truncated: got {len(payload)} of {length} "
                "advertised bytes"
            )
        if headers.get("connection", "keep-alive").lower() == "close":
            conn.drop()
        return status, headers, payload

    def _request(
        self, method: str, path: str, doc: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = b"" if doc is None else json.dumps(doc).encode()
        delays = iter(self.retry.delays() if self.retry is not None else ())
        attempt = 0
        while True:
            attempt += 1
            retry_after: Optional[float] = None
            try:
                status, headers, payload = self._request_once(
                    method, path, body
                )
            except (TruncatedResponseError, OSError) as exc:
                # the failed connection was already dropped
                failure: Exception = (
                    exc
                    if isinstance(exc, ReproError)
                    else ReproError(
                        f"cannot reach the routing service: {exc}"
                    )
                )
            else:
                if status not in RETRYABLE_STATUSES:
                    return self._parse_body(status, payload)
                retry_after = parse_retry_after(headers.get("retry-after"))
                failure = ReproError(
                    f"routing service error (HTTP {status}): "
                    f"{self._error_of(payload)}"
                )
            delay = next(delays, None)
            if delay is None:
                raise failure
            time.sleep(retry_after if retry_after is not None else delay)

    @staticmethod
    def _error_of(payload: bytes) -> str:
        try:
            doc = json.loads(payload.decode("utf-8"))
        except ValueError:
            return "unknown error"
        return doc.get("error", "unknown error") if isinstance(doc, dict) \
            else "unknown error"

    @staticmethod
    def _parse_body(status: int, payload: bytes) -> Dict[str, Any]:
        try:
            rbody = json.loads(payload.decode("utf-8")) if payload else {}
        except ValueError:
            raise ReproError(
                "routing service returned a non-JSON body "
                f"(HTTP {status})"
            ) from None
        if status != 200 or not rbody.get("ok", False):
            raise ReproError(
                f"routing service error (HTTP {status}): "
                f"{rbody.get('error', 'unknown error')}"
            )
        return rbody

    # ------------------------------------------------------------------
    def route(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a request document; returns the response document."""
        return self._request("POST", "/route", doc)

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` document (raises when unreachable)."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """The server's ``/stats`` counters."""
        return self._request("GET", "/stats")

    def wait_ready(
        self,
        *,
        attempts: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> Dict[str, Any]:
        """Poll ``/healthz`` until the server answers (startup races).

        Polls on the :data:`READY_POLICY` backoff schedule (override
        with ``policy``; ``attempts`` caps the tries of either).
        """
        schedule = READY_POLICY if policy is None else policy
        if attempts is not None:
            schedule = RetryPolicy(
                attempts=attempts,
                base=schedule.base,
                multiplier=schedule.multiplier,
                max_delay=schedule.max_delay,
                jitter=schedule.jitter,
                seed=schedule.seed,
            )
        last: Exception = ReproError("service never polled")
        delays = iter(schedule.delays())
        while True:
            try:
                return self.health()
            except (OSError, ReproError) as exc:
                last = exc
                self.close()
            delay = next(delays, None)
            if delay is None:
                break
            time.sleep(delay)
        raise ReproError(f"routing service did not become ready: {last}")
