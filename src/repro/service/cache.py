"""Cross-request result cache on the content-addressed artifact store.

The service memoizes finished responses in the same
:class:`~repro.experiments.campaign.store.ArtifactStore` the campaign
layer uses, under the experiment name ``service-routes``.  The cache key
is the canonical request: the full problem document, the solver / polish
/ seed knobs, and the **previous routing document** — warm results are a
pure function of the previous routing, so it must key the entry; an
exact resubmission (same problem, same prev, same knobs) is served from
the store without recomputation, while any perturbation changes the hash
and misses.

Keys are duck-typed ``Experiment`` objects (``name`` / ``spec()`` /
``spec_hash()``), so the store's manifest, checksum and staleness
verification apply unchanged; payload floats round-trip hex-exactly, so
a cached response is bit-identical to the freshly computed one.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.experiments.campaign.spec import canonical_json
from repro.experiments.campaign.store import ArtifactStore
from repro.io.jsonio import problem_to_dict, routing_to_dict

#: experiment name the service's entries live under in the store
SERVICE_CACHE_NAME = "service-routes"

#: bumped whenever the response payload schema changes (keys old entries out)
SERVICE_CACHE_VERSION = 1


def request_wire(
    problem: RoutingProblem,
    prev: Optional[Routing],
    solver: str,
    polish: str,
    seed: int,
) -> Dict[str, Any]:
    """The canonical request document that keys the cache."""
    return {
        "version": SERVICE_CACHE_VERSION,
        "problem": problem_to_dict(problem),
        "prev": None if prev is None else routing_to_dict(prev),
        "solver": str(solver),
        "polish": str(polish),
        "seed": int(seed),
    }


class RouteRequestKey:
    """Duck-typed experiment key: one cache entry per canonical request."""

    name = SERVICE_CACHE_NAME

    def __init__(self, wire: Dict[str, Any]):
        self._wire = wire

    def spec(self) -> Dict[str, Any]:
        return self._wire

    def spec_hash(self) -> str:
        return hashlib.sha256(
            canonical_json(self._wire).encode()
        ).hexdigest()


def load_cached(
    store: ArtifactStore, key: RouteRequestKey
) -> Optional[Dict[str, Any]]:
    """The cached response payload for ``key``, or ``None`` on a miss."""
    doc = store.load_result(key)
    if doc is None:
        return None
    records = doc.get("records")
    return records if isinstance(records, dict) else None


def save_cached(
    store: ArtifactStore,
    key: RouteRequestKey,
    payload: Dict[str, Any],
    *,
    wall_time_s: float,
) -> None:
    """Persist a freshly computed response payload under ``key``."""
    store.save_result(
        key,
        payload,
        "",
        wall_time_s=wall_time_s,
        shards_cached=0,
        shards_computed=1,
    )
