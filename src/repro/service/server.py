"""Long-lived routing service: asyncio front, process-pool compute.

Protocol — JSON over HTTP/1.1, on TCP or a unix socket:

========  ===========  ====================================================
method    path         body
========  ===========  ====================================================
``POST``  ``/route``   a request document (below); returns the response
``GET``   ``/healthz`` liveness: ``{"ok": true, "version": ..., "jobs": N}``
``GET``   ``/stats``   server counters (requests, cache hits, warm/cold, …)
========  ===========  ====================================================

Request document::

    {"problem": <repro/problem@1|2>,          required
     "prev":    <repro/routing@1|2> | null,   previous routing → warm start
     "solver":  "XYI",                        cold-solve heuristic
     "polish":  "anneal" | "descent" | "none",
     "seed":    0,                            polish-burst / cold RNG seed
     "cache":   true}                         per-request cache opt-out

Response (HTTP 200)::

    {"ok": true, "mode": "cold" | "warm", "cache_hit": false,
     "routing": <repro/routing@1|2>, "power": ..., "valid": ...,
     "stats": {"matched": ..., "rerouted": ..., "polish_flips": ..., ...},
     "elapsed_ms": ...}

Malformed or invalid requests answer HTTP 400 with
``{"ok": false, "error": "..."}`` — the server never dies on a bad
request.  Every ``/route`` body is handled by the **pure** module-level
:func:`handle_request_doc` — with ``--jobs 1`` it runs inline on the
event-loop thread (strictly serial service), with more jobs it is
dispatched to a ``ProcessPoolExecutor``; either way the same function
computes the same bytes, so serial and pooled deployments are
bit-identical (``tests/test_service_server.py`` pins this).
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.core.routing import Routing
from repro.experiments.campaign.store import ArtifactStore
from repro.io.jsonio import problem_from_dict, routing_from_dict, routing_to_dict
from repro.service.cache import (
    RouteRequestKey,
    load_cached,
    request_wire,
    save_cached,
)
from repro.service.warmstart import (
    DEFAULT_POLISH,
    DEFAULT_SOLVER,
    RouteOutcome,
    route_incremental,
)
from repro.utils.validation import ReproError
from repro.version import __version__

#: default TCP port of ``repro serve``
DEFAULT_PORT = 8642

#: request-body ceiling (a 64x64 mesh problem with thousands of comms
#: serialises to well under a megabyte)
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def outcome_to_doc(outcome: RouteOutcome) -> Dict[str, Any]:
    """The response payload of a routed request (sans transport fields)."""
    return {
        "mode": outcome.stats.mode,
        "routing": routing_to_dict(outcome.routing),
        "power": outcome.power,
        "valid": outcome.valid,
        "stats": outcome.stats.as_dict(),
    }


def handle_request_doc(
    doc: Any,
    *,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> Tuple[int, Dict[str, Any]]:
    """Handle one ``/route`` request document → ``(status, body)``.

    Pure with respect to process state (modulo the artifact store under
    ``cache_dir``): safe to run inline, in a worker process, or straight
    from a test.
    """
    t0 = time.perf_counter()
    try:
        if not isinstance(doc, dict):
            raise ReproError("request body must be a JSON object")
        if "problem" not in doc:
            raise ReproError("request is missing the 'problem' document")
        problem = problem_from_dict(doc["problem"])
        prev_doc = doc.get("prev")
        prev: Optional[Routing] = (
            None if prev_doc is None else routing_from_dict(prev_doc)
        )
        solver = str(doc.get("solver", DEFAULT_SOLVER))
        polish = str(doc.get("polish", DEFAULT_POLISH))
        seed = doc.get("seed", 0)
        want_cache = use_cache and bool(doc.get("cache", True))
        key = RouteRequestKey(
            request_wire(problem, prev, solver, polish, seed)
        )
        store = ArtifactStore(cache_dir) if want_cache else None
        if store is not None:
            cached = load_cached(store, key)
            if cached is not None:
                body = dict(cached)
                body["ok"] = True
                body["cache_hit"] = True
                body["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
                return 200, body
        outcome = route_incremental(
            problem, prev, solver=solver, polish=polish, seed=seed
        )
        body = outcome_to_doc(outcome)
        if store is not None:
            save_cached(
                store, key, body, wall_time_s=time.perf_counter() - t0
            )
        body["ok"] = True
        body["cache_hit"] = False
        body["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
        return 200, body
    except ReproError as exc:
        return 400, {"ok": False, "error": str(exc)}


def _pool_worker(
    doc: Any, cache_dir: Optional[str], use_cache: bool
) -> Tuple[int, Dict[str, Any]]:
    """Picklable pool entry point (kwargs don't pickle as cleanly)."""
    return handle_request_doc(doc, cache_dir=cache_dir, use_cache=use_cache)


class RoutingServer:
    """The asyncio service front.

    Parameters
    ----------
    jobs:
        Routing workers.  ``1`` handles requests inline (strictly serial
        service); more spins up a ``ProcessPoolExecutor`` so long solves
        overlap.  Responses are bit-identical either way.
    cache_dir:
        Artifact-store root for the cross-request cache (default:
        ``.repro-cache`` / ``REPRO_CACHE_DIR``).
    use_cache:
        Globally disable the result cache (per-request opt-out exists
        too, via ``"cache": false`` in the document).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ):
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ReproError(f"jobs must be an integer >= 1, got {jobs!r}")
        self.jobs = jobs
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.use_cache = bool(use_cache)
        self._pool: Optional[ProcessPoolExecutor] = None
        self.stats: Dict[str, int] = {
            "requests": 0,
            "routed": 0,
            "cache_hits": 0,
            "warm": 0,
            "cold": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------
    async def start_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        """Listen on ``host:port``; returns the asyncio server."""
        self._ensure_pool()
        return await asyncio.start_server(self._handle, host, port)

    async def start_unix(self, path: str) -> asyncio.AbstractServer:
        """Listen on a unix socket at ``path``; returns the server."""
        self._ensure_pool()
        return await asyncio.start_unix_server(self._handle, path)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> None:
        if self.jobs > 1 and self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)

    # ------------------------------------------------------------------
    async def _dispatch(self, doc: Any) -> Tuple[int, Dict[str, Any]]:
        if self._pool is None:
            return handle_request_doc(
                doc, cache_dir=self.cache_dir, use_cache=self.use_cache
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, _pool_worker, doc, self.cache_dir, self.use_cache
        )

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, body = await self._respond(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # defensive: never kill the accept loop
            self.stats["errors"] += 1
            status, body = 500, {"ok": False, "error": f"internal: {exc}"}
        payload = json.dumps(body).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + payload)
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        parts = (await reader.readline()).decode("ascii", "replace").split()
        if len(parts) < 2:
            return 400, {"ok": False, "error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, {
                        "ok": False,
                        "error": "bad Content-Length header",
                    }
        if length < 0 or length > MAX_BODY_BYTES:
            return 413, {"ok": False, "error": "request body too large"}
        raw = await reader.readexactly(length) if length else b""
        self.stats["requests"] += 1
        if method == "GET" and path == "/healthz":
            return 200, {
                "ok": True,
                "version": __version__,
                "jobs": self.jobs,
            }
        if method == "GET" and path == "/stats":
            return 200, {"ok": True, **self.stats}
        if path != "/route":
            return 404, {"ok": False, "error": f"no such endpoint {path!r}"}
        if method != "POST":
            return 405, {"ok": False, "error": "/route expects POST"}
        try:
            doc = json.loads(raw.decode("utf-8"))
        except ValueError:
            self.stats["errors"] += 1
            return 400, {"ok": False, "error": "request body is not valid JSON"}
        status, body = await self._dispatch(doc)
        if status == 200:
            self.stats["routed"] += 1
            if body.get("cache_hit"):
                self.stats["cache_hits"] += 1
            mode = body.get("mode")
            if mode in ("warm", "cold"):
                self.stats[mode] += 1
        else:
            self.stats["errors"] += 1
        return status, body
