"""Long-lived routing service: asyncio front, process-pool compute.

Protocol — JSON over HTTP/1.1, on TCP or a unix socket, with
keep-alive (the server answers ``Connection: keep-alive`` and serves
requests on the same connection until the client closes or asks for
``Connection: close``):

========  ===========  ====================================================
method    path         body
========  ===========  ====================================================
``POST``  ``/route``   a request document (below); returns the response
``GET``   ``/healthz`` liveness: ``{"ok": true, "version": ..., "jobs": N}``
``GET``   ``/stats``   server counters (requests, cache hits, warm/cold,
                       rejected, timeouts, pool_rebuilds, queue gauges, …)
========  ===========  ====================================================

Request document::

    {"problem": <repro/problem@1|2>,          required
     "prev":    <repro/routing@1|2> | null,   previous routing → warm start
     "solver":  "XYI",                        cold-solve heuristic
     "polish":  "anneal" | "descent" | "none",
     "seed":    0,                            polish-burst / cold RNG seed
     "cache":   true}                         per-request cache opt-out

Response (HTTP 200)::

    {"ok": true, "mode": "cold" | "warm", "cache_hit": false,
     "routing": <repro/routing@1|2>, "power": ..., "valid": ...,
     "stats": {"matched": ..., "rerouted": ..., "polish_flips": ..., ...},
     "elapsed_ms": ...}

Malformed or invalid requests answer HTTP 400 with
``{"ok": false, "error": "..."}`` — the server never dies on a bad
request.  Every ``/route`` body is handled by the **pure** module-level
:func:`handle_request_doc` — with ``--jobs 1`` it runs inline on the
event-loop thread (strictly serial service), with more jobs it is
dispatched to a ``ProcessPoolExecutor``; either way the same function
computes the same bytes, so serial and pooled deployments are
bit-identical (``tests/test_service_server.py`` pins this).

Resilience (``tests/test_service_resilience.py``, ``docs/service.md``):

* **Admission control** — at most ``max_inflight`` route requests
  compute at once; up to ``queue_depth`` more wait.  Overflow answers
  HTTP 429 with a ``Retry-After`` hint instead of queueing unboundedly.
* **Deadlines** — header read, body read and compute each run under
  their own timeout; a timed-out compute answers 504 without killing
  the handler loop, a slow-reading connection is dropped.
* **Worker-crash recovery** — a ``BrokenProcessPool`` (e.g. a worker
  killed with ``kill -9``) rebuilds the pool and retries the in-flight
  request once; ``/stats`` counts ``pool_rebuilds``.
* **Graceful shutdown** — :meth:`RoutingServer.drain` stops accepting,
  finishes in-flight work under a deadline, then closes the pool.
* **Fault injection** — a :class:`~repro.service.resilience.FaultPlan`
  (or the ``REPRO_FAULTS`` env hook) scripts worker crashes, compute
  delays and dropped connections at chosen request indices, so every
  recovery path above is exercised deterministically by ordinary tests
  and the E-SOAK chaos bench.

Scaling (``docs/service.md`` "Scaling", the E-SAT bench):

* **Micro-batching** — with ``batch_window`` set, concurrently-queued
  ``/route`` requests coalesce into one batch submission evaluated
  through a shared parse cache (:mod:`repro.service.batching`);
  responses stay bit-identical to unbatched serial execution.
* **Prefork front** — ``repro serve --shards N`` runs N accept-loop
  processes on one listen port (:mod:`repro.service.prefork`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Awaitable, Dict, List, Optional, Tuple, TypeVar

# the pure request pipeline lives in repro.service.batching; re-exported
# here because this is where it historically lived (and the server is
# its natural home for readers)
from repro.service.batching import (  # noqa: F401 — re-exports
    DEFAULT_MAX_BATCH,
    MicroBatcher,
    ParsedRequest,
    _batch_pool_worker,
    _check_solver,
    handle_batch_docs,
    handle_request_doc,
    outcome_to_doc,
    parse_cache_stats,
    parse_request_doc,
    probe_request_doc,
)
from repro.service.resilience import FaultPlan, FaultSpec
from repro.utils.validation import ReproError
from repro.version import __version__

_T = TypeVar("_T")

#: default TCP port of ``repro serve``
DEFAULT_PORT = 8642

#: request-body ceiling (a 64x64 mesh problem with thousands of comms
#: serialises to well under a megabyte)
MAX_BODY_BYTES = 16 * 1024 * 1024

#: admission defaults: at most this many route computes at once …
DEFAULT_MAX_INFLIGHT = 8
#: … with this many more queued before overflow answers 429
DEFAULT_QUEUE_DEPTH = 32

#: deadline defaults (seconds); any of them can be disabled with None
DEFAULT_HEADER_TIMEOUT = 30.0
DEFAULT_BODY_TIMEOUT = 60.0
DEFAULT_COMPUTE_TIMEOUT = 300.0

#: the Retry-After hint sent with 429/503 answers (seconds)
RETRY_AFTER_HINT = 0.1

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _DropConnection(Exception):
    """Internal: a scripted ``drop`` fault — abort instead of answering."""


def _shutdown_socket(writer: asyncio.StreamWriter) -> None:
    """Force the peer to see EOF *now*, even with forked workers around.

    ``ProcessPoolExecutor`` workers are forked lazily on the first submit,
    so they inherit copies of whatever connection fds were open at that
    moment.  A plain ``close()``/``abort()`` in the parent then only drops
    the parent's fd refcount — the kernel sends no FIN/RST while a worker
    still holds a copy, and a client blocked on ``recv`` hangs until its
    socket timeout.  ``socket.shutdown`` acts on the socket itself rather
    than the fd, so the FIN goes out immediately regardless of inherited
    copies.
    """
    sock = writer.get_extra_info("socket")
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass  # already disconnected


def _worker_reset_signals() -> None:
    """Pool-worker initializer: drop fork-inherited signal plumbing.

    A forked worker inherits the serving process's signal wakeup fd and
    Python-level SIGTERM/SIGINT handlers (installed by ``repro serve``
    for graceful drain).  A signal delivered to the *worker* — e.g. the
    executor SIGTERMs surviving siblings while cleaning up after a
    crashed worker — would then run the inherited handler, write to the
    parent's shared wakeup pipe, and spuriously trigger the parent's
    own drain.  Reset both in every fresh worker.
    """
    import signal

    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)


def _pool_worker(
    doc: Any,
    cache_dir: Optional[str],
    use_cache: bool,
    fault: Optional[FaultSpec] = None,
) -> Tuple[int, Dict[str, Any]]:
    """Picklable pool entry point (kwargs don't pickle as cleanly).

    A scripted ``crash`` fault kills this worker the way ``kill -9``
    would (``os._exit``); a ``delay`` fault sleeps before computing, in
    the worker, so the server-side compute deadline can observe it.
    """
    if fault is not None:
        if fault.kind == "crash":
            import os

            os._exit(1)
        elif fault.kind == "delay" and fault.seconds > 0:
            time.sleep(fault.seconds)
    return handle_request_doc(doc, cache_dir=cache_dir, use_cache=use_cache)


class RoutingServer:
    """The asyncio service front.

    Parameters
    ----------
    jobs:
        Routing workers.  ``1`` handles requests inline (strictly serial
        service); more spins up a ``ProcessPoolExecutor`` so long solves
        overlap.  Responses are bit-identical either way.
    cache_dir:
        Artifact-store root for the cross-request cache (default:
        ``.repro-cache`` / ``REPRO_CACHE_DIR``).
    use_cache:
        Globally disable the result cache (per-request opt-out exists
        too, via ``"cache": false`` in the document).
    max_inflight / queue_depth:
        Admission control: at most ``max_inflight`` route requests
        compute concurrently, at most ``queue_depth`` more wait; any
        further request answers 429 with a ``Retry-After`` hint.
    header_timeout / body_timeout / compute_timeout:
        Per-phase deadlines in seconds (``None`` disables one).  Slow
        header/body reads drop the connection; a compute overrunning its
        deadline answers 504.  Inline (``jobs=1``) computes cannot be
        preempted mid-solve — the compute deadline needs ``jobs > 1`` to
        interrupt real work (injected delays are interruptible in both
        modes).
    batch_window / max_batch:
        Request micro-batching.  ``batch_window`` (seconds; ``None``
        disables batching) is how long concurrently-queued ``/route``
        requests coalesce before one batch submission evaluates them
        through a shared parse cache; ``max_batch`` submits a batch
        early once that many requests wait.  Batching changes dispatch,
        not results — responses stay bit-identical to unbatched
        serial execution.  Requests carrying an injected fault bypass
        the batcher (dispatched individually) so chaos semantics are
        unchanged; cache-memoized requests are answered by an inline
        probe without occupying a batch slot.
    fault_plan:
        A :class:`~repro.service.resilience.FaultPlan` scripting
        worker crashes / compute delays / connection drops by route
        request index (testing and chaos benches; default: no faults).
    verbose:
        Log one structured line per request to stderr.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        header_timeout: Optional[float] = DEFAULT_HEADER_TIMEOUT,
        body_timeout: Optional[float] = DEFAULT_BODY_TIMEOUT,
        compute_timeout: Optional[float] = DEFAULT_COMPUTE_TIMEOUT,
        batch_window: Optional[float] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        fault_plan: Optional[FaultPlan] = None,
        verbose: bool = False,
    ):
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ReproError(f"jobs must be an integer >= 1, got {jobs!r}")
        if isinstance(max_inflight, bool) or not isinstance(max_inflight, int) \
                or max_inflight < 1:
            raise ReproError(
                f"max_inflight must be an integer >= 1, got {max_inflight!r}"
            )
        if isinstance(queue_depth, bool) or not isinstance(queue_depth, int) \
                or queue_depth < 0:
            raise ReproError(
                f"queue_depth must be an integer >= 0, got {queue_depth!r}"
            )
        for name, value in (
            ("header_timeout", header_timeout),
            ("body_timeout", body_timeout),
            ("compute_timeout", compute_timeout),
        ):
            if value is not None and not value > 0:
                raise ReproError(f"{name} must be > 0 seconds or None")
        if batch_window is not None and not batch_window >= 0:
            raise ReproError(
                f"batch_window must be >= 0 seconds or None, "
                f"got {batch_window!r}"
            )
        if isinstance(max_batch, bool) or not isinstance(max_batch, int) \
                or max_batch < 1:
            raise ReproError(
                f"max_batch must be an integer >= 1, got {max_batch!r}"
            )
        self.jobs = jobs
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.use_cache = bool(use_cache)
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.header_timeout = header_timeout
        self.body_timeout = body_timeout
        self.compute_timeout = compute_timeout
        self.batch_window = (
            None if batch_window is None else float(batch_window)
        )
        self.max_batch = max_batch
        self.fault_plan = FaultPlan() if fault_plan is None else fault_plan
        self.verbose = bool(verbose)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_gen = 0
        self._batcher: Optional[MicroBatcher] = None
        self._sem: Optional[asyncio.Semaphore] = None
        self._waiting = 0  # route requests queued on the semaphore
        self._inflight = 0  # route requests admitted, not yet answered
        self._route_seq = 0  # arrival index driving the fault plan
        self._draining = False
        self.stats: Dict[str, int] = {
            "requests": 0,
            "routed": 0,
            "cache_hits": 0,
            "warm": 0,
            "cold": 0,
            "errors": 0,
            "rejected": 0,
            "timeouts": 0,
            "pool_rebuilds": 0,
            "drops": 0,
            "slow_reads": 0,
            "batches": 0,
            "batched": 0,
        }

    # ------------------------------------------------------------------
    async def start_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        """Listen on ``host:port``; returns the asyncio server."""
        self._ensure_pool()
        return await asyncio.start_server(self._handle, host, port)

    async def start_unix(self, path: str) -> asyncio.AbstractServer:
        """Listen on a unix socket at ``path``; returns the server."""
        self._ensure_pool()
        return await asyncio.start_unix_server(self._handle, path)

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    async def drain(
        self,
        server: Optional[asyncio.AbstractServer] = None,
        *,
        timeout: float = 10.0,
    ) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Closes ``server`` (when given) so no new connections are
        accepted, answers 503 to requests arriving on already-open
        keep-alive connections, waits up to ``timeout`` seconds for
        admitted route requests to finish, then shuts the pool down.
        Returns True when the service drained cleanly before the
        deadline, False when in-flight work was abandoned.
        """
        self._draining = True
        if self._batcher is not None:
            self._batcher.flush()  # don't sit out a batch window mid-drain
        if server is not None:
            server.close()
            await server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + float(timeout)
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        drained = self._inflight == 0
        # when the deadline was missed the pool may hold a stuck solve:
        # abandon it instead of blocking shutdown on it
        self.close(wait=drained)
        return drained

    def _ensure_pool(self) -> None:
        if self.jobs > 1 and self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_reset_signals
            )
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.max_inflight)
        if self.batch_window is not None and self._batcher is None:
            self._batcher = MicroBatcher(
                self._dispatch_batch_recovering,
                window=self.batch_window,
                max_batch=self.max_batch,
            )

    def _rebuild_pool(self, gen: int) -> None:
        """Replace a broken pool (once per breakage, however many see it)."""
        if gen != self._pool_gen:
            return  # a concurrent handler already rebuilt this generation
        self._pool_gen += 1
        self.stats["pool_rebuilds"] += 1
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_reset_signals
            )

    # ------------------------------------------------------------------
    async def _dispatch(
        self, doc: Any, fault: Optional[FaultSpec] = None
    ) -> Tuple[int, Dict[str, Any]]:
        if self._pool is None:
            if fault is not None and fault.kind == "crash":
                # inline mode has no worker to kill: surface the same
                # failure the pool path would, so recovery still runs
                raise BrokenProcessPool("injected worker crash (inline)")
            if fault is not None and fault.kind == "delay":
                await asyncio.sleep(fault.seconds)
            return handle_request_doc(
                doc, cache_dir=self.cache_dir, use_cache=self.use_cache
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, _pool_worker, doc, self.cache_dir, self.use_cache,
            fault,
        )

    async def _dispatch_recovering(
        self, doc: Any, fault: Optional[FaultSpec]
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch, rebuilding the pool and retrying once on a crash."""
        for attempt in (0, 1):
            gen = self._pool_gen
            try:
                return await self._dispatch(doc, fault if attempt == 0 else None)
            except BrokenExecutor:
                self._rebuild_pool(gen)
        return 503, {
            "ok": False,
            "error": "worker pool broke twice on this request; retry later",
        }

    async def _dispatch_batch(
        self, docs: List[Any]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        if self._pool is None:
            return handle_batch_docs(
                docs, cache_dir=self.cache_dir, use_cache=self.use_cache
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, _batch_pool_worker, docs, self.cache_dir,
            self.use_cache,
        )

    async def _dispatch_batch_recovering(
        self, docs: List[Any]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Dispatch a batch, rebuilding the pool and retrying once.

        The whole batch rides the same two-attempt recovery contract as
        a single request: a worker crash mid-batch rebuilds the pool and
        re-evaluates every document (they are pure, so the retry returns
        the same bytes).
        """
        self.stats["batches"] += 1
        for _ in (0, 1):
            gen = self._pool_gen
            try:
                return await self._dispatch_batch(docs)
            except BrokenExecutor:
                self._rebuild_pool(gen)
        return [
            (503, {
                "ok": False,
                "error": (
                    "worker pool broke twice on this request; retry later"
                ),
            })
            for _ in docs
        ]

    async def _route(self, doc: Any) -> Tuple[int, Dict[str, Any]]:
        """Admission control + deadline + crash recovery around dispatch."""
        assert self._sem is not None  # _ensure_pool ran at start_*
        if self._sem.locked() and self._waiting >= self.queue_depth:
            self.stats["rejected"] += 1
            return 429, {
                "ok": False,
                "error": (
                    f"server saturated ({self.max_inflight} in flight, "
                    f"{self._waiting} queued); retry after "
                    f"{RETRY_AFTER_HINT:g}s"
                ),
            }
        self._waiting += 1
        try:
            await self._sem.acquire()
        finally:
            self._waiting -= 1
        self._inflight += 1
        try:
            fault = self.fault_plan.take(self._route_seq)
            self._route_seq += 1
            if fault is not None and fault.kind == "drop":
                self.stats["drops"] += 1
                raise _DropConnection()
            if self._batcher is not None and fault is None:
                # memoized requests are answered inline, without a
                # batch slot; the probe only runs when the request
                # would consult the cache (cache-off requests join a
                # batch directly, invalid ones get their 400 there)
                if self.use_cache and (
                    not isinstance(doc, dict) or bool(doc.get("cache", True))
                ):
                    probed = probe_request_doc(
                        doc, cache_dir=self.cache_dir,
                        use_cache=self.use_cache,
                    )
                    if probed is not None:
                        return probed
                self.stats["batched"] += 1
                coro = self._batcher.route(doc)
            else:
                # faulted requests bypass the batcher so an injected
                # crash/delay disturbs exactly one request, as in the
                # unbatched chaos contract
                coro = self._dispatch_recovering(doc, fault)
            if self.compute_timeout is None:
                return await coro
            try:
                return await asyncio.wait_for(coro, self.compute_timeout)
            except asyncio.TimeoutError:
                self.stats["timeouts"] += 1
                return 504, {
                    "ok": False,
                    "error": (
                        f"compute exceeded the {self.compute_timeout:g}s "
                        "deadline"
                    ),
                }
        finally:
            self._inflight -= 1
            self._sem.release()

    # ------------------------------------------------------------------
    async def _read_phase(
        self, awaitable: Awaitable[_T], timeout: Optional[float]
    ) -> _T:
        if timeout is None:
            return await awaitable
        return await asyncio.wait_for(awaitable, timeout)

    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> Tuple[bytes, List[bytes]]:
        """Request line + raw header lines, as one awaitable.

        Grouping the reads lets the whole header phase run under a
        single ``wait_for`` deadline — per-line timers cost a task and
        a timer handle each, which is measurable at saturation.
        """
        line = await reader.readline()
        if line == b"":  # clean EOF between keep-alive requests
            raise ConnectionResetError("client closed the connection")
        headers: List[bytes] = []
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                return line, headers
            headers.append(hline)

    def _health_doc(self) -> Dict[str, Any]:
        """The ``/healthz`` body (prefork shards add their identity)."""
        return {"ok": True, "version": __version__, "jobs": self.jobs}

    def _stats_doc(self) -> Dict[str, Any]:
        """The ``/stats`` body (prefork shards aggregate across peers).

        The ``parse_cache_*`` counters cover this process's shared
        :class:`~repro.io.jsonio.ParseCache`; with a worker pool
        (``jobs > 1``) each worker keeps its own cache, so the counters
        then reflect inline parsing only.
        """
        return {
            "ok": True,
            **self.stats,
            **parse_cache_stats(),
            "inflight": self._inflight,
            "queued": self._waiting,
        }

    def _log(self, method: str, path: str, status: int, body: Dict[str, Any],
             t0: float) -> None:
        if not self.verbose:
            return
        mode = body.get("mode", "-")
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        print(
            f"repro-serve method={method} path={path} status={status} "
            f"mode={mode} cache_hit={int(bool(body.get('cache_hit')))} "
            f"elapsed_ms={elapsed_ms:.1f} queued={self._waiting} "
            f"inflight={self._inflight}",
            file=sys.stderr,
            flush=True,
        )

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while await self._serve_one(reader, writer):
                pass
        except asyncio.CancelledError:  # loop shutdown mid-keep-alive
            pass
        except Exception:  # defensive: never kill the accept loop
            pass
        finally:
            try:
                _shutdown_socket(writer)
                writer.close()
            except Exception:
                pass

    async def _serve_one(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Serve one request on an open connection.

        Returns True to keep the connection alive for the next request,
        False to close it (client EOF, ``Connection: close``, a read
        deadline, a scripted drop, draining, or a write failure).
        """
        t0 = time.perf_counter()
        keep = True
        try:
            status, body, method, path, keep = await self._respond(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            return False
        except asyncio.TimeoutError:  # slow header/body read: drop
            self.stats["slow_reads"] += 1
            _shutdown_socket(writer)
            return False
        except _DropConnection:
            _shutdown_socket(writer)
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return False
        except Exception as exc:  # defensive: answer 500, then close (the
            # connection may hold an un-read body after a mid-read failure)
            status, body = 500, {"ok": False, "error": f"internal: {exc}"}
            method = path = "-"
            keep = False
        if status != 200 and status not in (429, 504):
            # failures land in one counter; backpressure rejections and
            # compute timeouts keep their own dedicated counters instead
            self.stats["errors"] += 1
        if self._draining:
            keep = False
        # compact separators: ~10% fewer bytes per response at no cost
        payload = json.dumps(body, separators=(",", ":")).encode()
        extra = ""
        if status in (429, 503):
            extra = f"Retry-After: {RETRY_AFTER_HINT:g}\r\n"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            f"Connection: {'keep-alive' if keep else 'close'}\r\n\r\n"
        ).encode("ascii")
        writer.write(head + payload)
        try:
            await writer.drain()
        except ConnectionError:
            return False
        self._log(method, path, status, body, t0)
        return keep

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any], str, str, bool]:
        """Read and answer one request → (status, body, method, path, keep)."""
        line, hlines = await self._read_phase(
            self._read_head(reader), self.header_timeout
        )
        parts = line.decode("ascii", "replace").split()
        if len(parts) < 2:
            return 400, {"ok": False, "error": "malformed request line"}, \
                "-", "-", False
        method, path = parts[0].upper(), parts[1]
        length = 0
        keep = True
        for hline in hlines:
            name, _, value = hline.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, {
                        "ok": False,
                        "error": "bad Content-Length header",
                    }, method, path, False
            elif name == "connection":
                keep = value.strip().lower() != "close"
        if length < 0 or length > MAX_BODY_BYTES:
            return 413, {"ok": False, "error": "request body too large"}, \
                method, path, False
        raw = (
            await self._read_phase(reader.readexactly(length),
                                   self.body_timeout)
            if length
            else b""
        )
        self.stats["requests"] += 1
        if self._draining:
            return 503, {
                "ok": False, "error": "server is draining",
            }, method, path, False
        if method == "GET" and path == "/healthz":
            return 200, self._health_doc(), method, path, keep
        if method == "GET" and path == "/stats":
            return 200, self._stats_doc(), method, path, keep
        if path != "/route":
            return 404, {
                "ok": False, "error": f"no such endpoint {path!r}",
            }, method, path, keep
        if method != "POST":
            return 405, {
                "ok": False, "error": "/route expects POST",
            }, method, path, keep
        try:
            doc = json.loads(raw.decode("utf-8"))
        except ValueError:
            return 400, {
                "ok": False, "error": "request body is not valid JSON",
            }, method, path, keep
        status, body = await self._route(doc)
        if status == 200:
            self.stats["routed"] += 1
            if body.get("cache_hit"):
                self.stats["cache_hits"] += 1
            mode = body.get("mode")
            if mode in ("warm", "cold"):
                self.stats[mode] += 1
        return status, body, method, path, keep
