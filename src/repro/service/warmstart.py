"""Warm-start incremental re-routing: match, seed, repair, polish.

The serving layer's headline capability.  A request carries a routing
problem and, optionally, the client's *previous* routing — typically a
solution of a perturbed ancestor of the problem (communication rates
drifted, comms added or removed, links failed).  Instead of cold-solving,
the repair pipeline

1. **matches** the previous paths onto the new communication set by
   endpoints (multiset semantics: equal ``(src, snk)`` pairs are paired
   off in order, so duplicated endpoint pairs work),
2. **seeds** a :class:`~repro.heuristics.local_moves.RoutingState` with
   the matched move strings (added comms get an XY placeholder),
3. **re-routes** only the affected communications — added ones, those
   whose rate changed, those whose seeded path crosses a dead link — by
   greedy least-loaded re-insertion in decreasing-rate order
   (:meth:`~repro.heuristics.local_moves.RoutingState.reroute_greedy`),
4. **polishes** the repaired seed.  The default ``"anneal"`` polish runs
   a short fixed-budget Metropolis burst
   (:class:`~repro.heuristics.annealing.SimulatedAnnealing` via
   ``solve_from``) and then descends to a joint fixed point of the
   corner-flip descent (:func:`~repro.heuristics.local_moves.descend`)
   and XYI's corner-relocation descent
   (:meth:`XYImprover._route_from
   <repro.heuristics.xy_improver.XYImprover>`).  The burst is what lets
   a warm result track cold quality: a repaired seed inherits its
   ancestor's local optimum, and pure descent cannot escape that basin,
   but a low-temperature chain started *next to* a good solution can —
   at a fraction of the cost of the constructive solve the cold path
   pays.  The same polish finishes cold solves, so warm-vs-cold is a
   same-pipeline comparison; only the constructive stage is skipped.

Determinism contract: a warm result is a pure function of
``(problem, previous routing, polish, seed)`` — the only stochastic
stage, the annealing burst, is driven by the request's seed through the
repo's draw-order-preserving streams, so results are identical across
the ``REPRO_NATIVE`` tiers and across serial/process-pool deployments.
Repairing an **unperturbed** resubmission matches everything, classifies
nothing as affected, and returns the previous routing untouched without
entering the polish at all — power hex-identical, routing identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.heuristics import (
    RoutingState,
    SimulatedAnnealing,
    descend,
    get_heuristic,
)
from repro.heuristics.xy_improver import XYImprover
from repro.mesh.moves import MOVE_H, MOVE_V
from repro.utils.validation import ReproError

#: solver used when a request names none — the paper's best constructive
DEFAULT_SOLVER = "XYI"

#: polish stages a request may ask for
POLISH_MODES = ("anneal", "descent", "none")

#: polish used when a request names none
DEFAULT_POLISH = "anneal"

#: proposals of the ``"anneal"`` polish burst — sized so the burst plus
#: the joint descent stays well under a constructive solve, while still
#: escaping the local optima a repaired seed inherits
_ANNEAL_ITERS = 1200

#: safety cap on flip/relocation polish alternations (the joint descent
#: strictly decreases graded power, so it terminates on its own; two or
#: three rounds is typical)
_POLISH_ROUNDS = 8


@dataclass(frozen=True)
class SeedMatch:
    """Previous paths matched onto a new problem's communication set.

    ``moves[i]`` / ``prev_rates[i]`` are the matched previous move string
    and rate of communication ``i`` (``None`` when the communication is
    new); ``removed_links`` holds the link-id lists of previous paths with
    no counterpart in the request (their vacated links join the polish
    neighbourhood).
    """

    moves: Tuple[Optional[str], ...]
    prev_rates: Tuple[Optional[float], ...]
    removed_links: Tuple[Tuple[int, ...], ...]

    @property
    def matched(self) -> int:
        return sum(1 for m in self.moves if m is not None)


@dataclass(frozen=True)
class RepairStats:
    """What the warm-start (or cold) pipeline actually did."""

    mode: str  # "cold" | "warm"
    matched: int  # previous paths reused as seeds
    added: int  # comms with no previous path
    removed: int  # previous paths with no comm in the request
    rate_changed: int  # matched comms rerouted for a rate delta
    dead_repaired: int  # matched comms rerouted off dead links
    rerouted: int  # total greedy re-insertions
    polish_flips: int  # corner flips committed by the descent
    relocations: int  # paths changed by the relocation descent

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class RouteOutcome:
    """A routed request: the routing plus its strict evaluation."""

    routing: Routing
    power: float  # strict total power (inf when invalid)
    valid: bool
    stats: RepairStats


def _check_polish(polish: str) -> None:
    if polish not in POLISH_MODES:
        raise ReproError(
            f"unknown polish mode {polish!r}; choose from {POLISH_MODES}"
        )


def _check_seed(seed) -> int:
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise ReproError(f"seed must be an integer >= 0, got {seed!r}")
    return seed


# ----------------------------------------------------------------------
# matching
# ----------------------------------------------------------------------
def match_previous(problem: RoutingProblem, prev: Routing) -> SeedMatch:
    """Pair the previous routing's paths with ``problem``'s comms.

    Matching is by endpoints only — rates may differ (that *is* the
    perturbation) and the meshes may carry different fault profiles, but
    the mesh shape must agree (link ids are shape-relative, so previous
    link ids stay meaningful on the new mesh).
    """
    if not prev.is_single_path:
        raise ReproError(
            "warm start needs a single-path previous routing, got "
            f"max_split={prev.max_split}"
        )
    pm = prev.problem.mesh
    mesh = problem.mesh
    if (pm.p, pm.q) != (mesh.p, mesh.q):
        raise ReproError(
            f"previous routing is on a {pm.p}x{pm.q} mesh, the request "
            f"on {mesh.p}x{mesh.q}; warm start needs matching shapes"
        )
    pools: Dict[tuple, deque] = {}
    for i, c in enumerate(prev.problem.comms):
        pools.setdefault((c.src, c.snk), deque()).append(i)
    moves: List[Optional[str]] = []
    rates: List[Optional[float]] = []
    for c in problem.comms:
        pool = pools.get((c.src, c.snk))
        if pool:
            i = pool.popleft()
            moves.append(prev.paths(i)[0].moves)
            rates.append(prev.problem.comms[i].rate)
        else:
            moves.append(None)
            rates.append(None)
    removed = tuple(
        tuple(int(l) for l in prev.paths(i)[0].link_ids)
        for pool in pools.values()
        for i in pool
    )
    return SeedMatch(tuple(moves), tuple(rates), removed)


# ----------------------------------------------------------------------
# polish
# ----------------------------------------------------------------------
def _polish_joint(
    problem: RoutingProblem,
    state: RoutingState,
    targets: Optional[set] = None,
) -> Tuple[RoutingState, int, int]:
    """Alternate flip and relocation descents to a joint fixed point.

    ``targets`` restricts the *first* flip descent (the warm path's
    affected neighbourhood); every later round descends exactly the
    communications the relocation sweep changed.  Returns the polished
    state with the committed flip and relocation counts.  Both descents
    strictly decrease graded power, so the alternation terminates;
    ``_POLISH_ROUNDS`` is a safety cap only.
    """
    improver = XYImprover()
    flips = descend(state, targets)
    relocations = 0
    for _ in range(_POLISH_ROUNDS):
        cur = state.snapshot()
        paths = improver._route_from(problem, cur)
        changed = [i for i, p in enumerate(paths) if p.moves != cur[i]]
        if not changed:
            break
        relocations += len(changed)
        state = RoutingState(problem, [p.moves for p in paths])
        flips += descend(state, changed)
    return state, flips, relocations


def _polish(
    problem: RoutingProblem,
    state: RoutingState,
    *,
    polish: str,
    seed: int,
    targets: Optional[set] = None,
) -> Tuple[RoutingState, int, int]:
    """Run the requested polish stage on ``state``.

    ``"anneal"`` — a fixed-budget Metropolis burst seeded from the
    state's moves (driven by ``seed``), then the joint flip/relocation
    descent over everything.  ``"descent"`` — the joint descent alone
    (``targets`` restricts its first flip pass).  ``"none"`` — nothing.
    """
    if polish == "none":
        return state, 0, 0
    if polish == "anneal":
        burst = SimulatedAnnealing(iterations=_ANNEAL_ITERS, seed=seed)
        paths = burst._route_from(problem, state.snapshot())
        state = RoutingState(problem, [p.moves for p in paths])
        targets = None  # the burst may touch anything: descend globally
    return _polish_joint(problem, state, targets)


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------
def repair_state(
    problem: RoutingProblem,
    prev: Routing,
    *,
    polish: str = DEFAULT_POLISH,
    seed: int = 0,
) -> Tuple[RoutingState, RepairStats]:
    """Seed from ``prev`` and incrementally repair onto ``problem``.

    Returns the repaired state together with the repair statistics; the
    state's routing is the warm-start answer.  When nothing needs repair
    (an unperturbed resubmission) the polish is skipped entirely and the
    previous routing comes back untouched.
    """
    _check_polish(polish)
    _check_seed(seed)
    match = match_previous(problem, prev)
    seeded: List[str] = []
    repair: List[int] = []  # classification order: added, then perturbed
    added = 0
    for i, c in enumerate(problem.comms):
        mv = match.moves[i]
        if mv is None:
            # XY placeholder, immediately rerouted below
            seeded.append(
                MOVE_H * abs(c.snk[1] - c.src[1])
                + MOVE_V * abs(c.snk[0] - c.src[0])
            )
            repair.append(i)
            added += 1
        else:
            seeded.append(mv)
    state = RoutingState(problem, seeded)
    dead = (
        None
        if problem.mesh.dead_mask is None
        else set(problem.mesh.dead_link_ids())
    )
    rate_changed = 0
    dead_repaired = 0
    for i in range(problem.num_comms):
        prev_rate = match.prev_rates[i]
        if prev_rate is None:
            continue  # added: already queued
        if prev_rate != problem.comms[i].rate:
            repair.append(i)
            rate_changed += 1
        elif dead and set(state.links[i]) & dead:
            repair.append(i)
            dead_repaired += 1
    # vacated links of removed comms join the affected neighbourhood
    changed_links = set()
    for lids in match.removed_links:
        changed_links.update(lids)
    # re-insert heaviest first (SG's processing order), ties by index
    order = sorted(repair, key=lambda i: (-problem.comms[i].rate, i))
    for ci in order:
        changed_links.update(state.links[ci])
        mv, lks, deltas, dcost = state.reroute_greedy(ci)
        state.commit_resample(ci, mv, lks, deltas, dcost)
        changed_links.update(lks)
    flips = 0
    relocations = 0
    if order or match.removed_links:
        polish_set = set(order)
        for lid in changed_links:
            polish_set.update(state.comms_using(lid))
        state, flips, relocations = _polish(
            problem, state, polish=polish, seed=seed, targets=polish_set
        )
    stats = RepairStats(
        mode="warm",
        matched=match.matched,
        added=added,
        removed=len(match.removed_links),
        rate_changed=rate_changed,
        dead_repaired=dead_repaired,
        rerouted=len(order),
        polish_flips=flips,
        relocations=relocations,
    )
    return state, stats


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def solve_request(
    problem: RoutingProblem,
    prev: Optional[Routing] = None,
    *,
    solver: str = DEFAULT_SOLVER,
    polish: str = DEFAULT_POLISH,
    seed: int = 0,
) -> Tuple[Routing, RepairStats]:
    """The solving phase of :func:`route_incremental`, evaluation deferred.

    Returns the finished routing and the repair statistics *without* the
    final strict evaluation — callers holding several solved requests
    (the batch front) grade them together through
    :func:`finalize_outcomes` in one stacked pass instead of one
    evaluation per request.
    """
    _check_polish(polish)
    _check_seed(seed)
    if prev is not None:
        state, stats = repair_state(problem, prev, polish=polish, seed=seed)
    else:
        heuristic = get_heuristic(solver)
        heuristic.reseed(seed)
        result = heuristic.solve(problem)
        state = RoutingState.from_routing(problem, result.routing)
        dead = (
            None
            if problem.mesh.dead_mask is None
            else set(problem.mesh.dead_link_ids())
        )
        evacuate = []
        if dead:
            evacuate = [
                i
                for i in range(problem.num_comms)
                if set(state.links[i]) & dead
            ]
            for ci in sorted(
                evacuate, key=lambda i: (-problem.comms[i].rate, i)
            ):
                mv, lks, deltas, dcost = state.reroute_greedy(ci)
                state.commit_resample(ci, mv, lks, deltas, dcost)
        state, flips, relocations = _polish(
            problem, state, polish=polish, seed=seed
        )
        stats = RepairStats(
            mode="cold",
            matched=0,
            added=0,
            removed=0,
            rate_changed=0,
            dead_repaired=len(evacuate),
            rerouted=len(evacuate),
            polish_flips=flips,
            relocations=relocations,
        )
    return state.to_routing(), stats


def finalize_outcomes(
    pairs: List[Tuple[Routing, RepairStats]]
) -> List[RouteOutcome]:
    """Strictly evaluate solved requests — stacked when there are several.

    Two or more routings are graded through one
    :class:`~repro.mesh.kernel.MultiProblemKernel` pass (one array sweep
    for every request's power and validity); the result is bit-identical
    to evaluating each routing on its own, which is what a single entry
    falls back to.
    """
    if len(pairs) > 1:
        from repro.mesh.kernel import MultiProblemKernel

        mpk = MultiProblemKernel([r.problem for r, _ in pairs])
        loads = mpk.loads_from_routings([r for r, _ in pairs])
        powers = mpk.total_powers(loads)
        valids = mpk.valids(loads)
        return [
            RouteOutcome(
                routing=r,
                power=float(powers[i]),
                valid=bool(valids[i]),
                stats=stats,
            )
            for i, (r, stats) in enumerate(pairs)
        ]
    return [
        RouteOutcome(
            routing=r,
            power=r.total_power(),
            valid=r.is_valid(),
            stats=stats,
        )
        for r, stats in pairs
    ]


def route_incremental(
    problem: RoutingProblem,
    prev: Optional[Routing] = None,
    *,
    solver: str = DEFAULT_SOLVER,
    polish: str = DEFAULT_POLISH,
    seed: int = 0,
) -> RouteOutcome:
    """Route a request, warm-starting from ``prev`` when one is given.

    Cold path: the named registered heuristic (reseeded with ``seed``)
    solves from scratch, any path it left on a dead link is evacuated by
    the fault-aware greedy re-insertion (some constructives — XYI's XY
    start in particular — are not fault-aware on their own), and the
    requested polish finishes the routing.  Warm path:
    :func:`repair_state` — the same polish on the repaired seed, so the
    two paths differ only in where the seed comes from.
    """
    routing, stats = solve_request(
        problem, prev, solver=solver, polish=polish, seed=seed
    )
    return finalize_outcomes([(routing, stats)])[0]
