"""Request micro-batching: shared request pipeline + the coalescer.

This module owns the **pure** ``/route`` request pipeline (it used to
live in :mod:`repro.service.server`, which now re-exports it):

* :func:`parse_request_doc` — validate knobs, parse the problem and the
  optional previous routing.  With a shared
  :class:`~repro.io.jsonio.ParseCache` a *batch* of requests pays each
  distinct mesh / power-model / previous-routing parse once — under
  churn traffic every request of a batch tends to re-route from the
  same deployed routing, so this is the dominant shared cost.
* :func:`handle_request_doc` — the one-request handler: parse, cache
  probe, :func:`~repro.service.warmstart.route_incremental`, cache
  fill.  Unchanged contract: ``(status, body)``, pure with respect to
  process state modulo the artifact store.
* :func:`handle_batch_docs` — the batch evaluator: the same handler
  over every document of a batch with one shared parse cache, one
  shared *evaluation* for identical cache-off documents (request
  coalescing — under saturation the same churn re-route is in flight
  many times at once), and one stacked multi-problem *final grading*
  for the batch's distinct cache-off documents (``REPRO_STACKED``,
  see :mod:`repro.mesh.kernel`).  Each result is a pure function of its own
  ``(problem, prev, solver, polish, seed)`` — evaluation order cannot
  leak between requests — so batched responses are **bit-identical**
  to one-at-a-time :func:`handle_request_doc` (``elapsed_ms``, a
  wall-clock transport field, is the only exception; tests pin this).
* :func:`probe_request_doc` — the inline cache probe the server runs
  *before* coalescing, so memoized requests are answered from the
  artifact store without occupying a batch slot.
* :class:`MicroBatcher` — the asyncio coalescer: concurrently-queued
  documents are gathered for up to ``window`` seconds (or until
  ``max_batch`` of them wait) and submitted as one batch; each caller
  awaits its own future.

Determinism contract: batching changes *when* work is dispatched,
never *what* is computed — serial, pooled, batched and prefork-sharded
deployments all produce the same response bodies across the
``REPRO_NATIVE`` tiers.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.core.routing import Routing
from repro.experiments.campaign.store import ArtifactStore
from repro.heuristics import available_heuristics
from repro.io.jsonio import (
    ParseCache,
    problem_from_dict,
    routing_from_dict,
    routing_to_dict,
)
from repro.service.cache import (
    RouteRequestKey,
    load_cached,
    request_wire,
    save_cached,
)
from repro.mesh.kernel import stacked_enabled
from repro.service.warmstart import (
    DEFAULT_POLISH,
    DEFAULT_SOLVER,
    RouteOutcome,
    _check_polish,
    _check_seed,
    finalize_outcomes,
    route_incremental,
    solve_request,
)
from repro.utils.validation import ReproError

#: default ceiling on documents coalesced into one batch submission
DEFAULT_MAX_BATCH = 8

#: list-of-(status, body) — what the batch evaluator returns
BatchResults = List[Tuple[int, Dict[str, Any]]]

#: process-lifetime parse cache shared by every batch this process
#: evaluates.  Promoted from one-instance-per-batch so steady traffic
#: repeating a platform across batches parses it once per process, not
#: once per batch; the LRU bound (``REPRO_PARSE_CACHE``) keeps it from
#: growing with distinct-platform traffic.  Each pool worker holds its
#: own copy — a ParseCache must never cross a process boundary.
_PARSE_CACHE = ParseCache()


def parse_cache_stats() -> Dict[str, int]:
    """This process's shared parse-cache counters (for ``/stats``)."""
    return {
        "parse_cache_hits": _PARSE_CACHE.hits,
        "parse_cache_misses": _PARSE_CACHE.misses,
        "parse_cache_evictions": _PARSE_CACHE.evictions,
    }


def outcome_to_doc(outcome: RouteOutcome) -> Dict[str, Any]:
    """The response payload of a routed request (sans transport fields)."""
    return {
        "mode": outcome.stats.mode,
        "routing": routing_to_dict(outcome.routing),
        "power": outcome.power,
        "valid": outcome.valid,
        "stats": outcome.stats.as_dict(),
    }


def _check_solver(solver: Any) -> str:
    """Validate the request's cold-solve heuristic name eagerly."""
    if not isinstance(solver, str):
        raise ReproError(
            f"solver must be a string, got {type(solver).__name__}"
        )
    if solver not in available_heuristics():
        raise ReproError(
            f"unknown solver {solver!r}; available: "
            f"{', '.join(available_heuristics())}"
        )
    return solver


class ParsedRequest:
    """A validated, parsed ``/route`` document."""

    __slots__ = ("problem", "prev", "solver", "polish", "seed", "want_cache")

    def __init__(self, problem, prev, solver, polish, seed, want_cache):
        self.problem = problem
        self.prev: Optional[Routing] = prev
        self.solver: str = solver
        self.polish: str = polish
        self.seed: int = seed
        self.want_cache: bool = want_cache

    def key(self) -> RouteRequestKey:
        """The canonical artifact-store key of this request."""
        return RouteRequestKey(
            request_wire(
                self.problem, self.prev, self.solver, self.polish, self.seed
            )
        )


def parse_request_doc(
    doc: Any,
    *,
    use_cache: bool = True,
    parse_cache: Optional[ParseCache] = None,
) -> ParsedRequest:
    """Validate and parse one request document (raises :class:`ReproError`).

    The ``seed`` / ``solver`` / ``polish`` knobs are validated eagerly —
    before anything is parsed and regardless of the warm/cold path taken
    — so a bad knob always answers one-line 400 instead of surfacing
    wherever it would first have been used.
    """
    if not isinstance(doc, dict):
        raise ReproError("request body must be a JSON object")
    if "problem" not in doc:
        raise ReproError("request is missing the 'problem' document")
    solver = _check_solver(doc.get("solver", DEFAULT_SOLVER))
    polish = doc.get("polish", DEFAULT_POLISH)
    if not isinstance(polish, str):
        raise ReproError(
            f"polish must be a string, got {type(polish).__name__}"
        )
    _check_polish(polish)
    seed = _check_seed(doc.get("seed", 0))
    problem = problem_from_dict(doc["problem"], parse_cache)
    prev_doc = doc.get("prev")
    prev: Optional[Routing] = (
        None if prev_doc is None else routing_from_dict(prev_doc, parse_cache)
    )
    want_cache = use_cache and bool(doc.get("cache", True))
    return ParsedRequest(problem, prev, solver, polish, seed, want_cache)


def handle_request_doc(
    doc: Any,
    *,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    parse_cache: Optional[ParseCache] = None,
) -> Tuple[int, Dict[str, Any]]:
    """Handle one ``/route`` request document → ``(status, body)``.

    Pure with respect to process state (modulo the artifact store under
    ``cache_dir``): safe to run inline, in a worker process, or straight
    from a test.  A shared ``parse_cache`` only memoizes document
    parsing — the computed response is unaffected.
    """
    t0 = time.perf_counter()
    try:
        req = parse_request_doc(
            doc, use_cache=use_cache, parse_cache=parse_cache
        )
        key = req.key()
        store = ArtifactStore(cache_dir) if req.want_cache else None
        if store is not None:
            cached = load_cached(store, key)
            if cached is not None:
                body = dict(cached)
                body["ok"] = True
                body["cache_hit"] = True
                body["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
                return 200, body
        outcome = route_incremental(
            req.problem,
            req.prev,
            solver=req.solver,
            polish=req.polish,
            seed=req.seed,
        )
        body = outcome_to_doc(outcome)
        if store is not None:
            save_cached(
                store, key, body, wall_time_s=time.perf_counter() - t0
            )
        body["ok"] = True
        body["cache_hit"] = False
        body["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
        return 200, body
    except ReproError as exc:
        return 400, {"ok": False, "error": str(exc)}


def _coalesce_key(doc: Any, use_cache: bool) -> Optional[str]:
    """The within-batch identity of ``doc``, or ``None`` if not eligible.

    Only *cache-off* documents coalesce.  For them evaluation is a pure
    deterministic function of the document, so identical copies in one
    batch may share a single evaluation bit-for-bit.  A cache-on
    document must not: replayed serially, the first copy fills the
    artifact store and the second answers ``cache_hit: true`` — sharing
    one evaluation would change that body.
    """
    if not isinstance(doc, dict):
        return None
    if use_cache and bool(doc.get("cache", True)):
        return None
    try:
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None


def _solve_docs_stacked(
    indices: List[int],
    docs: List[Any],
    results: List[Optional[Tuple[int, Dict[str, Any]]]],
    *,
    use_cache: bool,
    parse_cache: Optional[ParseCache],
) -> None:
    """Evaluate cache-off documents with one stacked final grading.

    Each document still parses and solves on its own (per-request purity
    is the coalescing contract), but the final strict evaluations — one
    :meth:`~repro.core.routing.Routing.total_power` + validity check per
    request — are graded together through
    :func:`~repro.service.warmstart.finalize_outcomes`'s
    multi-problem pass.  Bodies are bit-identical to
    :func:`handle_request_doc`'s (``elapsed_ms`` excepted, as always).
    """
    solved: List[Tuple[int, float, Any, Any]] = []
    for i in indices:
        t0 = time.perf_counter()
        try:
            req = parse_request_doc(
                docs[i], use_cache=use_cache, parse_cache=parse_cache
            )
            routing, stats = solve_request(
                req.problem,
                req.prev,
                solver=req.solver,
                polish=req.polish,
                seed=req.seed,
            )
        except ReproError as exc:
            results[i] = (400, {"ok": False, "error": str(exc)})
            continue
        solved.append((i, t0, routing, stats))
    outcomes = finalize_outcomes([(r, s) for _, _, r, s in solved])
    for (i, t0, _, _), outcome in zip(solved, outcomes):
        body = outcome_to_doc(outcome)
        body["ok"] = True
        body["cache_hit"] = False
        body["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
        results[i] = (200, body)


def handle_batch_docs(
    docs: List[Any],
    *,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> BatchResults:
    """Evaluate a batch of request documents → one ``(status, body)`` each.

    The process-lifetime :class:`~repro.io.jsonio.ParseCache` is shared
    across the batch (and every batch before it), so requests repeating
    a mesh / power model / previous routing parse it (and build its
    platform caches) once.  Identical *cache-off* documents go further
    and share one evaluation outright (see :func:`_coalesce_key`) —
    under saturation the same churn re-route is often in flight many
    times at once, and one answer serves every copy — and the batch's
    *distinct* cache-off documents share one stacked final evaluation
    (:func:`_solve_docs_stacked`; ``REPRO_STACKED=0`` restores the
    looped reference).  Results are bit-identical to calling
    :func:`handle_request_doc` once per document — each response is a
    pure function of its own request.
    """
    parse_cache = _PARSE_CACHE
    keys = [_coalesce_key(doc, use_cache) for doc in docs]
    first_seen: Dict[str, int] = {}
    results: List[Optional[Tuple[int, Dict[str, Any]]]] = [None] * len(docs)
    stacked: List[int] = []
    for i, doc in enumerate(docs):
        if keys[i] is not None:
            if keys[i] in first_seen:
                continue  # replica — filled from its prototype below
            first_seen[keys[i]] = i
            # cache-off prototype: eligible for the stacked evaluation
            # (want_cache is False by construction, so the artifact
            # store is never consulted and order cannot matter)
            stacked.append(i)
            continue
        results[i] = handle_request_doc(
            doc,
            cache_dir=cache_dir,
            use_cache=use_cache,
            parse_cache=parse_cache,
        )
    if stacked:
        if stacked_enabled() and len(stacked) > 1:
            _solve_docs_stacked(
                stacked,
                docs,
                results,
                use_cache=use_cache,
                parse_cache=parse_cache,
            )
        else:
            for i in stacked:
                results[i] = handle_request_doc(
                    docs[i],
                    cache_dir=cache_dir,
                    use_cache=use_cache,
                    parse_cache=parse_cache,
                )
    for i in range(len(docs)):
        if results[i] is None:
            status, body = results[first_seen[keys[i]]]
            results[i] = (status, dict(body))
    return results


def probe_request_doc(
    doc: Any,
    *,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> Optional[Tuple[int, Dict[str, Any]]]:
    """Inline cache probe: answer without compute when possible.

    Returns the ``(status, body)`` answer for memoized requests (a
    cache hit, bit-identical to the cached document) and for invalid
    documents (the same one-line 400 the handler would produce — the
    probe and the handler share :func:`parse_request_doc`, so the
    answers cannot drift).  Returns ``None`` when the request needs
    compute, i.e. should join a batch.
    """
    t0 = time.perf_counter()
    try:
        req = parse_request_doc(doc, use_cache=use_cache)
    except ReproError as exc:
        return 400, {"ok": False, "error": str(exc)}
    if not req.want_cache:
        return None
    cached = load_cached(ArtifactStore(cache_dir), req.key())
    if cached is None:
        return None
    body = dict(cached)
    body["ok"] = True
    body["cache_hit"] = True
    body["elapsed_ms"] = (time.perf_counter() - t0) * 1e3
    return 200, body


def _batch_pool_worker(
    docs: List[Any],
    cache_dir: Optional[str],
    use_cache: bool,
) -> BatchResults:
    """Picklable pool entry point for one batch submission."""
    return handle_batch_docs(docs, cache_dir=cache_dir, use_cache=use_cache)


class MicroBatcher:
    """Coalesce concurrently-queued documents into batch submissions.

    Parameters
    ----------
    submit:
        Async callable evaluating one batch:
        ``submit(docs) -> [(status, body), ...]`` (one result per
        document, in order).  It must not raise for per-document
        failures — those are ``(status, body)`` results; only a broken
        transport may raise, and the exception is fanned out to every
        caller of the batch.
    window:
        Seconds a batch collects before it is submitted.  ``0`` still
        coalesces: the flush is deferred one event-loop tick, so
        documents queued in the same tick share a batch.
    max_batch:
        Submit immediately once this many documents wait.

    Every caller of :meth:`route` awaits a future resolved with its own
    document's result.  The batcher only groups *dispatch* — evaluation
    semantics live entirely in ``submit``.
    """

    def __init__(
        self,
        submit: Callable[[List[Any]], Awaitable[BatchResults]],
        *,
        window: float,
        max_batch: int = DEFAULT_MAX_BATCH,
    ):
        if not window >= 0:
            raise ReproError(
                f"batch window must be >= 0 seconds, got {window!r}"
            )
        if isinstance(max_batch, bool) or not isinstance(max_batch, int) \
                or max_batch < 1:
            raise ReproError(
                f"max_batch must be an integer >= 1, got {max_batch!r}"
            )
        self._submit = submit
        self.window = float(window)
        self.max_batch = max_batch
        self._pending: List[Tuple[Any, asyncio.Future]] = []
        self._flusher: Optional[asyncio.Task] = None
        self._tasks: set = set()
        #: batches submitted / documents batched (observability)
        self.batches = 0
        self.batched = 0

    async def route(self, doc: Any) -> Tuple[int, Dict[str, Any]]:
        """Queue ``doc`` for the next batch; await its own result."""
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((doc, fut))
        self.batched += 1
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._flusher is None:
            self._flusher = asyncio.ensure_future(self._flush_after_window())
        return await fut

    async def _flush_after_window(self) -> None:
        await asyncio.sleep(self.window)
        self._flusher = None
        self.flush()

    def flush(self) -> None:
        """Submit whatever waits right now (idempotent when empty)."""
        if self._flusher is not None:
            self._flusher.cancel()
            self._flusher = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.batches += 1
        task = asyncio.ensure_future(self._run(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, batch: List[Tuple[Any, asyncio.Future]]) -> None:
        try:
            results = await self._submit([doc for doc, _ in batch])
        except Exception as exc:  # fan the transport failure out
            for _, fut in batch:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for (_, fut), result in zip(batch, results):
            if not fut.done():
                fut.set_result(result)
