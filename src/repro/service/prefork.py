"""Prefork multi-process front: shard accept loops under a supervisor.

``repro serve --shards N`` runs N **shard** processes, each a full
:class:`~repro.service.server.RoutingServer` accept loop, all serving
one listen endpoint:

* **TCP** — every shard binds its own socket to the same address with
  ``SO_REUSEPORT``; the kernel load-balances incoming connections
  across the listening shards.  The supervisor holds a bound but
  *non-listening* ``SO_REUSEPORT`` "anchor" socket on the same address:
  it never receives connections (the kernel only distributes among
  listening sockets) but keeps the port reserved across shard restarts
  and resolves ``--port 0`` to a concrete port before the first fork.
* **Unix socket** — the supervisor binds and listens once; every shard
  inherits the listening fd through ``fork`` and accepts from the
  shared queue.

The supervisor ``waitpid``-loops: a shard that dies unexpectedly is
logged and **restarted** (the replacement loads its predecessor's last
stats flush as a baseline, so aggregate counters survive the restart),
and SIGTERM/SIGINT is fanned out as SIGTERM to every shard for a
graceful drain — the supervisor exits 0 once all shards drained
cleanly.

``/stats`` stays one endpoint: each shard periodically flushes its
counters to a per-shard JSON file (:class:`StatsBoard`, atomic
tmp+rename writes), and whichever shard answers ``/stats`` flushes its
own counters first, then returns the **aggregate** across the board
plus a ``per_shard`` breakdown and its own ``shard`` id.  ``/healthz``
carries ``shard`` and ``pid`` so clients can observe restarts.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.service.batching import parse_cache_stats
from repro.service.resilience import FaultPlan
from repro.service.server import RoutingServer
from repro.utils.validation import ReproError

#: seconds between periodic per-shard stats flushes
STATS_FLUSH_INTERVAL = 0.25

#: listen backlog of shard sockets
BACKLOG = 128

#: a shard dying this soon after its spawn counts as a rapid failure …
RAPID_DEATH_S = 0.5
#: … and this many consecutive rapid failures abort the supervisor
MAX_RAPID_DEATHS = 10


class StatsBoard:
    """Per-shard counter files under one directory (atomic writes).

    One JSON file per shard id.  Writes go through a tmp file +
    ``os.replace`` so a reader never sees a torn document; a shard
    restarted after a crash loads its predecessor's file as a baseline,
    which keeps aggregate counters monotonic across restarts (modulo
    at most one flush interval of unflushed counts).
    """

    def __init__(self, root: str):
        self.root = str(root)

    def path(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard-{int(shard_id)}.json")

    def write(self, shard_id: int, stats: Dict[str, Any]) -> None:
        path = self.path(shard_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(stats, fh)
        os.replace(tmp, path)

    def load(self, shard_id: int) -> Dict[str, Any]:
        """The shard's last flush ({} when it never flushed)."""
        try:
            with open(self.path(shard_id)) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return {}
        return doc if isinstance(doc, dict) else {}

    def shard_ids(self) -> List[int]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        ids = []
        for name in names:
            if name.startswith("shard-") and name.endswith(".json"):
                try:
                    ids.append(int(name[len("shard-"):-len(".json")]))
                except ValueError:
                    pass
        return sorted(ids)

    def aggregate(self) -> Tuple[Dict[str, int], Dict[str, Dict[str, int]]]:
        """``(totals, per_shard)`` over every shard file on the board."""
        totals: Dict[str, int] = {}
        per_shard: Dict[str, Dict[str, int]] = {}
        for sid in self.shard_ids():
            stats = self.load(sid)
            counters = {
                k: int(v) for k, v in stats.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            }
            per_shard[str(sid)] = counters
            for k, v in counters.items():
                totals[k] = totals.get(k, 0) + v
        return totals, per_shard


class ShardServer(RoutingServer):
    """One prefork shard: a :class:`RoutingServer` plus board bookkeeping."""

    def __init__(self, *, shard_id: int, board: StatsBoard, **kwargs):
        super().__init__(**kwargs)
        self.shard_id = int(shard_id)
        self.board = board
        # a restarted shard resumes its predecessor's counters so the
        # board aggregate stays consistent across crashes
        self._baseline = {
            k: int(v)
            for k, v in board.load(self.shard_id).items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }

    def snapshot(self) -> Dict[str, int]:
        """This shard's counters, baseline included."""
        counters = {**self.stats, **parse_cache_stats()}
        return {
            k: v + self._baseline.get(k, 0) for k, v in counters.items()
        }

    def flush(self) -> None:
        self.board.write(self.shard_id, self.snapshot())

    def _health_doc(self) -> Dict[str, Any]:
        doc = super()._health_doc()
        doc["shard"] = self.shard_id
        doc["pid"] = os.getpid()
        return doc

    def _stats_doc(self) -> Dict[str, Any]:
        # flush first so this shard's own counters are exact in the
        # aggregate; peers may lag by up to one flush interval
        self.flush()
        totals, per_shard = self.board.aggregate()
        return {
            "ok": True,
            **totals,
            "inflight": self._inflight,
            "queued": self._waiting,
            "shard": self.shard_id,
            "per_shard": per_shard,
        }


def _reuseport_socket(host: str, port: int) -> socket.socket:
    """A bound ``SO_REUSEPORT`` TCP socket (not yet listening)."""
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - non-unix
        raise ReproError(
            "--shards needs SO_REUSEPORT, unavailable on this platform"
        )
    infos = socket.getaddrinfo(
        host, port, type=socket.SOCK_STREAM, proto=socket.IPPROTO_TCP
    )
    family, kind, proto, _, addr = infos[0]
    sock = socket.socket(family, kind, proto)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind(addr)
    except OSError:
        sock.close()
        raise
    return sock


def _shard_main(
    shard_id: int,
    board: StatsBoard,
    *,
    host: str,
    port: int,
    unix_sock: Optional[socket.socket],
    drain_timeout: float,
    server_kwargs: Dict[str, Any],
) -> None:
    """Run one shard's accept loop; never returns (``os._exit``)."""
    code = 1
    try:
        # the fault-plan env hook is re-read per shard so REPRO_FAULTS
        # scripts each shard's request stream independently
        server = ShardServer(
            shard_id=shard_id,
            board=board,
            fault_plan=FaultPlan.from_env(),
            **server_kwargs,
        )

        async def run() -> bool:
            if unix_sock is not None:
                server._ensure_pool()
                srv = await asyncio.start_unix_server(
                    server._handle, sock=unix_sock
                )
            else:
                lsock = _reuseport_socket(host, port)
                lsock.listen(BACKLOG)
                server._ensure_pool()
                srv = await asyncio.start_server(server._handle, sock=lsock)
            loop = asyncio.get_running_loop()
            stop = asyncio.Event()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, stop.set)

            async def flush_loop() -> None:
                while True:
                    await asyncio.sleep(STATS_FLUSH_INTERVAL)
                    server.flush()

            flusher = asyncio.ensure_future(flush_loop())
            server.flush()  # announce this shard on the board
            async with srv:
                await stop.wait()
                drained = await server.drain(srv, timeout=drain_timeout)
            flusher.cancel()
            server.flush()
            return drained

        code = 0 if asyncio.run(run()) else 1
    except Exception as exc:  # noqa: BLE001 — a shard must never
        # escape into the supervisor's stack below the fork point
        print(f"repro-serve shard {shard_id} failed: {exc}",
              file=sys.stderr, flush=True)
        code = 1
    finally:
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(code)


def _describe_exit(status: int) -> str:
    if os.WIFSIGNALED(status):
        return f"signal {os.WTERMSIG(status)}"
    return f"exit {os.WEXITSTATUS(status)}"


def run_prefork(
    *,
    shards: int,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
    drain_timeout: float = 10.0,
    announce: bool = True,
    **server_kwargs: Any,
) -> int:
    """Supervise ``shards`` accept-loop processes; block until shutdown.

    ``server_kwargs`` are passed to every shard's
    :class:`~repro.service.server.RoutingServer` (jobs, cache, admission,
    batching, …).  Returns the process exit code: 0 when every shard
    drained cleanly after SIGTERM/SIGINT, 1 otherwise.
    """
    if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
        raise ReproError(f"shards must be an integer >= 1, got {shards!r}")
    board_dir = tempfile.mkdtemp(prefix="repro-shards-")
    board = StatsBoard(board_dir)
    anchor: Optional[socket.socket] = None
    unix_sock: Optional[socket.socket] = None
    if socket_path is not None:
        try:
            os.unlink(socket_path)
        except OSError:
            pass
        unix_sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        unix_sock.bind(socket_path)
        unix_sock.listen(BACKLOG)
        where = f"unix:{socket_path}"
    else:
        anchor = _reuseport_socket(host, port)
        port = anchor.getsockname()[1]  # resolve --port 0 before forking
        where = f"http://{host}:{port}"

    pids: Dict[int, int] = {}
    spawned_at: Dict[int, float] = {}

    def spawn(shard_id: int) -> int:
        pid = os.fork()
        if pid == 0:  # child: never returns
            if anchor is not None:
                anchor.close()  # shards bind their own REUSEPORT socket
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            signal.signal(signal.SIGINT, signal.SIG_DFL)
            _shard_main(
                shard_id,
                board,
                host=host,
                port=port,
                unix_sock=unix_sock,
                drain_timeout=drain_timeout,
                server_kwargs=server_kwargs,
            )
            raise AssertionError("unreachable")  # pragma: no cover
        pids[pid] = shard_id
        spawned_at[pid] = time.monotonic()
        return pid

    draining = False

    def on_term(signum, frame):  # noqa: ARG001 — signal signature
        nonlocal draining
        draining = True
        for pid in list(pids):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    prev_term = signal.signal(signal.SIGTERM, on_term)
    prev_int = signal.signal(signal.SIGINT, on_term)

    try:
        for sid in range(shards):
            spawn(sid)
        if announce:
            print(
                f"repro service listening on {where} "
                f"(shards={shards}, supervisor pid {os.getpid()})",
                flush=True,
            )
        failures = 0
        rapid = 0
        while pids:
            try:
                pid, status = os.waitpid(-1, 0)
            except InterruptedError:  # pragma: no cover - pre-PEP-475
                continue
            except ChildProcessError:
                break
            sid = pids.pop(pid, None)
            if sid is None:
                continue
            if draining:
                if not (os.WIFEXITED(status)
                        and os.WEXITSTATUS(status) == 0):
                    failures += 1
                continue
            if time.monotonic() - spawned_at.get(pid, 0.0) < RAPID_DEATH_S:
                rapid += 1
                if rapid > MAX_RAPID_DEATHS:
                    print(
                        f"shard {sid} keeps dying at birth "
                        f"({_describe_exit(status)}); giving up",
                        file=sys.stderr,
                        flush=True,
                    )
                    on_term(signal.SIGTERM, None)
                    failures += 1
                    continue
            else:
                rapid = 0
            print(
                f"shard {sid} (pid {pid}) died ({_describe_exit(status)}); "
                "restarting",
                flush=True,
            )
            spawn(sid)
        return 0 if draining and failures == 0 else 1
    finally:
        signal.signal(signal.SIGTERM, prev_term)
        signal.signal(signal.SIGINT, prev_int)
        if anchor is not None:
            anchor.close()
        if unix_sock is not None:
            unix_sock.close()
            try:
                os.unlink(socket_path)
            except OSError:
                pass
        for name in os.listdir(board_dir):
            try:
                os.unlink(os.path.join(board_dir, name))
            except OSError:
                pass
        try:
            os.rmdir(board_dir)
        except OSError:
            pass
