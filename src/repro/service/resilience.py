"""Service resilience primitives: fault injection and retry schedules.

Two small, deterministic building blocks shared by the server, the
client, the chaos tests and the E-SOAK bench:

:class:`FaultPlan`
    A *scripted* sequence of infrastructure faults, keyed by the
    server's ``/route`` arrival index — "crash the pool worker handling
    request 3, delay request 5's compute by 200 ms, drop request 7's
    connection before answering".  The server consults the plan exactly
    once per arriving route request, so a plan replays identically on
    every run; because :func:`repro.service.server.handle_request_doc`
    is a pure function of the request document, the *answers* are
    bit-identical with or without the faults — only the latency and the
    recovery counters differ.  That is what lets ordinary tier-1 tests
    (and the E-SOAK bench) assert zero lost requests and byte-equal
    routings while workers are being killed under them.

:class:`RetryPolicy`
    A seeded exponential-backoff-with-jitter schedule.  The jitter
    stream comes from ``random.Random(seed)``, so a client's retry
    timing is reproducible — two soak runs with the same seeds issue
    the same sleeps.  The client retries connection errors, truncated
    responses and HTTP 429/503/504 on this schedule; ``wait_ready``
    polls startup on it too.

Faults can also be scripted from the environment (``REPRO_FAULTS``),
which is how the CI chaos smoke injects a worker crash into a stock
``repro serve`` process without any test scaffolding.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.utils.validation import ReproError

#: environment variable ``repro serve`` reads a fault plan from
FAULTS_ENV = "REPRO_FAULTS"

#: fault kinds a plan may script
FAULT_KINDS = ("crash", "delay", "drop")


class TruncatedResponseError(ReproError):
    """The service connection closed before the advertised body arrived.

    Distinguished from a complete-but-invalid body (never retried) so
    the client's retry loop can treat a mid-body connection cut like any
    other transient transport failure.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: ``kind`` fired at route-request ``index``.

    ``seconds`` is the injected compute delay for ``"delay"`` faults
    (ignored for the other kinds).
    """

    index: int
    kind: str
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not isinstance(self.index, int) or self.index < 0:
            raise ReproError(
                f"fault index must be an integer >= 0, got {self.index!r}"
            )
        if self.seconds < 0:
            raise ReproError(
                f"fault delay must be >= 0 seconds, got {self.seconds!r}"
            )


class FaultPlan:
    """A deterministic schedule of injected faults, one-shot per index.

    The server numbers ``/route`` requests in arrival order (retries of
    a crashed in-flight request keep their number; a client resubmitting
    a dropped request arrives as a new number) and calls :meth:`take`
    with each number exactly once — the matching fault, if any, is
    consumed.  At most one fault per index.

    Construction::

        FaultPlan([FaultSpec(3, "crash"), FaultSpec(5, "delay", 0.2)])
        FaultPlan.parse("crash@3,delay@5:0.2,drop@7")
        FaultPlan.parse('[{"index": 3, "kind": "crash"}]')   # JSON form
        FaultPlan.from_env()                                  # REPRO_FAULTS
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        by_index: Dict[int, FaultSpec] = {}
        for spec in specs:
            if spec.index in by_index:
                raise ReproError(
                    f"fault plan scripts two faults at index {spec.index}"
                )
            by_index[spec.index] = spec
        self._pending: Dict[int, FaultSpec] = by_index
        self._specs: Tuple[FaultSpec, ...] = tuple(
            sorted(by_index.values(), key=lambda s: s.index)
        )

    # ------------------------------------------------------------------
    @property
    def specs(self) -> Tuple[FaultSpec, ...]:
        """Every scripted fault, in index order (consumed ones included)."""
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __bool__(self) -> bool:
        return bool(self._specs)

    def pending(self) -> int:
        """How many scripted faults have not fired yet."""
        return len(self._pending)

    def take(self, index: int) -> Optional[FaultSpec]:
        """Consume and return the fault scripted at ``index`` (or None)."""
        return self._pending.pop(index, None)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the compact or the JSON wire form.

        Compact: comma-separated ``kind@index[:seconds]`` items, e.g.
        ``"crash@3,delay@5:0.2,drop@7"``.  JSON: a list of objects with
        ``index`` / ``kind`` / optional ``seconds`` keys.  An empty or
        whitespace-only string is the empty plan.
        """
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("["):
            try:
                items = json.loads(text)
            except ValueError as exc:
                raise ReproError(f"fault plan is not valid JSON: {exc}") from None
            if not isinstance(items, list):
                raise ReproError("JSON fault plan must be a list of objects")
            specs = []
            for item in items:
                if not isinstance(item, dict) or "kind" not in item:
                    raise ReproError(
                        "each JSON fault needs at least 'index' and 'kind', "
                        f"got {item!r}"
                    )
                specs.append(
                    FaultSpec(
                        index=item.get("index", -1),
                        kind=str(item["kind"]),
                        seconds=float(item.get("seconds", 0.0)),
                    )
                )
            return cls(specs)
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, at, rest = part.partition("@")
            if not at:
                raise ReproError(
                    f"bad fault {part!r}: expected kind@index[:seconds]"
                )
            idx_text, _, sec_text = rest.partition(":")
            try:
                index = int(idx_text)
                seconds = float(sec_text) if sec_text else 0.0
            except ValueError:
                raise ReproError(
                    f"bad fault {part!r}: expected kind@index[:seconds]"
                ) from None
            specs.append(FaultSpec(index=index, kind=kind.strip(), seconds=seconds))
        return cls(specs)

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> "FaultPlan":
        """The plan scripted in ``REPRO_FAULTS`` (empty plan when unset)."""
        mapping = os.environ if env is None else env
        return cls.parse(mapping.get(FAULTS_ENV, ""))


# ----------------------------------------------------------------------
# retry schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with jitter.

    ``attempts`` counts *tries*, not retries: ``attempts=5`` means one
    initial try plus up to four retries, sleeping between them.  The
    k-th sleep is ``min(max_delay, base * multiplier**k)`` scaled by a
    jitter factor drawn uniformly from ``[1, 1 + jitter]`` out of
    ``random.Random(seed)`` — fully deterministic per (policy, seed).
    """

    attempts: int = 5
    base: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.attempts, bool) or not isinstance(self.attempts, int) \
                or self.attempts < 1:
            raise ReproError(
                f"retry attempts must be an integer >= 1, got {self.attempts!r}"
            )
        if self.base < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ReproError("retry delays and jitter must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError(
                f"retry multiplier must be >= 1, got {self.multiplier!r}"
            )

    def delays(self) -> Iterator[float]:
        """The sleep schedule between tries (``attempts - 1`` values)."""
        rng = random.Random(self.seed)
        for k in range(self.attempts - 1):
            delay = min(self.max_delay, self.base * self.multiplier ** k)
            yield delay * (1.0 + self.jitter * rng.random())

    def reseeded(self, seed: int) -> "RetryPolicy":
        """The same schedule shape with a different jitter seed."""
        return RetryPolicy(
            attempts=self.attempts,
            base=self.base,
            multiplier=self.multiplier,
            max_delay=self.max_delay,
            jitter=self.jitter,
            seed=seed,
        )


#: statuses the client treats as transient and retries on the schedule
RETRYABLE_STATUSES = (429, 503, 504)


def parse_retry_after(value: Union[str, None]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header value (None when unusable).

    Only the delta-seconds form is supported (the service never sends
    HTTP-dates); fractional values are accepted because both ends of
    this protocol are ours.
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    return seconds if seconds >= 0 else None
