"""Core problem model: power, communications, routings, evaluation.

This package implements Sections 3.1–3.5 of the paper: the link power model
(static leakage + frequency-scaled dynamic power), the communication set,
the routing-rule hierarchy (XY ⊂ 1-MP ⊂ s-MP ⊂ max-MP), validity (no link
above its bandwidth) and the power objective.
"""

from repro.core.power import PowerModel, OVERLOAD
from repro.core.problem import Communication, RoutingProblem
from repro.core.routing import Routing, RoutedFlow
from repro.core.evaluate import RoutingReport, evaluate_routing, loads_report
from repro.core.rules import RoutingRule, complies_with_rule, max_paths_bound
from repro.core.splitting import even_split, proportional_split, validate_split
from repro.core.frequency import (
    FrequencyAssignment,
    assign_frequencies,
    geometric_ladder,
    routing_frequency_plan,
    uniform_ladder,
)

__all__ = [
    "PowerModel",
    "OVERLOAD",
    "Communication",
    "RoutingProblem",
    "Routing",
    "RoutedFlow",
    "RoutingReport",
    "evaluate_routing",
    "loads_report",
    "RoutingRule",
    "complies_with_rule",
    "max_paths_bound",
    "even_split",
    "proportional_split",
    "validate_split",
    "FrequencyAssignment",
    "assign_frequencies",
    "routing_frequency_plan",
    "uniform_ladder",
    "geometric_ladder",
]
