"""Communications and routing-problem instances (Sections 3.2 and 3.4).

A :class:`Communication` is the system-level unit of work: a source core, a
sink core and a sustained rate in bytes-per-second units (Mb/s under the
paper's constants).  A :class:`RoutingProblem` bundles a mesh, a power model
and a communication set, and caches per-communication geometry
(:class:`repro.mesh.paths.CommDag`) so heuristics don't rebuild it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.power import PowerModel
from repro.mesh.diagonals import diag_index, direction_of
from repro.mesh.paths import CommDag, count_paths
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError, check_positive

Coord = Tuple[int, int]


@dataclass(frozen=True)
class Communication:
    """One communication ``γ = (src, snk, rate)``.

    ``rate`` is the requested sustained bandwidth ``δ`` (bytes/s in the
    paper's prose; Mb/s under the Kim–Horowitz constants).  Source and sink
    must differ — a self-communication never leaves the core and is outside
    the routing problem.
    """

    src: Coord
    snk: Coord
    rate: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", (int(self.src[0]), int(self.src[1])))
        object.__setattr__(self, "snk", (int(self.snk[0]), int(self.snk[1])))
        check_positive("rate", self.rate)
        if self.src == self.snk:
            raise InvalidParameterError(
                f"communication source and sink coincide at {self.src}"
            )

    @property
    def length(self) -> int:
        """Manhattan distance between the endpoints (= path length)."""
        return abs(self.snk[0] - self.src[0]) + abs(self.snk[1] - self.src[1])

    @property
    def direction(self) -> int:
        """Paper direction ``d`` in 1..4 (see :mod:`repro.mesh.diagonals`)."""
        return direction_of(self.src, self.snk)

    @property
    def delta_u(self) -> int:
        """Number of vertical hops."""
        return abs(self.snk[0] - self.src[0])

    @property
    def delta_v(self) -> int:
        """Number of horizontal hops."""
        return abs(self.snk[1] - self.src[1])

    def path_count(self) -> int:
        """Number of Manhattan paths available to this communication."""
        return count_paths(self.delta_u, self.delta_v)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"γ({self.src}->{self.snk}, δ={self.rate:g})"


class RoutingProblem:
    """A routing instance: mesh + power model + communications.

    The object is immutable; per-communication :class:`CommDag` geometry is
    built lazily and cached (heuristics call :meth:`dag` heavily).

    Parameters
    ----------
    mesh:
        The CMP platform.
    power:
        The link power model (continuous or discrete frequencies).
    comms:
        The communications to route.  Endpoints are validated against the
        mesh.
    """

    __slots__ = (
        "mesh",
        "power",
        "comms",
        "_dags",
        "_dag_pool",
        "_rates",
        "_kernel",
        "_initial_moves",
    )

    def __init__(
        self, mesh: Mesh, power: PowerModel, comms: Sequence[Communication]
    ):
        if not isinstance(mesh, Mesh):
            raise InvalidParameterError(f"mesh must be a Mesh, got {type(mesh)}")
        if not isinstance(power, PowerModel):
            raise InvalidParameterError(
                f"power must be a PowerModel, got {type(power)}"
            )
        comms = tuple(comms)
        for i, c in enumerate(comms):
            if not isinstance(c, Communication):
                raise InvalidParameterError(
                    f"comms[{i}] must be a Communication, got {type(c)}"
                )
            mesh.check_core(*c.src)
            mesh.check_core(*c.snk)
        self.mesh = mesh
        self.power = power
        self.comms = comms
        self._dags: List[CommDag | None] = [None] * len(comms)
        self._dag_pool: dict = {}
        self._rates = np.asarray([c.rate for c in comms], dtype=np.float64)
        self._rates.setflags(write=False)
        self._kernel = None
        self._initial_moves: dict = {}

    # ------------------------------------------------------------------
    @property
    def num_comms(self) -> int:
        """Number of communications."""
        return len(self.comms)

    @property
    def rates(self) -> np.ndarray:
        """Vector of communication rates (read-only)."""
        return self._rates

    @property
    def total_rate(self) -> float:
        """Aggregate requested bandwidth Σδᵢ."""
        return float(self._rates.sum())

    def dag(self, i: int) -> CommDag:
        """Cached :class:`CommDag` of communication ``i``.

        DAGs are pooled by ``(src, snk)``: communications with equal
        endpoints — necessarily equal displacement ``(Δu, Δv)`` — share one
        :class:`CommDag` object and therefore one set of cached band arrays
        (:meth:`~repro.mesh.paths.CommDag.band_arrays`).  Random workloads
        with many communications on a small mesh duplicate endpoints
        frequently, so the pool keeps the per-instance geometry cost
        sub-linear in the number of communications.
        """
        if not 0 <= i < len(self.comms):
            raise InvalidParameterError(
                f"communication index {i} out of range [0, {len(self.comms)})"
            )
        if self._dags[i] is None:
            c = self.comms[i]
            key = (c.src, c.snk)
            dag = self._dag_pool.get(key)
            if dag is None:
                dag = CommDag(self.mesh, c.src, c.snk)
                self._dag_pool[key] = dag
            self._dags[i] = dag
        return self._dags[i]

    def kernel(self):
        """Cached :class:`~repro.mesh.kernel.FlatRoutingKernel` of this instance.

        Every batched evaluator — the GA's generation grading, the load
        ledgers behind SA/TABU, population property tests — needs the
        same flattened hop metadata; building it once per problem instead
        of once per heuristic removes a per-trial fixed cost from the
        Monte-Carlo engine.
        """
        if self._kernel is None:
            from repro.mesh.kernel import FlatRoutingKernel

            self._kernel = FlatRoutingKernel(
                self.mesh,
                [(c.src, c.snk) for c in self.comms],
                self._rates,
            )
        return self._kernel

    def initial_moves(self, init: str) -> Tuple[str, ...]:
        """Memoised move strings of the named heuristic's routing.

        Registered heuristics are deterministic on a fixed problem (the
        stochastic ones carry fixed default seeds), so the first caller
        pays for the solve and every other improver/metaheuristic seeded
        from the same ``init`` on this instance reuses the result.
        """
        moves = self._initial_moves.get(init)
        if moves is None:
            from repro.heuristics.base import get_heuristic

            result = get_heuristic(init).solve(self)
            routing = result.routing
            if not routing.is_single_path:
                raise InvalidParameterError(
                    f"init heuristic {init!r} produced a split routing"
                )
            moves = tuple(
                routing.paths(i)[0].moves for i in range(self.num_comms)
            )
            self._initial_moves[init] = moves
        return moves

    def diag_span(self, i: int) -> Tuple[int, int]:
        """0-based ``(k_src, k_snk)`` diagonal indices of communication ``i``.

        ``k_snk = k_src + length``: the communication crosses bands
        ``k_src .. k_snk - 1`` of its direction.
        """
        c = self.comms[i]
        d = c.direction
        ks = diag_index(self.mesh, d, *c.src)
        return ks, ks + c.length

    def __iter__(self) -> Iterator[Communication]:
        return iter(self.comms)

    def __len__(self) -> int:
        return len(self.comms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoutingProblem({self.mesh!r}, {self.num_comms} comms, "
            f"total δ={self.total_rate:g})"
        )

    def order_by(self, key: str = "weight") -> List[int]:
        """Communication indices sorted for greedy processing.

        ``'weight'`` (paper default): decreasing rate; ``'length'``:
        decreasing Manhattan distance; ``'density'``: decreasing
        rate/length; ``'input'``: original order.  Ties break by original
        index, so the order is deterministic.
        """
        idx = list(range(self.num_comms))
        if key == "input":
            return idx
        if key == "weight":
            return sorted(idx, key=lambda i: (-self.comms[i].rate, i))
        if key == "length":
            return sorted(idx, key=lambda i: (-self.comms[i].length, i))
        if key == "density":
            return sorted(
                idx, key=lambda i: (-self.comms[i].rate / self.comms[i].length, i)
            )
        raise InvalidParameterError(
            f"unknown ordering {key!r}; expected 'weight', 'length', "
            "'density' or 'input'"
        )
