"""Routing evaluation: validity, power breakdown, load statistics.

:func:`evaluate_routing` condenses a :class:`~repro.core.routing.Routing`
into the :class:`RoutingReport` record the experiment harness aggregates:
validity, total/static/dynamic power, link activity and load extremes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.power import PowerModel
from repro.core.routing import Routing


@dataclass(frozen=True)
class RoutingReport:
    """Summary of one routing attempt.

    ``total_power`` is ``inf`` when the routing is invalid; the power
    breakdown fields are still reported for the capped loads so invalid
    routings remain inspectable.
    """

    valid: bool
    total_power: float
    static_power: float
    dynamic_power: float
    active_links: int
    max_load: float
    mean_active_load: float
    overloaded_links: int

    @property
    def power_inverse(self) -> float:
        """``1 / total_power`` with the paper's convention: 0 on failure."""
        if not self.valid or self.total_power == 0:
            return 0.0
        return 1.0 / self.total_power

    @property
    def static_fraction(self) -> float:
        """Share of the (finite) power that is leakage; 0 when inactive."""
        total = self.static_power + self.dynamic_power
        return self.static_power / total if total > 0 else 0.0


def loads_report(power: PowerModel, loads: np.ndarray) -> RoutingReport:
    """Build a :class:`RoutingReport` straight from a load vector."""
    loads = np.asarray(loads, dtype=np.float64)
    valid = power.is_feasible_load(loads)
    active = loads > 0
    overload = int(np.count_nonzero(loads > power.bandwidth * (1 + 1e-9)))
    capped = np.minimum(loads, power.bandwidth)
    n_active = int(np.count_nonzero(active))
    static = float(n_active * power.p_leak)
    dynamic = power.dynamic_power(capped)
    total = power.total_power(loads) if valid else float("inf")
    return RoutingReport(
        valid=valid,
        total_power=total,
        static_power=static,
        dynamic_power=dynamic,
        active_links=n_active,
        max_load=float(loads.max(initial=0.0)),
        mean_active_load=float(loads[active].mean()) if n_active else 0.0,
        overloaded_links=overload,
    )


def evaluate_routing(routing: Routing) -> RoutingReport:
    """Evaluate a routing under its problem's power model."""
    return loads_report(routing.problem.power, routing.link_loads())
