"""Routing evaluation: validity, power breakdown, load statistics.

:func:`evaluate_routing` condenses a :class:`~repro.core.routing.Routing`
into the :class:`RoutingReport` record the experiment harness aggregates:
validity, total/static/dynamic power, link activity and load extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.power import PowerModel
from repro.core.routing import Routing


@dataclass(frozen=True)
class RoutingReport:
    """Summary of one routing attempt.

    ``total_power`` is ``inf`` when the routing is invalid; the power
    breakdown fields are still reported for the capped loads so invalid
    routings remain inspectable.
    """

    valid: bool
    total_power: float
    static_power: float
    dynamic_power: float
    active_links: int
    max_load: float
    mean_active_load: float
    overloaded_links: int

    @property
    def power_inverse(self) -> float:
        """``1 / total_power`` with the paper's convention: 0 on failure."""
        if not self.valid or self.total_power == 0:
            return 0.0
        return 1.0 / self.total_power

    @property
    def static_fraction(self) -> float:
        """Share of the (finite) power that is leakage; 0 when inactive."""
        total = self.static_power + self.dynamic_power
        return self.static_power / total if total > 0 else 0.0


def loads_report(
    power: PowerModel,
    loads: np.ndarray,
    *,
    scale: Optional[np.ndarray] = None,
    dead: Optional[np.ndarray] = None,
) -> RoutingReport:
    """Build a :class:`RoutingReport` straight from a load vector.

    ``scale`` / ``dead`` are the mesh's per-link power-scale and fault
    vectors (see :mod:`repro.mesh.topology`): a loaded dead link makes the
    routing invalid and counts as overloaded; the power breakdown applies
    the per-link scaling.  Both default to ``None`` (the pristine mesh),
    reproducing the homogeneous report bit for bit.
    """
    loads = np.asarray(loads, dtype=np.float64)
    valid = power.is_feasible_load(loads, dead=dead)
    active = loads > 0
    overload = int(np.count_nonzero(loads > power.bandwidth * (1 + 1e-9)))
    if dead is not None:
        overload += int(np.count_nonzero(dead & active & (loads <= power.bandwidth * (1 + 1e-9))))
    capped = np.minimum(loads, power.bandwidth)
    n_active = int(np.count_nonzero(active))
    if scale is None:
        static = float(n_active * power.p_leak)
    else:
        static = power.static_power(loads, scale=scale)
    dynamic = power.dynamic_power(capped, scale=scale)
    total = (
        power.total_power(loads, scale=scale, dead=dead)
        if valid
        else float("inf")
    )
    return RoutingReport(
        valid=valid,
        total_power=total,
        static_power=static,
        dynamic_power=dynamic,
        active_links=n_active,
        max_load=float(loads.max(initial=0.0)),
        mean_active_load=float(loads[active].mean()) if n_active else 0.0,
        overloaded_links=overload,
    )


def evaluate_routing(routing: Routing) -> RoutingReport:
    """Evaluate a routing under its problem's power model and mesh profile."""
    mesh = routing.problem.mesh
    return loads_report(
        routing.problem.power,
        routing.link_loads(),
        scale=mesh.link_scale,
        dead=mesh.dead_mask,
    )
