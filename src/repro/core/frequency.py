"""Link frequency (DVFS) assignment analysis.

The power model quantises loads to frequencies implicitly; this module
makes the assignment explicit — the artefact a DVFS controller would
program (per-link frequency level, headroom, utilisation at the chosen
level) — and quantifies two classic knobs from the related work the paper
builds on:

* **link shutdown** ([1], [10]): how much leakage the routing's idle links
  avoid compared with an always-on fabric;
* **frequency headroom**: how much of the dynamic power is quantisation
  overhead, i.e. what continuous scaling would save (the paper's [17]
  DVFS-vs-traffic motivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.power import PowerModel
from repro.core.routing import Routing
from repro.utils.validation import InvalidParameterError


@dataclass(frozen=True)
class FrequencyAssignment:
    """The DVFS programming derived from a routing's loads.

    Attributes
    ----------
    frequencies:
        Per-link assigned frequency (0 = link switched off).
    utilization:
        Per-link ``load / frequency`` (0 for idle links): the fraction of
        the enabled bandwidth actually used.
    levels:
        Per-link index into the model's frequency list (−1 = off);
        all −2 for continuous models, where levels are not meaningful.
    """

    power: PowerModel
    loads: np.ndarray
    frequencies: np.ndarray
    utilization: np.ndarray
    levels: np.ndarray

    @property
    def active_links(self) -> int:
        """Number of links left powered on."""
        return int(np.count_nonzero(self.frequencies > 0))

    @property
    def mean_utilization(self) -> float:
        """Mean utilisation over the active links (0 if none)."""
        act = self.frequencies > 0
        return float(self.utilization[act].mean()) if act.any() else 0.0

    def shutdown_savings(self) -> float:
        """Leakage avoided by switching idle links off.

        The baseline is an always-on fabric in which every link pays
        ``p_leak``; the routing's assignment only powers the links it
        uses.
        """
        total_links = self.loads.size
        return (total_links - self.active_links) * self.power.p_leak

    def quantization_overhead(self) -> float:
        """Dynamic power paid for rounding loads up to discrete levels.

        Zero for continuous models; otherwise the difference between the
        dynamic power at the assigned frequencies and at the exact loads.
        """
        discrete_dyn = self.power.dynamic_power(self.loads)
        cont = self.power.with_frequencies(None)
        continuous_dyn = cont.dynamic_power(np.minimum(self.loads, cont.bandwidth))
        return max(0.0, discrete_dyn - continuous_dyn)

    def headroom(self) -> np.ndarray:
        """Per-link spare bandwidth at the assigned frequency."""
        return np.where(
            self.frequencies > 0, self.frequencies - self.loads, 0.0
        )


def assign_frequencies(
    power: PowerModel, loads: np.ndarray
) -> FrequencyAssignment:
    """Derive the DVFS assignment for a feasible load vector.

    Raises
    ------
    InvalidParameterError
        If some load exceeds the bandwidth (no frequency can serve it).
    """
    loads = np.asarray(loads, dtype=np.float64)
    if not power.is_feasible_load(loads):
        raise InvalidParameterError(
            "cannot assign frequencies: some link exceeds the bandwidth"
        )
    freqs = power.quantize(loads)
    util = np.where(freqs > 0, loads / np.maximum(freqs, 1e-300), 0.0)
    if power.is_discrete:
        table = np.asarray(power.frequencies, dtype=np.float64)
        levels = np.searchsorted(table, freqs, side="left")
        levels = np.where(freqs > 0, levels, -1)
    else:
        levels = np.full(loads.shape, -2, dtype=np.int64)
    return FrequencyAssignment(
        power=power,
        loads=loads,
        frequencies=freqs,
        utilization=util,
        levels=levels.astype(np.int64),
    )


def routing_frequency_plan(routing: Routing) -> FrequencyAssignment:
    """Convenience wrapper: the DVFS plan of a (valid) routing."""
    return assign_frequencies(routing.problem.power, routing.link_loads())


# ----------------------------------------------------------------------
# frequency ladders (DVFS granularity ablation)
# ----------------------------------------------------------------------
def uniform_ladder(levels: int, bandwidth: float) -> Tuple[float, ...]:
    """``levels`` evenly spaced frequencies ending at ``bandwidth``.

    ``uniform_ladder(1, bw)`` is the no-DVFS fabric (full speed or off);
    more levels approximate continuous scaling from above.
    """
    if levels < 1:
        raise InvalidParameterError(f"levels must be >= 1, got {levels}")
    if bandwidth <= 0:
        raise InvalidParameterError(f"bandwidth must be > 0, got {bandwidth}")
    return tuple(bandwidth * k / levels for k in range(1, levels + 1))


def geometric_ladder(
    levels: int, bandwidth: float, *, ratio: float = 2.0
) -> Tuple[float, ...]:
    """``levels`` frequencies descending from ``bandwidth`` by ``ratio``.

    Geometric ladders resolve the low-load region much more finely than
    uniform ones at equal level count — the shape real voltage/frequency
    tables lean toward.
    """
    if levels < 1:
        raise InvalidParameterError(f"levels must be >= 1, got {levels}")
    if bandwidth <= 0:
        raise InvalidParameterError(f"bandwidth must be > 0, got {bandwidth}")
    if ratio <= 1.0:
        raise InvalidParameterError(f"ratio must be > 1, got {ratio}")
    return tuple(bandwidth / ratio ** (levels - 1 - k) for k in range(levels))
