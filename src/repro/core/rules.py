"""The routing-rule hierarchy of Section 3.3.

``XY ⊂ 1-MP ⊂ s-MP ⊂ max-MP``: XY fixes the single path; 1-MP allows any
single Manhattan path; s-MP allows splitting a communication over up to
``s`` Manhattan paths; max-MP removes the bound (which Lemma 1 caps at the
number of distinct Manhattan paths anyway).
"""

from __future__ import annotations

import enum

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.mesh.moves import xy_moves
from repro.utils.validation import InvalidParameterError


class RoutingRule(enum.Enum):
    """Which family of routings a solution is allowed to use."""

    XY = "xy"
    SINGLE_PATH = "1-mp"
    S_PATHS = "s-mp"
    MAX_PATHS = "max-mp"


def max_paths_bound(problem: RoutingProblem) -> int:
    """Upper bound on useful splits for any communication of the problem.

    By Lemma 1 a communication with displacement ``(Δu, Δv)`` has
    ``C(Δu+Δv, Δu)`` distinct Manhattan paths, so no max-MP routing ever
    needs more parts than the largest such count.
    """
    if problem.num_comms == 0:
        return 0
    return max(c.path_count() for c in problem.comms)


def complies_with_rule(
    routing: Routing, rule: RoutingRule, *, s: int | None = None
) -> bool:
    """Check a routing against a rule of the hierarchy.

    For ``S_PATHS`` the bound ``s`` must be provided.  Path-shape
    constraints (Manhattan, endpoint-joining) are already enforced by
    :class:`~repro.core.routing.Routing` itself; this predicate checks the
    per-rule extras: the XY shape for ``XY``, split-cardinality bounds for
    the others.
    """
    if rule is RoutingRule.XY:
        for comm, fl in zip(routing.problem.comms, routing.flows):
            if len(fl) != 1 or fl[0].path.moves != xy_moves(comm.src, comm.snk):
                return False
        return True
    if rule is RoutingRule.SINGLE_PATH:
        return routing.is_single_path
    if rule is RoutingRule.S_PATHS:
        if s is None or s < 1:
            raise InvalidParameterError(
                f"rule S_PATHS requires a split bound s >= 1, got {s!r}"
            )
        return routing.max_split <= s
    if rule is RoutingRule.MAX_PATHS:
        return True
    raise InvalidParameterError(f"unknown routing rule {rule!r}")
