"""Link power model (Section 3.1) with continuous or discrete frequencies.

An *active* link (one with non-zero traffic) dissipates

.. math:: P = P_{leak} + P_0 \\cdot (f / f_{unit})^{\\alpha}

where ``f`` is the bandwidth actually enabled on the link.  With continuous
frequency scaling ``f`` equals the traffic on the link; with a discrete
frequency set (the simulation setting of Section 6) ``f`` is the smallest
available frequency at least equal to the traffic.  An inactive link
dissipates nothing.  A link whose traffic exceeds the maximum bandwidth
``BW`` makes the routing *invalid*.

The concrete constants used throughout the paper's Section 6 come from the
Kim–Horowitz adaptive serial-link design: ``P_leak = 16.9 mW``,
``P0 = 5.41``, ``α = 2.95`` and frequencies ``{1, 2.5, 3.5} Gb/s`` (we store
them in Mb/s with ``f_unit = 1000`` so workload rates are plain Mb/s
numbers); see :meth:`PowerModel.kim_horowitz`.

For heuristic-internal comparisons the model also exposes a *graded
overload penalty* (:meth:`PowerModel.link_power_graded`): an overloaded link
costs more than any feasible chip-wide configuration, and costs strictly
more the larger its excess, so greedy descent repairs validity first.

Scenario support — every power function accepts two optional per-link
coefficient arrays (aligned with the trailing axis of ``loads``):

* ``scale`` multiplies the link's power (leakage and dynamic term alike);
  it models heterogeneous / derated fabric regions.  With discrete
  frequencies the cached graded tables are still used — the per-level
  lookup is simply multiplied by the per-link coefficients.
* ``dead`` marks faulty links: any positive load on a dead link makes the
  strict power infinite (the routing is invalid) and draws a graded
  penalty at least as large as a fully overloaded link, decreasing as the
  stray load shrinks — so descent heuristics evacuate dead links first.

Both default to ``None``, in which case the computation is bit-identical
to the homogeneous model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import InvalidParameterError, check_positive

#: sentinel scale factor applied to overloaded links by the graded penalty
OVERLOAD = 1e9

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class PowerModel:
    """Static + dynamic link power with optional discrete frequencies.

    Parameters
    ----------
    p_leak:
        Static (leakage) power of an active link, in the model's power unit
        (mW for the paper constants).
    p0:
        Dynamic power coefficient.
    alpha:
        Dynamic power exponent; the paper requires ``2 < alpha <= 3``.
    bandwidth:
        Maximum link bandwidth ``BW`` (same rate unit as communication
        rates; Mb/s for the paper constants).
    frequencies:
        Sorted tuple of available link bandwidths for discrete frequency
        scaling, or ``None`` for continuous scaling.  When given, the
        largest frequency must equal ``bandwidth``.
    freq_unit:
        Rate value corresponding to ``1.0`` inside the ``(f/unit)^alpha``
        term (1000 turns Mb/s rates into the Gb/s figures the paper's
        constants are calibrated for).
    """

    p_leak: float
    p0: float
    alpha: float
    bandwidth: float
    frequencies: Optional[Tuple[float, ...]] = None
    freq_unit: float = 1.0

    def __post_init__(self) -> None:
        check_positive("p0", self.p0)
        check_positive("bandwidth", self.bandwidth)
        check_positive("freq_unit", self.freq_unit)
        if self.p_leak < 0:
            raise InvalidParameterError(f"p_leak must be >= 0, got {self.p_leak}")
        if not 1.0 < self.alpha <= 3.0:
            # The paper states 2 < alpha <= 3; we accept any strictly convex
            # exponent > 1 (the theory only needs convexity) but reject
            # degenerate linear/concave models.
            raise InvalidParameterError(
                f"alpha must lie in (1, 3] (paper: (2, 3]), got {self.alpha}"
            )
        if self.frequencies is not None:
            freqs = tuple(float(f) for f in self.frequencies)
            if len(freqs) == 0:
                raise InvalidParameterError("frequencies must be non-empty or None")
            if any(f <= 0 for f in freqs):
                raise InvalidParameterError(f"frequencies must be > 0, got {freqs}")
            if list(freqs) != sorted(freqs) or len(set(freqs)) != len(freqs):
                raise InvalidParameterError(
                    f"frequencies must be strictly increasing, got {freqs}"
                )
            if not np.isclose(freqs[-1], self.bandwidth):
                raise InvalidParameterError(
                    f"highest frequency {freqs[-1]} must equal bandwidth "
                    f"{self.bandwidth}"
                )
            object.__setattr__(self, "frequencies", freqs)

    # ------------------------------------------------------------------
    # canonical instantiations
    # ------------------------------------------------------------------
    @classmethod
    def kim_horowitz(cls) -> "PowerModel":
        """The discrete-frequency model of the paper's simulations (§6).

        ``P_leak = 16.9 mW``, ``P0 = 5.41``, ``α = 2.95``, link frequencies
        ``{1000, 2500, 3500} Mb/s``.
        """
        return cls(
            p_leak=16.9,
            p0=5.41,
            alpha=2.95,
            bandwidth=3500.0,
            frequencies=(1000.0, 2500.0, 3500.0),
            freq_unit=1000.0,
        )

    @classmethod
    def continuous_kim_horowitz(cls) -> "PowerModel":
        """Continuous-frequency variant of :meth:`kim_horowitz`."""
        return cls(
            p_leak=16.9, p0=5.41, alpha=2.95, bandwidth=3500.0, freq_unit=1000.0
        )

    @classmethod
    def fig2_example(cls) -> "PowerModel":
        """The toy model of the paper's Figure 2 / Section 3.5.

        ``P_leak = 0``, ``P0 = 1``, ``α = 3``, ``BW = 4``, continuous
        frequencies — yields the worked powers 128 / 56 / 32.
        """
        return cls(p_leak=0.0, p0=1.0, alpha=3.0, bandwidth=4.0)

    @classmethod
    def dynamic_only(cls, alpha: float = 3.0, bandwidth: float = float("inf")) -> "PowerModel":
        """``P_leak = 0, P0 = 1`` — the setting of the Section 4 theory."""
        return cls(p_leak=0.0, p0=1.0, alpha=alpha, bandwidth=bandwidth)

    @property
    def is_discrete(self) -> bool:
        """True when a discrete frequency set is configured."""
        return self.frequencies is not None

    # ------------------------------------------------------------------
    # frequency quantisation and power
    # ------------------------------------------------------------------
    def quantize(self, loads: ArrayLike) -> np.ndarray:
        """Operating frequency for each load.

        Zero load maps to 0 (inactive link); a load above ``bandwidth``
        maps to ``inf`` (no frequency can serve it); otherwise the load
        itself (continuous) or the smallest available frequency at least
        equal to the load (discrete).
        """
        loads = np.asarray(loads, dtype=np.float64)
        if np.any(loads < 0):
            raise InvalidParameterError("link loads must be >= 0")
        if not self.is_discrete:
            out = loads.copy()
        else:
            freqs = np.asarray(self.frequencies, dtype=np.float64)
            idx = np.searchsorted(freqs, loads, side="left")
            padded = np.append(freqs, np.inf)
            out = padded[idx]
            out[loads == 0] = 0.0
        out = np.where(loads > self.bandwidth * (1 + 1e-12), np.inf, out)
        return out

    def link_power(
        self,
        loads: ArrayLike,
        *,
        scale: Optional[np.ndarray] = None,
        dead: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Power of each link given its load (``inf`` when overloaded).

        ``scale`` multiplies each active link's power; any positive load on
        a ``dead`` link yields ``inf`` (the routing is invalid).
        """
        freqs = self.quantize(loads)
        active = freqs > 0
        with np.errstate(over="ignore", invalid="ignore"):
            dyn = self.p0 * np.power(freqs / self.freq_unit, self.alpha)
        out = np.where(active, self.p_leak + dyn, 0.0)
        if scale is not None:
            out = out * scale
        if dead is not None:
            out = np.where(dead & active, np.inf, out)
        return out

    def total_power(
        self,
        loads: ArrayLike,
        *,
        scale: Optional[np.ndarray] = None,
        dead: Optional[np.ndarray] = None,
    ) -> float:
        """Chip-wide power: sum of link powers (``inf`` if any overload)."""
        return float(np.sum(self.link_power(loads, scale=scale, dead=dead)))

    def dynamic_power(
        self, loads: ArrayLike, *, scale: Optional[np.ndarray] = None
    ) -> float:
        """Sum of the dynamic terms only."""
        freqs = self.quantize(loads)
        active = freqs > 0
        with np.errstate(over="ignore", invalid="ignore"):
            dyn = self.p0 * np.power(freqs / self.freq_unit, self.alpha)
        if scale is not None:
            dyn = dyn * scale
        return float(np.sum(np.where(active, dyn, 0.0)))

    def static_power(
        self, loads: ArrayLike, *, scale: Optional[np.ndarray] = None
    ) -> float:
        """Sum of the leakage terms (``p_leak`` per active link)."""
        loads = np.asarray(loads, dtype=np.float64)
        if scale is None:
            return float(np.count_nonzero(loads > 0) * self.p_leak)
        return float(np.sum(np.where(loads > 0, self.p_leak * scale, 0.0)))

    @property
    def max_link_power(self) -> float:
        """Power of a single link running at full bandwidth."""
        return self.p_leak + self.p0 * (self.bandwidth / self.freq_unit) ** self.alpha

    @cached_property
    def _graded_tables(self):
        """Lazily cached per-level power tables for the graded fast path.

        ``functools.cached_property`` stores the result in the instance
        ``__dict__`` directly, which sidesteps the frozen dataclass's
        ``__setattr__`` without the previous ``object.__setattr__`` hack;
        the model stays hashable and picklable.
        """
        if self.is_discrete:
            freqs = np.asarray(self.frequencies, dtype=np.float64)
            level_powers = self.p_leak + self.p0 * (
                freqs / self.freq_unit
            ) ** self.alpha
        else:
            freqs = None
            level_powers = None
        return (freqs, level_powers, self.max_link_power)

    def link_power_graded(
        self,
        loads: ArrayLike,
        *,
        scale: Optional[np.ndarray] = None,
        dead: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Like :meth:`link_power` but with a finite, graded overload cost.

        Overloaded links cost ``max_link_power * OVERLOAD * (1 + excess /
        bandwidth)``: any single overloaded link dominates the power of any
        feasible chip configuration, and reducing the excess always reduces
        the cost — heuristics comparing two invalid alternatives therefore
        prefer the less overloaded one (and any valid alternative over any
        invalid one).

        ``scale`` multiplies the regular (in-bandwidth) link power per
        link; the overload penalty itself is *not* scaled, so validity
        repair compares uniformly across regions.  A loaded ``dead`` link
        draws the penalty of a zero-bandwidth link — at least as costly as
        any overload, still strictly decreasing as the stray load shrinks.

        This is the heuristics' inner-loop primitive, so it is implemented
        directly on cached per-level tables rather than through
        :meth:`quantize`.
        """
        loads = np.asarray(loads, dtype=np.float64)
        if loads.size and loads.min() < 0:
            raise InvalidParameterError("link loads must be >= 0")
        freqs, level_powers, max_power = self._graded_tables
        bw = self.bandwidth
        capped = np.minimum(loads, bw)
        if freqs is not None:
            idx = np.searchsorted(freqs, capped, side="left")
            base = level_powers[idx]
        else:
            base = self.p_leak + self.p0 * (capped / self.freq_unit) ** self.alpha
        if scale is not None:
            base = base * scale
        base = np.where(loads > 0, base, 0.0)
        over = loads > bw * (1 + 1e-12)
        loaded_dead = None
        if dead is not None:
            loaded_dead = dead & (loads > 0)
            if not loaded_dead.any():
                loaded_dead = None
            else:
                over = over | loaded_dead
        if not over.any():
            return base
        if loaded_dead is None:
            penalty = max_power * OVERLOAD * (1.0 + (loads - bw) / bw)
        else:
            # a dead link behaves like bandwidth 0: its whole load is excess
            excess = np.where(loaded_dead, loads, loads - bw)
            penalty = max_power * OVERLOAD * (1.0 + excess / bw)
        return np.where(over, penalty, base)

    def total_power_graded(
        self,
        loads: ArrayLike,
        *,
        scale: Optional[np.ndarray] = None,
        dead: Optional[np.ndarray] = None,
    ) -> float:
        """Sum of :meth:`link_power_graded` over all links."""
        return float(
            np.sum(self.link_power_graded(loads, scale=scale, dead=dead))
        )

    def total_power_graded_many(
        self,
        loads_matrix: ArrayLike,
        *,
        scale: Optional[np.ndarray] = None,
        dead: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row-wise :meth:`total_power_graded` of a batch of load vectors.

        ``loads_matrix`` is ``(B, num_links)`` — one complete chip load
        vector per row (a GA population, a neighbourhood of candidate
        routings, a sweep batch).  All rows are graded in one NumPy pass;
        the result is the length-``B`` vector of graded totals, row ``b``
        equal to ``total_power_graded(loads_matrix[b])``.  Per-link
        ``scale`` / ``dead`` vectors broadcast over the batch axis.
        """
        loads_matrix = np.asarray(loads_matrix, dtype=np.float64)
        if loads_matrix.ndim != 2:
            raise InvalidParameterError(
                f"loads_matrix must be 2-D (batch, links), got shape "
                f"{loads_matrix.shape}"
            )
        return self.link_power_graded(
            loads_matrix, scale=scale, dead=dead
        ).sum(axis=1)

    def is_feasible_load(
        self,
        loads: ArrayLike,
        *,
        rtol: float = 1e-9,
        dead: Optional[np.ndarray] = None,
    ) -> bool:
        """True when no load exceeds the bandwidth (within tolerance).

        With a ``dead`` mask, any positive load on a dead link is also
        infeasible.
        """
        loads = np.asarray(loads, dtype=np.float64)
        if dead is not None and np.any(loads[dead] > 0):
            return False
        return bool(np.all(loads <= self.bandwidth * (1 + rtol)))

    def with_frequencies(
        self, frequencies: Optional[Sequence[float]]
    ) -> "PowerModel":
        """Copy of this model with a different (or no) frequency set."""
        freqs = tuple(frequencies) if frequencies is not None else None
        bw = freqs[-1] if freqs else self.bandwidth
        return PowerModel(
            p_leak=self.p_leak,
            p0=self.p0,
            alpha=self.alpha,
            bandwidth=bw,
            frequencies=freqs,
            freq_unit=self.freq_unit,
        )
