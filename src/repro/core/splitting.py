"""Rate-splitting helpers for s-MP routings (Section 3.3).

An s-MP routing may split a communication ``γᵢ`` into up to ``s`` parts
``γᵢ,₁ … γᵢ,ₛ'`` sharing its endpoints with ``Σ δᵢ,ⱼ = δᵢ``.  These helpers
produce and validate such splits; :class:`~repro.core.routing.Routing`
enforces the sum rule at construction time as well.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.validation import InvalidParameterError, check_positive


def validate_split(rate: float, parts: Sequence[float], *, s: int | None = None) -> None:
    """Check that ``parts`` is a legal splitting of ``rate``.

    Raises
    ------
    InvalidParameterError
        If any part is non-positive, the parts don't sum to ``rate``, or
        (when ``s`` is given) there are more than ``s`` parts.
    """
    check_positive("rate", rate)
    if len(parts) == 0:
        raise InvalidParameterError("a split must have at least one part")
    if s is not None and len(parts) > s:
        raise InvalidParameterError(
            f"split into {len(parts)} parts exceeds the s-MP limit s={s}"
        )
    arr = np.asarray(parts, dtype=np.float64)
    if np.any(arr <= 0):
        raise InvalidParameterError(f"split parts must be > 0, got {list(parts)}")
    if not np.isclose(arr.sum(), rate, rtol=1e-9, atol=0.0):
        raise InvalidParameterError(
            f"split parts sum to {arr.sum()}, expected {rate}"
        )


def even_split(rate: float, k: int) -> List[float]:
    """Split ``rate`` into ``k`` equal parts."""
    check_positive("rate", rate)
    if k < 1:
        raise InvalidParameterError(f"number of parts must be >= 1, got {k}")
    return [rate / k] * k


def proportional_split(rate: float, weights: Sequence[float]) -> List[float]:
    """Split ``rate`` proportionally to positive ``weights``."""
    check_positive("rate", rate)
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0 or np.any(w <= 0):
        raise InvalidParameterError(
            f"weights must be non-empty and > 0, got {list(weights)}"
        )
    parts = rate * w / w.sum()
    return [float(x) for x in parts]
