"""Routing solutions: per-communication path/flow assignments.

A :class:`Routing` maps every communication of a problem to one or more
:class:`RoutedFlow` entries — a Manhattan :class:`~repro.mesh.paths.Path`
plus the fraction of the communication's rate sent along it.  A single-path
(1-MP or XY) routing has exactly one flow of full rate per communication;
an s-MP routing has up to ``s``.

The class enforces the paper's structural rules at construction time: each
flow's path must join the communication's endpoints (hence is automatically
a shortest path), rates must be positive and sum to the communication's
rate.  *Validity* in the paper's sense — no link loaded above ``BW`` — is a
property of the induced loads, checked by :meth:`Routing.is_valid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.problem import RoutingProblem
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError

#: relative tolerance for "flow rates sum to the communication rate"
_RATE_RTOL = 1e-9


@dataclass(frozen=True)
class RoutedFlow:
    """One path of a (possibly split) communication with its rate share."""

    path: Path
    rate: float

    def __post_init__(self) -> None:
        if not self.rate > 0:
            raise InvalidParameterError(
                f"flow rate must be > 0, got {self.rate!r}"
            )


class Routing:
    """A complete routing of all communications of a problem.

    Parameters
    ----------
    problem:
        The instance being routed.
    flows:
        ``flows[i]`` is the list of :class:`RoutedFlow` for communication
        ``i``.  Every path must join ``comms[i].src`` to ``comms[i].snk``
        and the rates must sum to ``comms[i].rate``.
    """

    __slots__ = ("problem", "flows", "_loads")

    def __init__(self, problem: RoutingProblem, flows: Sequence[Sequence[RoutedFlow]]):
        flows = [list(fl) for fl in flows]
        if len(flows) != problem.num_comms:
            raise InvalidParameterError(
                f"got flows for {len(flows)} communications, "
                f"expected {problem.num_comms}"
            )
        for i, (comm, fl) in enumerate(zip(problem.comms, flows)):
            if not fl:
                raise InvalidParameterError(f"communication {i} has no flow")
            total = 0.0
            for f in fl:
                if not isinstance(f, RoutedFlow):
                    raise InvalidParameterError(
                        f"flows[{i}] must contain RoutedFlow, got {type(f)}"
                    )
                if f.path.src != comm.src or f.path.snk != comm.snk:
                    raise InvalidParameterError(
                        f"flow path {f.path!r} does not join the endpoints of "
                        f"communication {i} ({comm.src}->{comm.snk})"
                    )
                if f.path.mesh != problem.mesh:
                    raise InvalidParameterError(
                        f"flow path of communication {i} built on a different mesh"
                    )
                total += f.rate
            # scalar tolerance check (|a-b| <= rtol*|b|, the np.isclose
            # semantics with atol=0) — np.isclose per communication costs
            # more than routing a path
            if not abs(total - comm.rate) <= _RATE_RTOL * abs(comm.rate):
                raise InvalidParameterError(
                    f"flow rates of communication {i} sum to {total}, "
                    f"expected {comm.rate}"
                )
        self.problem = problem
        self.flows = flows
        self._loads: np.ndarray | None = None

    # constructors -------------------------------------------------------
    @classmethod
    def single_path(cls, problem: RoutingProblem, paths: Sequence[Path]) -> "Routing":
        """Build a 1-MP routing: one full-rate path per communication."""
        if len(paths) != problem.num_comms:
            raise InvalidParameterError(
                f"got {len(paths)} paths, expected {problem.num_comms}"
            )
        return cls(
            problem,
            [
                [RoutedFlow(path, comm.rate)]
                for comm, path in zip(problem.comms, paths)
            ],
        )

    @classmethod
    def xy(cls, problem: RoutingProblem) -> "Routing":
        """The XY routing of the whole problem."""
        return cls.single_path(
            problem,
            [Path.xy(problem.mesh, c.src, c.snk) for c in problem.comms],
        )

    @classmethod
    def from_moves(
        cls, problem: RoutingProblem, moves: Sequence[str]
    ) -> "Routing":
        """Build a 1-MP routing from one move string per communication."""
        paths = [
            Path(problem.mesh, c.src, c.snk, m)
            for c, m in zip(problem.comms, moves)
        ]
        return cls.single_path(problem, paths)

    # structure ------------------------------------------------------------
    def num_paths(self, i: int) -> int:
        """Number of paths used by communication ``i``."""
        return len(self.flows[i])

    @property
    def max_split(self) -> int:
        """Largest number of paths used by any communication."""
        return max(len(fl) for fl in self.flows) if self.flows else 0

    @property
    def is_single_path(self) -> bool:
        """True when every communication uses exactly one path (1-MP)."""
        return self.max_split <= 1

    def paths(self, i: int) -> List[Path]:
        """The paths of communication ``i``."""
        return [f.path for f in self.flows[i]]

    # loads & power --------------------------------------------------------
    def link_loads(self) -> np.ndarray:
        """Aggregate traffic per link id (cached; read-only)."""
        if self._loads is None:
            num_links = self.problem.mesh.num_links
            lid_parts: List[np.ndarray] = []
            flow_rates: List[float] = []
            flow_lens: List[int] = []
            for fl in self.flows:
                for f in fl:
                    lid_parts.append(f.path.link_ids)
                    flow_rates.append(f.rate)
                    flow_lens.append(f.path.link_ids.size)
            if lid_parts:
                weights = np.repeat(
                    np.asarray(flow_rates, dtype=np.float64),
                    np.asarray(flow_lens, dtype=np.int64),
                )
                loads = np.bincount(
                    np.concatenate(lid_parts),
                    weights=weights,
                    minlength=num_links,
                ).astype(np.float64)
            else:  # pragma: no cover - problems are never empty
                loads = np.zeros(num_links, dtype=np.float64)
            loads.setflags(write=False)
            self._loads = loads
        return self._loads

    def is_valid(self) -> bool:
        """Paper validity: no link above the model's bandwidth.

        On faulty meshes a routing is additionally invalid when any dead
        link carries traffic.
        """
        return self.problem.power.is_feasible_load(
            self.link_loads(), dead=self.problem.mesh.dead_mask
        )

    def total_power(self) -> float:
        """Objective value; ``inf`` when the routing is invalid."""
        mesh = self.problem.mesh
        return self.problem.power.total_power(
            self.link_loads(), scale=mesh.link_scale, dead=mesh.dead_mask
        )

    def comms_through(self, lid: int) -> List[int]:
        """Indices of communications with at least one flow using ``lid``."""
        out = []
        for i, fl in enumerate(self.flows):
            if any(f.path.uses_link(lid) for f in fl):
                out.append(i)
        return out

    def as_tables(self) -> Dict[int, List]:
        """Deployment view: ``{comm index: [(rate, [core, ...]), ...]}``.

        For every communication, each flow's rate and its ordered core hop
        list.  This is what a table-driven NoC deployment (and our
        flit-level simulator) consumes.
        """
        tables = {}
        for i, fl in enumerate(self.flows):
            tables[i] = [
                (f.rate, [tuple(c) for c in f.path.cores()]) for f in fl
            ]
        return tables

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Routing({self.problem.num_comms} comms, "
            f"max_split={self.max_split})"
        )
