"""Scenario execution on top of the Monte-Carlo sweep engine.

:func:`run_scenario` resolves a scenario (by name or object), materialises
its platform and runs every trial through the same
:func:`repro.experiments.runner.run_point` path the figure sweeps use —
serial by default, chunked across a process pool with ``jobs > 1``, with
bit-identical aggregates either way.

:class:`ScenarioResult` carries the scenario echo plus the per-heuristic
aggregates and knows how to render itself as a text table or as the
deterministic JSON document the golden regression corpus
(``tests/golden/``) stores: every float is serialised with ``float.hex``
so snapshot comparisons are exact, not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.experiments.runner import PointResult, run_point
from repro.scenarios.registry import Scenario, get_scenario
from repro.utils.tables import format_table

#: golden corpus schema version (bump when the snapshot layout changes)
GOLDEN_FORMAT = 1


@dataclass(frozen=True)
class ScenarioResult:
    """A completed scenario run: config echo + per-heuristic aggregates."""

    scenario: Scenario
    jobs: int
    point: PointResult

    @property
    def stats(self) -> Dict[str, object]:
        return self.point.stats

    def to_jsonable(self) -> dict:
        """Deterministic snapshot document (floats as exact hex strings).

        Wall-clock fields (``mean_runtime_s``) are deliberately excluded —
        they can never be reproduced bit for bit.
        """
        stats = {}
        for name in sorted(self.point.stats):
            st = self.point.stats[name]
            stats[name] = {
                "trials": st.trials,
                "successes": st.successes,
                "norm_power_inverse": st.norm_power_inverse.hex(),
                "mean_power_inverse": st.mean_power_inverse.hex(),
                "mean_static_fraction": st.mean_static_fraction.hex(),
            }
        return {
            "format": GOLDEN_FORMAT,
            "scenario": self.scenario.name,
            "trials": self.scenario.trials,
            "seed": self.scenario.seed,
            "heuristics": list(self.scenario.heuristics),
            "power": self.scenario.power,
            "mesh": self.scenario.mesh.describe(),
            "stats": stats,
        }

    def to_text(self) -> str:
        """Human-readable per-heuristic table."""
        rows = []
        for name in list(self.scenario.heuristics) + ["BEST"]:
            st = self.point.stats[name]
            rows.append(
                [
                    name,
                    f"{st.success_ratio:.2f}",
                    f"{st.norm_power_inverse:.4f}",
                    f"{st.mean_power_inverse * 1e3:.4f}",
                    f"{st.mean_static_fraction:.3f}",
                    f"{st.mean_runtime_s * 1e3:.1f}",
                ]
            )
        header = [
            "heuristic",
            "success",
            "norm 1/P",
            "1/P (x1e3)",
            "static frac",
            "ms",
        ]
        sc = self.scenario
        head = (
            f"scenario {sc.name}: {sc.mesh.describe()}, {sc.trials} trials, "
            f"seed {sc.seed}, power {sc.power}\n  {sc.description}\n"
        )
        return head + format_table(header, rows)


def run_scenario(
    scenario: Union[str, Scenario],
    *,
    jobs: int = 1,
    trials: int | None = None,
    seed: int | None = None,
) -> ScenarioResult:
    """Run a scenario (by registry name or definition) and aggregate it.

    ``jobs > 1`` fans trial chunks out to a process pool; per-trial RNG
    streams are pure functions of ``(seed, trial index)``, so serial and
    parallel runs agree on every statistic except wall-clock runtime.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    scenario = scenario.with_overrides(trials=trials, seed=seed)
    point = run_point(
        scenario.build_mesh(),
        scenario.power_model(),
        scenario.workload,
        trials=scenario.trials,
        seed=scenario.seed,
        heuristic_names=scenario.heuristics,
        jobs=jobs,
    )
    return ScenarioResult(scenario=scenario, jobs=jobs, point=point)
