"""Scenario execution on top of the Monte-Carlo sweep engine.

:func:`run_scenario` resolves a scenario (by name or object), materialises
its platform and runs every trial through the same
:func:`repro.experiments.runner.run_point` path the figure sweeps use —
serial by default, chunked across a process pool with ``jobs > 1``, with
bit-identical aggregates either way.

:class:`ScenarioResult` carries the scenario echo plus the per-heuristic
aggregates and knows how to render itself as a text table or as the
deterministic JSON document the golden regression corpus
(``tests/golden/``) stores: every float is serialised with ``float.hex``
so snapshot comparisons are exact, not approximate.

:func:`scenario_latency_curve` closes the deployment loop for any
registered scenario: it routes the scenario's trial-0 instance (the same
``(seed, 0)`` RNG stream the Monte-Carlo runner uses), provisions the
links for the result and records its load–latency curve on the flit
engine — so every platform in the registry (faulty, derated, narrow,
hotspot, …) can be characterised end to end with one call or one
``repro noc sweep --scenario`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Union

from repro.core.problem import RoutingProblem
from repro.experiments.runner import PointResult, run_point
from repro.noc.sweep import (
    LatencyPoint,
    latency_sweep,
    points_table,
    saturation_fraction,
)
from repro.scenarios.registry import Scenario, get_scenario
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_table
from repro.utils.validation import InvalidParameterError

#: golden corpus schema version (bump when the snapshot layout changes)
GOLDEN_FORMAT = 1


@dataclass(frozen=True)
class ScenarioResult:
    """A completed scenario run: config echo + per-heuristic aggregates."""

    scenario: Scenario
    jobs: int
    point: PointResult

    @property
    def stats(self) -> Dict[str, object]:
        return self.point.stats

    def to_jsonable(self) -> dict:
        """Deterministic snapshot document (floats as exact hex strings).

        Wall-clock fields (``mean_runtime_s``) are deliberately excluded —
        they can never be reproduced bit for bit.
        """
        stats = {}
        for name in sorted(self.point.stats):
            st = self.point.stats[name]
            stats[name] = {
                "trials": st.trials,
                "successes": st.successes,
                "norm_power_inverse": st.norm_power_inverse.hex(),
                "mean_power_inverse": st.mean_power_inverse.hex(),
                "mean_static_fraction": st.mean_static_fraction.hex(),
            }
        return {
            "format": GOLDEN_FORMAT,
            "scenario": self.scenario.name,
            "trials": self.scenario.trials,
            "seed": self.scenario.seed,
            "heuristics": list(self.scenario.heuristics),
            "power": self.scenario.power,
            "mesh": self.scenario.mesh.describe(),
            "stats": stats,
        }

    def to_text(self) -> str:
        """Human-readable per-heuristic table."""
        rows = []
        for name in list(self.scenario.heuristics) + ["BEST"]:
            st = self.point.stats[name]
            rows.append(
                [
                    name,
                    f"{st.success_ratio:.2f}",
                    f"{st.norm_power_inverse:.4f}",
                    f"{st.mean_power_inverse * 1e3:.4f}",
                    f"{st.mean_static_fraction:.3f}",
                    f"{st.mean_runtime_s * 1e3:.1f}",
                ]
            )
        header = [
            "heuristic",
            "success",
            "norm 1/P",
            "1/P (x1e3)",
            "static frac",
            "ms",
        ]
        sc = self.scenario
        head = (
            f"scenario {sc.name}: {sc.mesh.describe()}, {sc.trials} trials, "
            f"seed {sc.seed}, power {sc.power}\n  {sc.description}\n"
        )
        return head + format_table(header, rows)


def run_scenario(
    scenario: Union[str, Scenario],
    *,
    jobs: int = 1,
    trials: int | None = None,
    seed: int | None = None,
) -> ScenarioResult:
    """Run a scenario (by registry name or definition) and aggregate it.

    ``jobs > 1`` fans trial chunks out to a process pool; per-trial RNG
    streams are pure functions of ``(seed, trial index)``, so serial and
    parallel runs agree on every statistic except wall-clock runtime.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    scenario = scenario.with_overrides(trials=trials, seed=seed)
    point = run_point(
        scenario.build_mesh(),
        scenario.power_model(),
        scenario.workload,
        trials=scenario.trials,
        seed=scenario.seed,
        heuristic_names=scenario.heuristics,
        jobs=jobs,
    )
    return ScenarioResult(scenario=scenario, jobs=jobs, point=point)


# ----------------------------------------------------------------------
# scenario-integrated load–latency curves
# ----------------------------------------------------------------------

#: default offered-load fractions of a scenario latency curve
LATENCY_FRACTIONS = (0.2, 0.5, 0.8, 1.0, 1.3, 1.8, 2.5)


@dataclass(frozen=True)
class ScenarioLatencyResult:
    """A scenario's load–latency curve: config echo + per-fraction points."""

    scenario: Scenario
    heuristic: str
    engine: str
    jobs: int
    injection: str
    cycles: int
    warmup: int
    routing_power: float  #: graded power of the deployed routing (mW)
    points: Tuple[LatencyPoint, ...]

    @property
    def saturation(self) -> float:
        return saturation_fraction(self.points)

    def to_jsonable(self) -> dict:
        """Deterministic snapshot document (floats as exact hex strings)."""
        return {
            "scenario": self.scenario.name,
            "mesh": self.scenario.mesh.describe(),
            "heuristic": self.heuristic,
            "engine": self.engine,
            "injection": self.injection,
            "cycles": self.cycles,
            "warmup": self.warmup,
            "seed": self.scenario.seed,
            "routing_power_hex": float(self.routing_power).hex(),
            "points": [pt.to_jsonable() for pt in self.points],
        }

    def to_text(self) -> str:
        """Human-readable latency-curve table."""
        sc = self.scenario
        sat = self.saturation
        head = (
            f"scenario {sc.name}: {sc.mesh.describe()}, {self.heuristic} "
            f"routing ({self.routing_power:.1f} mW), {self.injection} "
            f"arrivals, seed {sc.seed}, {self.engine} engine\n"
        )
        tail = (
            f"\nsaturation fraction: {sat:.2f}"
            if sat != float("inf")
            else "\nno saturation inside the sweep"
        )
        return head + points_table(self.points) + tail


def scenario_latency_curve(
    scenario: Union[str, Scenario],
    *,
    heuristic: str = "BEST",
    fractions: Sequence[float] = LATENCY_FRACTIONS,
    cycles: int = 4000,
    warmup: int = 800,
    injection: str = "bernoulli",
    seed: int | None = None,
    jobs: int = 1,
    engine: str = "array",
) -> ScenarioLatencyResult:
    """Deploy a scenario's trial-0 instance and record its latency curve.

    The instance is drawn from the same per-trial RNG stream the
    Monte-Carlo runner uses (``spawn_rngs(seed, 1)[0]``), routed with
    ``heuristic`` (``"BEST"`` runs the whole roster and deploys the
    winner), provisioned, and swept over ``fractions`` with the scenario
    seed feeding the injection processes.  ``jobs``/``engine`` are passed
    through to :func:`repro.noc.sweep.latency_sweep`, so serial and
    parallel curves are bit-identical.
    """
    from repro.heuristics import BestOf, get_heuristic

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    scenario = scenario.with_overrides(seed=seed)
    mesh = scenario.build_mesh()
    power = scenario.power_model()
    rng = spawn_rngs(scenario.seed, 1)[0]
    comms = scenario.workload(mesh, rng)
    problem = RoutingProblem(mesh, power, comms)
    if heuristic == "BEST":
        result = BestOf(names=scenario.heuristics).solve(problem)
    else:
        result = get_heuristic(heuristic).solve(problem)
    if not result.valid:
        raise InvalidParameterError(
            f"scenario {scenario.name!r}: {heuristic} found no valid routing "
            "for the trial-0 instance, nothing to deploy"
        )
    points = latency_sweep(
        result.routing,
        list(fractions),
        cycles=cycles,
        warmup=warmup,
        injection=injection,
        seed=scenario.seed,
        jobs=jobs,
        engine=engine,
    )
    return ScenarioLatencyResult(
        scenario=scenario,
        heuristic=heuristic,
        engine=engine,
        jobs=jobs,
        injection=injection,
        cycles=cycles,
        warmup=warmup,
        routing_power=float(result.power),
        points=tuple(points),
    )
