"""Churn traces: request sequences for the routing service.

A churn trace models one client of the routing service re-submitting a
*perturbed* workload over and over — the regime warm-start re-routing is
built for.  Starting from a registered scenario's trial-0 instance, each
step applies a random mix of the perturbations the warm-start repair
pipeline handles:

* **rate drift** — a few communications' rates jittered by up to
  ``rate_jitter`` (relative),
* **arrivals / departures** — a communication added with ``add_prob``,
  removed with ``remove_prob`` (never below ``min_comms``),
* **link failures** — with ``fault_prob`` one more adjacency dies (up to
  ``max_faults``, cumulative: hardware does not heal).  Candidate
  adjacencies that would leave any current communication without a live
  Manhattan path are rejected, so the trace stays solvable.

Traces are deterministic given the spec (``numpy`` Generator seeded with
``spec.seed``): the E-CHURN bench and the service tests replay identical
request sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.problem import Communication, RoutingProblem
from repro.mesh.paths import CommDag
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import DeadLink, MeshSpec, duplex
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

#: rate range of communications *added* mid-trace (Mb/s)
_ADD_RATE_RANGE = (100.0, 1500.0)

#: draws attempted per fault event before giving up on a viable adjacency
_FAULT_ATTEMPTS = 20


@dataclass(frozen=True)
class ChurnSpec:
    """A reproducible churn trace recipe.

    Parameters
    ----------
    scenario:
        Registered scenario providing the platform and the base workload.
    requests:
        Trace length, including the unperturbed base request at index 0.
    seed:
        Trace RNG seed.
    rate_events:
        Communications whose rate drifts per step (0 disables drift).
    rate_jitter:
        Maximum relative rate change per drift event, in ``[0, 1)``.
    add_prob / remove_prob:
        Per-step probability of one arrival / one departure.
    fault_prob:
        Per-step probability that one more adjacency fails.
    max_faults:
        Ceiling on cumulative failed adjacencies.
    min_comms:
        Departures never shrink the workload below this.
    rate_scale:
        Every rate — the base workload's and the arrivals' — is scaled
        by this factor.  The registered workloads run the paper's
        at-capacity regime; a scale below one models the moderate
        utilisation a long-lived routing service is provisioned for.
    """

    scenario: str = "paper-baseline"
    requests: int = 32
    seed: int = 0
    rate_events: int = 3
    rate_jitter: float = 0.35
    add_prob: float = 0.25
    remove_prob: float = 0.25
    fault_prob: float = 0.1
    max_faults: int = 2
    min_comms: int = 8
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise InvalidParameterError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.seed < 0:
            raise InvalidParameterError(f"seed must be >= 0, got {self.seed}")
        if self.rate_events < 0:
            raise InvalidParameterError(
                f"rate_events must be >= 0, got {self.rate_events}"
            )
        if not 0.0 <= self.rate_jitter < 1.0:
            raise InvalidParameterError(
                f"rate_jitter must lie in [0, 1), got {self.rate_jitter}"
            )
        for name in ("add_prob", "remove_prob", "fault_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise InvalidParameterError(
                    f"{name} must lie in [0, 1], got {v}"
                )
        if self.max_faults < 0:
            raise InvalidParameterError(
                f"max_faults must be >= 0, got {self.max_faults}"
            )
        if self.min_comms < 1:
            raise InvalidParameterError(
                f"min_comms must be >= 1, got {self.min_comms}"
            )
        if not (np.isfinite(self.rate_scale) and self.rate_scale > 0.0):
            raise InvalidParameterError(
                f"rate_scale must be finite and > 0, got {self.rate_scale}"
            )


@dataclass(frozen=True)
class ChurnStep:
    """One request of a churn trace."""

    index: int
    events: Tuple[str, ...]  # human-readable perturbations of this step
    problem: RoutingProblem


def _viable_fault(
    base: MeshSpec,
    dead: Tuple[DeadLink, ...],
    adjacency: Tuple[Coord, Coord],
    comms: List[Communication],
) -> bool:
    """Would killing ``adjacency`` leave every communication routable?"""
    trial = MeshSpec(
        base.p,
        base.q,
        dead_links=dead + duplex(adjacency),
        scale_rects=base.scale_rects,
    ).build()
    return all(
        CommDag(trial, c.src, c.snk).has_live_path() for c in comms
    )


def churn_trace(spec: ChurnSpec) -> List[ChurnStep]:
    """Materialise the request sequence of ``spec``.

    Step 0 is the scenario's unperturbed trial-0 instance; each later
    step perturbs its predecessor.  Faults accumulate across the trace.
    """
    scenario = get_scenario(spec.scenario)
    base = scenario.mesh
    power = scenario.power_model()
    rng = np.random.default_rng(spec.seed)
    mesh = base.build()
    comms = [
        Communication(c.src, c.snk, c.rate * spec.rate_scale)
        for c in scenario.workload(mesh, rng)
    ]
    dead: Tuple[DeadLink, ...] = base.dead_links
    faults = 0
    steps = [ChurnStep(0, ("base",), RoutingProblem(mesh, power, comms))]
    p, q = base.p, base.q
    for t in range(1, spec.requests):
        events: List[str] = []
        comms = list(comms)
        if spec.rate_events and comms:
            k = min(spec.rate_events, len(comms))
            drifted = rng.choice(len(comms), size=k, replace=False)
            for i in sorted(int(j) for j in drifted):
                c = comms[i]
                factor = 1.0 + spec.rate_jitter * (2.0 * rng.random() - 1.0)
                comms[i] = Communication(
                    c.src, c.snk, max(c.rate * factor, 1.0)
                )
            events.append(f"rate x{k}")
        if len(comms) > spec.min_comms and rng.random() < spec.remove_prob:
            gone = int(rng.integers(len(comms)))
            del comms[gone]
            events.append("remove")
        if rng.random() < spec.add_prob:
            while True:
                src = (int(rng.integers(p)), int(rng.integers(q)))
                snk = (int(rng.integers(p)), int(rng.integers(q)))
                if src != snk:
                    break
            lo, hi = _ADD_RATE_RANGE
            comms.append(
                Communication(
                    src, snk, float(rng.uniform(lo, hi)) * spec.rate_scale
                )
            )
            events.append("add")
        if faults < spec.max_faults and rng.random() < spec.fault_prob:
            for _ in range(_FAULT_ATTEMPTS):
                u = int(rng.integers(p))
                v = int(rng.integers(q))
                if rng.random() < 0.5 and u + 1 < p:
                    adjacency = ((u, v), (u + 1, v))
                elif v + 1 < q:
                    adjacency = ((u, v), (u, v + 1))
                else:
                    continue
                if any(
                    set(adjacency) == {a, b} for a, b in dead
                ):
                    continue  # already dead
                if _viable_fault(base, dead, adjacency, comms):
                    dead = dead + duplex(adjacency)
                    faults += 1
                    events.append(f"fault {adjacency}")
                    break
        mesh = MeshSpec(
            p, q, dead_links=dead, scale_rects=base.scale_rects
        ).build()
        steps.append(
            ChurnStep(
                t,
                tuple(events) if events else ("unchanged",),
                RoutingProblem(mesh, power, comms),
            )
        )
    return steps
