"""Named, reproducible experiment scenarios and their string-keyed registry.

A :class:`Scenario` composes a platform recipe (:class:`~repro.scenarios.
spec.MeshSpec`), a picklable workload factory, a power regime and a
heuristic roster into one frozen, picklable record.  Scenarios generalise
the paper's pristine-mesh sweeps (Section 6) to the degraded and
heterogeneous fabrics the NoC design-space-exploration literature studies:
faulty links, derated hotspot regions, rectangular meshes and congested
hotspot traffic.

The registry maps scenario names to definitions; ``repro scenarios
list|run`` and the golden regression corpus (``tests/golden/``) both
consume it.  Register additional scenarios with :func:`register_scenario`
(see ``docs/scenarios.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

from repro.core.power import PowerModel
from repro.experiments.config import (
    HotspotFactory,
    UniformRandomFactory,
    WorkloadFactory,
)
from repro.heuristics.best import PAPER_HEURISTICS
from repro.mesh.topology import Mesh
from repro.scenarios.spec import MeshSpec, duplex
from repro.utils.validation import InvalidParameterError

#: power regimes a scenario may name (picklable by key, not by closure)
POWER_REGIMES: Dict[str, Callable[[], PowerModel]] = {
    "kim-horowitz": PowerModel.kim_horowitz,
    "continuous": PowerModel.continuous_kim_horowitz,
    "fig2": PowerModel.fig2_example,
}


@dataclass(frozen=True)
class Scenario:
    """One named, fully reproducible experiment configuration.

    ``trials`` / ``seed`` are the scenario's *defaults* — the runner and
    CLI can override them — and are deliberately tiny so the golden
    regression corpus stays cheap; scale ``trials`` up for real studies.
    """

    name: str
    description: str
    mesh: MeshSpec
    workload: WorkloadFactory
    trials: int
    seed: int
    heuristics: Tuple[str, ...] = PAPER_HEURISTICS
    power: str = "kim-horowitz"

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise InvalidParameterError(
                f"scenario {self.name!r} needs trials >= 1, got {self.trials}"
            )
        if self.power not in POWER_REGIMES:
            raise InvalidParameterError(
                f"scenario {self.name!r} names unknown power regime "
                f"{self.power!r}; choose from {sorted(POWER_REGIMES)}"
            )
        if not self.heuristics:
            raise InvalidParameterError(
                f"scenario {self.name!r} needs at least one heuristic"
            )

    def build_mesh(self) -> Mesh:
        return self.mesh.build()

    def power_model(self) -> PowerModel:
        return POWER_REGIMES[self.power]()

    def with_overrides(
        self, *, trials: int | None = None, seed: int | None = None
    ) -> "Scenario":
        """Copy with the runner's trial/seed overrides applied."""
        out = self
        if trials is not None:
            out = replace(out, trials=trials)
        if seed is not None:
            out = replace(out, seed=seed)
        return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (names are unique)."""
    if scenario.name in _REGISTRY:
        raise InvalidParameterError(
            f"scenario {scenario.name!r} already registered"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# built-in scenarios
# ----------------------------------------------------------------------
#: the mixed uniform workload of the Figure 7(b) regime, at 30 comms
_MIXED_30 = UniformRandomFactory(30, 100.0, 2500.0)

#: three scattered broken adjacencies (six directed dead links).  Straight
#: (0-bend) communications crossing a broken adjacency have no surviving
#: Manhattan path at all, so a scattered near-border pattern — rather than
#: a contiguous centre patch — keeps most instances solvable while still
#: forcing every heuristic to detour; the residual failures exercise the
#: explicit-infeasibility path.
_SCATTERED_FAULTS = duplex(
    ((0, 1), (0, 2)),
    ((7, 5), (7, 6)),
    ((2, 0), (3, 0)),
)

register_scenario(
    Scenario(
        name="paper-baseline",
        description="Pristine 8x8 mesh, mixed U(100,2500) workload — the "
        "paper's Section 6 setting (pre-scenario behaviour, bit-for-bit)",
        mesh=MeshSpec.pristine(8, 8),
        workload=_MIXED_30,
        trials=6,
        seed=2012,
    )
)

register_scenario(
    Scenario(
        name="faulty-links",
        description="8x8 mesh with three broken adjacencies (6 directed "
        "dead links); heuristics must route around them or fail explicitly",
        mesh=MeshSpec(8, 8, dead_links=_SCATTERED_FAULTS),
        workload=UniformRandomFactory(16, 100.0, 2500.0),
        trials=6,
        seed=2012,
    )
)

register_scenario(
    Scenario(
        name="hotspot-derate",
        description="8x8 mesh whose central 3x3 region dissipates 1.6x "
        "power per link (thermal derating); cool routes are cheaper",
        mesh=MeshSpec.center_derated(8, 8, factor=1.6, radius=1),
        workload=_MIXED_30,
        trials=6,
        seed=2012,
    )
)

register_scenario(
    Scenario(
        name="narrow-mesh",
        description="Rectangular 4x16 mesh — long thin fabrics stress the "
        "row direction and shrink the Manhattan path space",
        mesh=MeshSpec.pristine(4, 16),
        workload=UniformRandomFactory(20, 100.0, 1500.0),
        trials=6,
        seed=7,
    )
)

register_scenario(
    Scenario(
        name="hotspot-traffic",
        description="Pristine 8x8 mesh under congested hotspot traffic: "
        "half the cores send 300 Mb/s to the centre core",
        mesh=MeshSpec.pristine(8, 8),
        workload=HotspotFactory(rate=300.0, fraction=0.5),
        trials=6,
        seed=99,
    )
)

register_scenario(
    Scenario(
        name="faulty-derated",
        description="Worst of both: the scattered faults of faulty-links "
        "plus a 1.5x derated border strip on the east edge",
        mesh=MeshSpec(
            8,
            8,
            dead_links=_SCATTERED_FAULTS,
            scale_rects=((0, 6, 7, 7, 1.5),),
        ),
        workload=UniformRandomFactory(16, 100.0, 2000.0),
        trials=6,
        seed=4242,
    )
)
