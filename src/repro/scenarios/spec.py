"""Declarative, picklable platform specifications for the scenario engine.

A :class:`MeshSpec` names a mesh *by construction recipe* — dimensions plus
an optional fault list and power-scale regions — instead of by a live
:class:`~repro.mesh.topology.Mesh` object.  Specs are frozen dataclasses of
plain tuples, so they hash, compare, pickle and serialise trivially; the
heavyweight mesh (with its link arrays and profile vectors) is built on
demand with :meth:`MeshSpec.build`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]
#: one directed dead link: ((tail_u, tail_v), (head_u, head_v))
DeadLink = Tuple[Coord, Coord]
#: one derated region: (u0, v0, u1, v1, factor) — links with both endpoints
#: inside the inclusive rectangle get their power scaled by ``factor``
ScaleRect = Tuple[int, int, int, int, float]


def duplex(*adjacencies: Tuple[Coord, Coord]) -> Tuple[DeadLink, ...]:
    """Expand undirected adjacencies into both directed dead links.

    ``duplex(((2, 2), (2, 3)))`` kills the east *and* west link of the
    adjacency — the common physical-fault model (a broken wire takes out
    both directions).
    """
    out = []
    for a, b in adjacencies:
        out.append((tuple(a), tuple(b)))
        out.append((tuple(b), tuple(a)))
    return tuple(out)


@dataclass(frozen=True)
class MeshSpec:
    """A mesh construction recipe: dimensions + faults + derated regions.

    Parameters
    ----------
    p, q:
        Mesh dimensions.
    dead_links:
        Directed ``(tail, head)`` coordinate pairs to disable (see
        :func:`duplex` for killing whole adjacencies).
    scale_rects:
        ``(u0, v0, u1, v1, factor)`` entries; every link whose *both*
        endpoints lie inside the inclusive core rectangle has its power
        multiplied by ``factor``.  Overlapping rectangles compose
        multiplicatively.
    """

    p: int
    q: int
    dead_links: Tuple[DeadLink, ...] = ()
    scale_rects: Tuple[ScaleRect, ...] = ()

    def __post_init__(self) -> None:
        # normalise to nested plain tuples so equality/hash/pickle are
        # structural no matter how the spec was written down
        object.__setattr__(
            self,
            "dead_links",
            tuple(
                (tuple(int(c) for c in a), tuple(int(c) for c in b))
                for a, b in self.dead_links
            ),
        )
        object.__setattr__(
            self,
            "scale_rects",
            tuple(
                (int(u0), int(v0), int(u1), int(v1), float(f))
                for (u0, v0, u1, v1, f) in self.scale_rects
            ),
        )
        for (u0, v0, u1, v1, f) in self.scale_rects:
            if not (u0 <= u1 and v0 <= v1):
                raise InvalidParameterError(
                    f"scale rectangle ({u0},{v0})..({u1},{v1}) is empty"
                )
            if not f > 0:
                raise InvalidParameterError(
                    f"scale factor must be > 0, got {f}"
                )

    @property
    def is_pristine(self) -> bool:
        return not self.dead_links and not self.scale_rects

    def build(self) -> Mesh:
        """Materialise the spec as an immutable :class:`Mesh`."""
        mesh = Mesh(self.p, self.q)
        if self.dead_links:
            mesh = mesh.with_faults(list(self.dead_links))
        if self.scale_rects:
            scale = np.ones(mesh.num_links, dtype=np.float64)
            for (u0, v0, u1, v1, factor) in self.scale_rects:
                inside = (
                    (mesh.tail_u >= u0)
                    & (mesh.tail_u <= u1)
                    & (mesh.tail_v >= v0)
                    & (mesh.tail_v <= v1)
                    & (mesh.head_u >= u0)
                    & (mesh.head_u <= u1)
                    & (mesh.head_v >= v0)
                    & (mesh.head_v <= v1)
                )
                scale[inside] *= factor
            mesh = mesh.with_link_scale(scale)
        return mesh

    # convenience constructors -----------------------------------------
    @classmethod
    def pristine(cls, p: int, q: int) -> "MeshSpec":
        """The paper's homogeneous ``p × q`` platform."""
        return cls(p, q)

    @classmethod
    def center_derated(
        cls, p: int, q: int, factor: float, radius: int = 1
    ) -> "MeshSpec":
        """A hotspot stripe: the central ``(2r+1)²`` region runs derated."""
        cu, cv = p // 2, q // 2
        rect = (
            max(0, cu - radius),
            max(0, cv - radius),
            min(p - 1, cu + radius),
            min(q - 1, cv + radius),
            float(factor),
        )
        return cls(p, q, scale_rects=(rect,))

    @classmethod
    def with_duplex_faults(
        cls, p: int, q: int, adjacencies: Iterable[Tuple[Coord, Coord]]
    ) -> "MeshSpec":
        """Kill both directions of each listed adjacency."""
        return cls(p, q, dead_links=duplex(*adjacencies))

    def describe(self) -> str:
        """One-line human summary (used by ``repro scenarios list``)."""
        bits = [f"{self.p}x{self.q}"]
        if self.dead_links:
            bits.append(f"{len(self.dead_links)} dead links")
        if self.scale_rects:
            bits.append(f"{len(self.scale_rects)} derated regions")
        return ", ".join(bits)
