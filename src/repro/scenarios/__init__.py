"""Scenario engine: declarative fault/heterogeneity-aware experiments.

Public surface:

* :class:`~repro.scenarios.spec.MeshSpec` / :func:`~repro.scenarios.spec.duplex`
  — picklable platform recipes (faults, derated regions);
* :class:`~repro.scenarios.registry.Scenario` plus the string-keyed
  registry (:func:`register_scenario`, :func:`get_scenario`,
  :func:`available_scenarios`) with the built-in paper-baseline / faulty /
  derated / narrow-mesh / hotspot scenarios;
* :func:`~repro.scenarios.runner.run_scenario` and
  :class:`~repro.scenarios.runner.ScenarioResult` — execution on the
  Monte-Carlo sweep engine (serial or multi-process, bit-identical);
* :func:`~repro.scenarios.runner.scenario_latency_curve` and
  :class:`~repro.scenarios.runner.ScenarioLatencyResult` — the
  deployment-side load–latency curve of a scenario's trial-0 instance on
  the flit engine (``repro noc sweep --scenario``).

See ``docs/scenarios.md`` for the workflow, including the golden
regression corpus under ``tests/golden/``.
"""

from repro.scenarios.churn import ChurnSpec, ChurnStep, churn_trace
from repro.scenarios.registry import (
    POWER_REGIMES,
    Scenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.scenarios.runner import (
    GOLDEN_FORMAT,
    LATENCY_FRACTIONS,
    ScenarioLatencyResult,
    ScenarioResult,
    run_scenario,
    scenario_latency_curve,
)
from repro.scenarios.spec import MeshSpec, duplex

__all__ = [
    "ChurnSpec",
    "ChurnStep",
    "churn_trace",
    "GOLDEN_FORMAT",
    "LATENCY_FRACTIONS",
    "MeshSpec",
    "POWER_REGIMES",
    "Scenario",
    "ScenarioLatencyResult",
    "ScenarioResult",
    "available_scenarios",
    "duplex",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_latency_curve",
]
