"""SA — simulated annealing over the single-path Manhattan routing space.

An extension beyond the paper's five heuristics (Section 5): the paper's
local-descent improver (XYI) stops at the first local optimum of its
corner-relocation neighbourhood; annealing explores the same kind of
neighbourhood — corner flips plus occasional whole-path resamples — but
accepts uphill moves with the Metropolis rule, escaping the local optima
where XYI stalls on constrained instances.

Cost function: the *graded* total power
(:meth:`repro.core.power.PowerModel.total_power_graded`), so the chain
first repairs bandwidth violations (any overloaded link dominates every
feasible configuration and the penalty grows with the excess) and then
minimises true power.

The initial temperature is self-calibrated: a sample of random moves from
the initial state sets ``T0`` to the median uphill cost change divided by
``ln(1/accept0)``, so roughly ``accept0`` of median uphill moves are
accepted at the start; temperature then decays geometrically to
``T0 * t_end_frac``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.local_moves import RoutingState, initial_moves
from repro.mesh.paths import Path
from repro.utils.rng import RngLike, StreamReplica, ensure_rng
from repro.utils.validation import InvalidParameterError


@register_heuristic("SA")
class SimulatedAnnealing(Heuristic):
    """Metropolis annealing on corner flips and path resamples.

    Parameters
    ----------
    iterations:
        Proposals per chain.
    restarts:
        Independent chains (different RNG substreams); best result wins.
    init:
        Registered heuristic providing the starting routing ("SG" default:
        cheap and already load-aware).
    resample_prob:
        Probability that a proposal resamples a whole path instead of
        flipping one corner.
    accept0:
        Target initial acceptance ratio of the median uphill move (drives
        the ``T0`` self-calibration).
    t_end_frac:
        Final temperature as a fraction of ``T0``.
    seed:
        RNG seed (or a Generator); runs are deterministic given the seed.
    """

    def __init__(
        self,
        *,
        iterations: int = 6000,
        restarts: int = 1,
        init: str = "SG",
        resample_prob: float = 0.15,
        accept0: float = 0.5,
        t_end_frac: float = 1e-4,
        seed: RngLike = 0,
    ):
        if iterations < 1:
            raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
        if restarts < 1:
            raise InvalidParameterError(f"restarts must be >= 1, got {restarts}")
        if not 0.0 <= resample_prob <= 1.0:
            raise InvalidParameterError(
                f"resample_prob must lie in [0, 1], got {resample_prob}"
            )
        if not 0.0 < accept0 < 1.0:
            raise InvalidParameterError(f"accept0 must lie in (0, 1), got {accept0}")
        if not 0.0 < t_end_frac < 1.0:
            raise InvalidParameterError(
                f"t_end_frac must lie in (0, 1), got {t_end_frac}"
            )
        self.iterations = iterations
        self.restarts = restarts
        self.init = init
        self.resample_prob = resample_prob
        self.accept0 = accept0
        self.t_end_frac = t_end_frac
        self._rng = ensure_rng(seed)

    def reseed(self, rng: RngLike) -> None:
        """Rebind the annealer's randomness (see :meth:`Heuristic.reseed`)."""
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _route(self, problem: RoutingProblem) -> List[Path]:
        return self._solve(problem, initial_moves(problem, self.init))

    def _route_from(
        self, problem: RoutingProblem, moves: List[str]
    ) -> List[Path]:
        # warm start: the chains anneal from the supplied routing instead
        # of the init heuristic's
        return self._solve(problem, list(moves))

    def _solve(self, problem: RoutingProblem, start: List[str]) -> List[Path]:
        state = RoutingState(problem, start)
        movable = state.mutable_comms()
        if not movable:
            return state.paths()

        best_moves = state.snapshot()
        best_cost = state.cost
        native = state.tier == "native"
        for _ in range(self.restarts):
            if native:
                # native tier: same chain, C inner loop, draws through the
                # C stream (bit-identical word consumption, words still
                # drawn in Python — see repro.native)
                from repro.native.stream import NativeStream

                rng = NativeStream(
                    np.random.default_rng(self._rng.integers(2**63))
                )
                state.restore(start)
                moves, cost = self._anneal_native(state, movable, rng)
            else:
                # the chain's draws run through the bit-exact stream
                # replica: identical draw sequence, a fraction of the
                # per-draw dispatch
                rng = StreamReplica(
                    np.random.default_rng(self._rng.integers(2**63))
                )
                state.restore(start)
                moves, cost = self._anneal(state, movable, rng)
            if cost < best_cost:
                best_cost, best_moves = cost, moves
        return RoutingState(problem, best_moves).paths()

    # ------------------------------------------------------------------
    def _anneal(
        self,
        state: RoutingState,
        movable: List[int],
        rng: StreamReplica,
    ) -> tuple[List[str], float]:
        """One chain; returns the best-seen snapshot and its cost.

        The walk runs on the ledger's fast paths — O(1) flip geometry,
        scalar graded deltas, trusted resample conversion — with the RNG
        draw order and acceptance float math of the scalar reference
        implementation preserved exactly (``tests/test_meta_probes.py``).
        """
        t0 = self._calibrate_t0(state, movable, rng)
        cooling = self.t_end_frac ** (1.0 / max(1, self.iterations - 1))
        temp = t0
        best_moves = state.snapshot()
        best_cost = state.cost
        n_mov = len(movable)
        integers = rng.integers
        random = rng.random
        exp = math.exp
        resample_prob = self.resample_prob
        problem = state.problem
        # hot-loop bindings: the chain makes thousands of proposals whose
        # per-step work is a handful of scalar operations each
        dags = [problem.dag(i) for i in range(problem.num_comms)]
        pos_lists = state._pos
        move_strs = state._mstr
        flip_dcost = state.flip_dcost
        commit_flip = state.commit_flip
        resample_eval = state.resample_eval
        commit_resample = state.commit_resample
        snapshot = state.snapshot
        for _ in range(self.iterations):
            ci = movable[integers(n_mov)]
            if random() < resample_prob:
                # on faulty meshes propose live paths only (no-op — and the
                # identical RNG draw — on pristine meshes)
                new_mv = dags[ci].random_moves(rng, alive_only=True)
                if new_mv == move_strs[ci]:
                    temp *= cooling
                    continue
                new_links, deltas, dcost = resample_eval(ci, new_mv)
                if dcost <= 0 or random() < exp(
                    -min(dcost / max(temp, 1e-300), 700.0)
                ):
                    commit_resample(ci, new_mv, new_links, deltas, dcost)
            else:
                pos = pos_lists[ci]
                if not pos:  # straight-line path of a flippable comm
                    temp *= cooling
                    continue
                j = pos[integers(len(pos))]
                dcost = flip_dcost(ci, j)
                if dcost <= 0 or random() < exp(
                    -min(dcost / max(temp, 1e-300), 700.0)
                ):
                    commit_flip(ci, j, dcost)
            if state.cost < best_cost:
                best_cost = state.cost
                best_moves = snapshot()
            temp *= cooling
        return best_moves, best_cost

    # ------------------------------------------------------------------
    def _anneal_native(
        self,
        state: RoutingState,
        movable: List[int],
        rng,
    ) -> tuple[List[str], float]:
        """One chain on the native tier — :meth:`_anneal` bit for bit.

        The C driver owns the proposal loop, flip grading, Metropolis
        acceptance and cooling on a :class:`~repro.native.ledger.
        NativeLedger` mirror; whole-path resample proposals are still
        drawn in Python (``CommDag.random_moves`` over the shared C
        stream), so the driver suspends with a NEED_PROPOSAL return and
        is re-entered with the proposal bytes (``plen == -1`` encodes "a
        proposal equal to the current path": cooling only).
        """
        from repro.native import native_module
        from repro.native.ledger import NativeLedger

        module = native_module()
        ffi, lib = module.ffi, module.lib
        # T0 calibration runs on the Python ledger (it mutates nothing)
        # with the same draw sequence the Python tier would consume
        t0 = self._calibrate_t0(state, movable, rng)
        cooling = self.t_end_frac ** (1.0 / max(1, self.iterations - 1))
        nat = NativeLedger(state)
        movable_arr = np.asarray(movable, dtype=np.int64)
        best = nat.moves_copy()
        sa = ffi.new("rsa *")
        sa.L = nat._c
        sa.st = rng._c
        sa.movable = ffi.cast("const int64_t *", movable_arr.ctypes.data)
        sa.n_mov = len(movable)
        sa.iterations = self.iterations
        sa.it = 0
        sa.temp = t0
        sa.cooling = cooling
        sa.resample_prob = self.resample_prob
        sa.best_cost = nat.cost
        sa.best_moves = ffi.cast("uint8_t *", best.ctypes.data)
        sa.pending_ci = 0
        sa.awaiting = 0
        problem = state.problem
        dags = [problem.dag(i) for i in range(problem.num_comms)]
        rc = lib.repro_sa_run(sa, ffi.NULL, 0)
        while rc == 1:
            ci = sa.pending_ci
            new_mv = dags[ci].random_moves(rng, alive_only=True)
            if new_mv == nat.move_str(ci):
                rc = lib.repro_sa_run(sa, ffi.NULL, -1)
            else:
                b = new_mv.encode("ascii")
                rc = lib.repro_sa_run(sa, b, len(b))
        if rc != 0:
            rng.check_err()  # a failed refill is the usual culprit
            nat.raise_err()
        return nat.decode_moves(best), float(sa.best_cost)

    # ------------------------------------------------------------------
    def _calibrate_t0(
        self,
        state: RoutingState,
        movable: List[int],
        rng: StreamReplica,
        samples: int = 48,
    ) -> float:
        """Median uphill |Δcost| of random corner flips → starting temperature."""
        ups: List[float] = []
        n_mov = len(movable)
        for _ in range(samples):
            ci = movable[int(rng.integers(n_mov))]
            pos = state.flip_pos(ci)
            if not pos:
                continue
            j = pos[int(rng.integers(len(pos)))]
            dcost = state.flip_dcost(ci, j)
            if dcost > 0:
                ups.append(dcost)
        if not ups:
            # the initial state is a strict local minimum of the sampled
            # neighbourhood; a tiny temperature keeps the chain near it
            return max(abs(state.cost), 1.0) * 1e-9
        med = float(np.median(ups))
        return med / math.log(1.0 / self.accept0)
