"""XYI — the XY-improver heuristic (Section 5.4).

Start from the XY routing and iteratively relieve the most loaded links.
Links are kept in a worklist sorted by decreasing load.  For the link at
the head of the list, every communication routed through it is offered its
*corner-relocation* move (see :mod:`repro.mesh.moves`):

* a **vertical** target link is avoided by shifting the enclosing vertical
  run one column toward the source (relocating the nearest preceding
  horizontal hop to just after it);
* a **horizontal** target link is avoided by shifting it one row toward the
  sink (relocating the nearest following vertical hop to just before it).

If no candidate modification lowers the total (graded) power the link is
dropped from the worklist; otherwise the best modification is applied, the
worklist is rebuilt from the new loads, and the descent continues.  Total
graded power strictly decreases at every applied move, so the procedure
terminates; a generous safety cap guards the theoretical worst case.

Implementation notes — the descent runs on the flat-array kernel:

* candidate paths come from :func:`repro.mesh.kernel.links_from_vmask`
  (no per-hop Python);
* a relocation changes only the contiguous window of hops between the two
  relocated moves, and the old/new links inside the window are disjoint
  (they sit in different rows/columns), so the graded-power deltas of all
  candidates of the current link are evaluated with **one** batched
  :meth:`~repro.core.power.PowerModel.link_power_graded` call — while the
  per-candidate value layout and block sums replicate
  :func:`repro.heuristics.base.graded_power_delta` bit for bit, keeping
  the descent trajectory identical to the scalar reference;
* the current graded total (the accept threshold's scale) is recomputed
  only on applied moves — loads are unchanged on rejected iterations, so
  the value stays exact without the reference's per-iteration recompute.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.mesh.diagonals import direction_steps
from repro.mesh.kernel import links_from_vmask, moves_to_vmask
from repro.mesh.moves import relocate_h_after, relocate_v_before, xy_moves
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError

#: improvements smaller than this (relative to current power) are noise
_REL_EPS = 1e-12


@register_heuristic("XYI")
class XYImprover(Heuristic):
    """Local corner-relocation descent from the XY routing.

    Parameters
    ----------
    max_steps:
        Safety cap on applied modifications.  The paper bounds the work at
        ``p*q`` modifications per communication; the default cap is an
        order of magnitude above that and is never reached in practice.
    start:
        Registry name of the heuristic providing the starting routing
        (default ``"XY"``, the paper's choice).  Any registered
        single-path heuristic works — the descent itself is agnostic to
        where it starts, which the improver-start ablation exploits.
    """

    batch_eval = True

    def __init__(self, max_steps: Optional[int] = None, start: str = "XY"):
        if max_steps is not None and max_steps < 1:
            raise InvalidParameterError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self.start = start

    def _starting_moves(self, problem: RoutingProblem) -> List[str]:
        if self.start == "XY":
            return [xy_moves(c.src, c.snk) for c in problem.comms]
        from repro.heuristics.base import get_heuristic

        if self.start == self.name:
            raise InvalidParameterError(
                f"improver cannot start from itself ({self.start!r})"
            )
        paths = get_heuristic(self.start)._route(problem)
        return [p.moves for p in paths]

    def _route(self, problem: RoutingProblem) -> List[Path]:
        return self._descend_paths(problem, self._starting_moves(problem))

    def _route_from(self, problem: RoutingProblem, moves: List[str]) -> List[Path]:
        # warm entry (Heuristic.solve_from): the descent is start-agnostic,
        # so it serves as a relocation *polish* of any single-path routing —
        # the service's warm-start repair seeds it with the repaired
        # previous routing, where it converges in a handful of moves
        return self._descend_paths(problem, list(moves))

    def _descend_paths(self, problem: RoutingProblem, moves: List[str]) -> List[Path]:
        mesh = problem.mesh
        power = problem.power
        scale = mesh.link_scale  # None on homogeneous meshes
        dead = mesh.dead_mask  # None on fault-free meshes
        n = problem.num_comms
        steps_uv = [direction_steps(c.direction) for c in problem.comms]
        links: List[np.ndarray] = [
            links_from_vmask(mesh, c.src, su, sv, moves_to_vmask(m))
            for c, (su, sv), m in zip(problem.comms, steps_uv, moves)
        ]
        loads = np.zeros(mesh.num_links, dtype=np.float64)
        on_link: List[Set[int]] = [set() for _ in range(mesh.num_links)]
        for i, c in enumerate(problem.comms):
            loads[links[i]] += c.rate
            for lid in links[i]:
                on_link[int(lid)].add(i)

        cap = self.max_steps
        if cap is None:
            cap = 10 * mesh.p * mesh.q * max(n, 1)

        current = power.total_power_graded(loads, scale=scale, dead=dead)
        worklist = self._sorted_links(loads, dead)
        # per-communication memo of relocations: lid -> (new_m, new_l,
        # old_ch, new_ch) or None when infeasible.  Loads-independent, so an
        # entry stays valid until the communication's own path changes.
        cand_cache: List[dict] = [{} for _ in range(n)]
        steps = 0
        while worklist and steps < cap:
            lid = worklist[0]
            horizontal = mesh.is_horizontal(lid)
            # gather every feasible relocation of the communications on lid
            cand: List[Tuple[int, str, np.ndarray, np.ndarray, np.ndarray]] = []
            seg_sizes: List[int] = []
            after_parts: List[np.ndarray] = []
            before_parts: List[np.ndarray] = []
            for i in sorted(on_link[lid]):
                cache = cand_cache[i]
                if lid in cache:
                    entry = cache[lid]
                    if entry is None:
                        continue
                    new_m, new_l, old_ch, new_ch = entry
                else:
                    old_l = links[i]
                    pos = int(np.nonzero(old_l == lid)[0][0])
                    if horizontal:
                        new_m = relocate_v_before(moves[i], pos)
                    else:
                        new_m = relocate_h_after(moves[i], pos)
                    if new_m is None:
                        # cannot move without breaking the Manhattan rule
                        cache[lid] = None
                        continue
                    su, sv = steps_uv[i]
                    new_l = links_from_vmask(
                        mesh, problem.comms[i].src, su, sv, moves_to_vmask(new_m)
                    )
                    changed = old_l != new_l
                    old_ch = old_l[changed]
                    new_ch = new_l[changed]
                    cache[lid] = (new_m, new_l, old_ch, new_ch)
                rate = problem.comms[i].rate
                # replicate graded_power_delta's float math exactly: per
                # candidate, the affected links in [old window | new window]
                # order, graded before and after the ∓rate swap (the two
                # windows are disjoint, so no netting is needed).  Keeping
                # the same value layout and per-block summation as the
                # reference keeps every tie-break — and therefore the whole
                # descent trajectory — identical to the scalar path.
                vals = np.concatenate((loads[old_ch], loads[new_ch]))
                swapped = vals.copy()
                swapped[: old_ch.size] -= rate
                swapped[old_ch.size:] += rate
                if swapped.min() < -1e-9:
                    # same invariant graded_power_delta enforced: beyond
                    # numerical dust, a negative load means the bookkeeping
                    # (links/on_link/cand_cache) went inconsistent
                    raise InvalidParameterError(
                        "load delta would drive a link negative"
                    )
                # clamp the numerical dust a removal can leave behind
                before_parts.append(vals)
                after_parts.append(np.maximum(swapped, 0.0))
                seg_sizes.append(vals.size)
                cand.append((i, new_m, new_l, old_ch, new_ch))
            best_idx = -1
            best_dp = np.inf
            if cand:
                before = np.concatenate(before_parts)
                after = np.concatenate(after_parts)
                sc = dd = None
                if scale is not None or dead is not None:
                    # per-value link ids in [old | new] window order, per
                    # candidate — gather the profile coefficients alongside
                    lid_vec = np.concatenate(
                        [np.concatenate((o, nw)) for _, _, _, o, nw in cand]
                    )
                    if scale is not None:
                        sc = np.tile(scale[lid_vec], 2)
                    if dead is not None:
                        dd = np.tile(dead[lid_vec], 2)
                # one batched grading for every candidate of this link …
                graded = power.link_power_graded(
                    np.concatenate((before, after)), scale=sc, dead=dd
                )
                m = before.size
                g_before = graded[:m]
                g_after = graded[m:]
                # … but per-candidate block sums, matching np.sum over the
                # reference's per-candidate arrays bit for bit
                lo_off = 0
                for k, size in enumerate(seg_sizes):
                    hi_off = lo_off + size
                    dp = float(
                        g_after[lo_off:hi_off].sum()
                        - g_before[lo_off:hi_off].sum()
                    )
                    if dp < best_dp:
                        best_dp = dp
                        best_idx = k
                    lo_off = hi_off
            threshold = -_REL_EPS * max(current, 1.0)
            if best_idx >= 0 and best_dp < threshold:
                i, new_m, new_l, old_ch, new_ch = cand[best_idx]
                rate = problem.comms[i].rate
                removed = loads[old_ch] - rate
                if removed.min() < -1e-6:
                    # apply_deltas' guard: only clamp numerical dust
                    raise InvalidParameterError(
                        f"applying XYI move drove a link to {removed.min()}"
                    )
                loads[old_ch] = np.maximum(removed, 0.0)
                loads[new_ch] += rate
                for old_lid in old_ch:
                    on_link[int(old_lid)].discard(i)
                for new_lid in new_ch:
                    on_link[int(new_lid)].add(i)
                moves[i] = new_m
                links[i] = new_l
                cand_cache[i] = {}
                # loads only change on applied steps, so recomputing here
                # keeps `current` exact at every iteration (the reference
                # recomputed it every iteration, applied or not)
                current = power.total_power_graded(loads, scale=scale, dead=dead)
                worklist = self._sorted_links(loads, dead)
                steps += 1
            else:
                worklist.pop(0)

        return [
            Path.from_validated(mesh, c.src, c.snk, m, lids)
            for c, m, lids in zip(problem.comms, moves, links)
        ]

    @staticmethod
    def _sorted_links(
        loads: np.ndarray, dead: Optional[np.ndarray] = None
    ) -> List[int]:
        """Loaded link ids by decreasing load (stable under equal loads).

        On faulty meshes, loaded *dead* links jump to the head of the
        worklist regardless of their load — evacuating them dominates any
        load-balancing move.
        """
        if dead is None:
            order = np.argsort(-loads, kind="stable")
        else:
            hot = np.where(dead & (loads > 0), np.inf, 0.0)
            order = np.argsort(-(loads + hot), kind="stable")
        return [int(l) for l in order if loads[l] > 0]
