"""XYI — the XY-improver heuristic (Section 5.4).

Start from the XY routing and iteratively relieve the most loaded links.
Links are kept in a worklist sorted by decreasing load.  For the link at
the head of the list, every communication routed through it is offered its
*corner-relocation* move (see :mod:`repro.mesh.moves`):

* a **vertical** target link is avoided by shifting the enclosing vertical
  run one column toward the source (relocating the nearest preceding
  horizontal hop to just after it);
* a **horizontal** target link is avoided by shifting it one row toward the
  sink (relocating the nearest following vertical hop to just before it).

If no candidate modification lowers the total (graded) power the link is
dropped from the worklist; otherwise the best modification is applied, the
worklist is rebuilt from the new loads, and the descent continues.  Total
graded power strictly decreases at every applied move, so the procedure
terminates; a generous safety cap guards the theoretical worst case.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import (
    Heuristic,
    apply_deltas,
    graded_power_delta,
    path_swap_deltas,
    register_heuristic,
)
from repro.mesh.moves import (
    moves_to_links,
    relocate_h_after,
    relocate_v_before,
    xy_moves,
)
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError

#: improvements smaller than this (relative to current power) are noise
_REL_EPS = 1e-12


@register_heuristic("XYI")
class XYImprover(Heuristic):
    """Local corner-relocation descent from the XY routing.

    Parameters
    ----------
    max_steps:
        Safety cap on applied modifications.  The paper bounds the work at
        ``p*q`` modifications per communication; the default cap is an
        order of magnitude above that and is never reached in practice.
    start:
        Registry name of the heuristic providing the starting routing
        (default ``"XY"``, the paper's choice).  Any registered
        single-path heuristic works — the descent itself is agnostic to
        where it starts, which the improver-start ablation exploits.
    """

    def __init__(self, max_steps: Optional[int] = None, start: str = "XY"):
        if max_steps is not None and max_steps < 1:
            raise InvalidParameterError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self.start = start

    def _starting_moves(self, problem: RoutingProblem) -> List[str]:
        if self.start == "XY":
            return [xy_moves(c.src, c.snk) for c in problem.comms]
        from repro.heuristics.base import get_heuristic

        if self.start == self.name:
            raise InvalidParameterError(
                f"improver cannot start from itself ({self.start!r})"
            )
        paths = get_heuristic(self.start)._route(problem)
        return [p.moves for p in paths]

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        power = problem.power
        n = problem.num_comms
        moves: List[str] = self._starting_moves(problem)
        links: List[np.ndarray] = [
            np.asarray(moves_to_links(mesh, c.src, c.snk, m), dtype=np.int64)
            for c, m in zip(problem.comms, moves)
        ]
        loads = np.zeros(mesh.num_links, dtype=np.float64)
        on_link: List[Set[int]] = [set() for _ in range(mesh.num_links)]
        for i, c in enumerate(problem.comms):
            loads[links[i]] += c.rate
            for lid in links[i]:
                on_link[int(lid)].add(i)

        cap = self.max_steps
        if cap is None:
            cap = 10 * mesh.p * mesh.q * max(n, 1)

        worklist = self._sorted_links(loads)
        steps = 0
        while worklist and steps < cap:
            lid = worklist[0]
            best: Optional[Tuple[float, int, str, np.ndarray]] = None
            horizontal = mesh.is_horizontal(lid)
            for i in sorted(on_link[lid]):
                pos_arr = np.nonzero(links[i] == lid)[0]
                pos = int(pos_arr[0])
                comm = problem.comms[i]
                if horizontal:
                    new_m = relocate_v_before(moves[i], pos)
                else:
                    new_m = relocate_h_after(moves[i], pos)
                if new_m is None:
                    continue  # cannot move without breaking the Manhattan rule
                new_l = np.asarray(
                    moves_to_links(mesh, comm.src, comm.snk, new_m), dtype=np.int64
                )
                deltas = path_swap_deltas(links[i].tolist(), new_l.tolist(), comm.rate)
                dp = graded_power_delta(power, loads, deltas)
                if best is None or dp < best[0]:
                    best = (dp, i, new_m, new_l)
            threshold = -_REL_EPS * max(power.total_power_graded(loads), 1.0)
            if best is not None and best[0] < threshold:
                dp, i, new_m, new_l = best
                deltas = path_swap_deltas(
                    links[i].tolist(), new_l.tolist(), problem.comms[i].rate
                )
                apply_deltas(loads, deltas)
                for old_lid in links[i]:
                    on_link[int(old_lid)].discard(i)
                for new_lid in new_l:
                    on_link[int(new_lid)].add(i)
                moves[i] = new_m
                links[i] = new_l
                worklist = self._sorted_links(loads)
                steps += 1
            else:
                worklist.pop(0)

        return [
            Path(mesh, c.src, c.snk, m) for c, m in zip(problem.comms, moves)
        ]

    @staticmethod
    def _sorted_links(loads: np.ndarray) -> List[int]:
        """Loaded link ids by decreasing load (stable under equal loads)."""
        order = np.argsort(-loads, kind="stable")
        return [int(l) for l in order if loads[l] > 0]
