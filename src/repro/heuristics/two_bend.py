"""TB — the two-bend heuristic (Section 5.3).

Communications are processed by decreasing weight.  For each one, every
routing with at most two bends is tried — the H–V–H and V–H–V staircases,
at most ``Δu + Δv`` distinct candidates — and the one adding the least
(graded) power to the current loads is kept.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.ordering import DEFAULT_ORDERING
from repro.mesh.moves import moves_to_links, two_bend_moves
from repro.mesh.paths import Path


@register_heuristic("TB")
class TwoBend(Heuristic):
    """Exhaustive search over ≤2-bend paths, greedily per communication."""

    def __init__(self, ordering: str = DEFAULT_ORDERING):
        self.ordering = ordering

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        power = problem.power
        loads = np.zeros(mesh.num_links, dtype=np.float64)
        paths: List[Path | None] = [None] * problem.num_comms
        for i in problem.order_by(self.ordering):
            comm = problem.comms[i]
            best_moves = None
            best_delta = np.inf
            for moves in two_bend_moves(comm.src, comm.snk):
                lids = np.asarray(
                    moves_to_links(mesh, comm.src, comm.snk, moves), dtype=np.int64
                )
                before = loads[lids]
                delta = float(
                    np.sum(power.link_power_graded(before + comm.rate))
                    - np.sum(power.link_power_graded(before))
                )
                if delta < best_delta:
                    best_delta = delta
                    best_moves = (moves, lids)
            assert best_moves is not None  # two_bend_moves is never empty
            moves, lids = best_moves
            loads[lids] += comm.rate
            paths[i] = Path(mesh, comm.src, comm.snk, moves)
        return paths  # type: ignore[return-value]
