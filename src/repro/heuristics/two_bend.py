"""TB — the two-bend heuristic (Section 5.3).

Communications are processed by decreasing weight.  For each one, every
routing with at most two bends is tried — the H–V–H and V–H–V staircases,
at most ``Δu + Δv`` distinct candidates — and the one adding the least
(graded) power to the current loads is kept.

The candidate set depends only on the displacement ``(Δu, Δv)``, so the
move strings and their boolean move arrays are cached displacement-keyed
and shared across communications and instances; per communication the
whole candidate set is scored with one batched
:meth:`~repro.core.power.PowerModel.link_power_graded` evaluation over the
``candidates × hops`` link matrix produced by the vectorised kernel.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.ordering import DEFAULT_ORDERING
from repro.mesh.diagonals import direction_steps
from repro.mesh.kernel import links_from_vmask, stack_vmasks
from repro.mesh.moves import two_bend_moves
from repro.mesh.paths import Path


@lru_cache(maxsize=None)
def _two_bend_candidates(du: int, dv: int) -> Tuple[Tuple[str, ...], np.ndarray]:
    """Two-bend move strings and their vmask matrix for one displacement.

    Move strings are direction-agnostic, so the cache key is just
    ``(Δu, Δv)`` — every communication with that displacement shares the
    same candidate set regardless of where it sits on the mesh.
    """
    cands = tuple(two_bend_moves((0, 0), (du, dv)))
    vmasks = stack_vmasks(cands)
    vmasks.setflags(write=False)
    return cands, vmasks


@register_heuristic("TB")
class TwoBend(Heuristic):
    """Exhaustive search over ≤2-bend paths, greedily per communication."""

    batch_eval = True

    def __init__(self, ordering: str = DEFAULT_ORDERING):
        self.ordering = ordering

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        power = problem.power
        scale = mesh.link_scale
        dead = mesh.dead_mask
        loads = np.zeros(mesh.num_links, dtype=np.float64)
        paths: List[Path | None] = [None] * problem.num_comms
        for i in problem.order_by(self.ordering):
            comm = problem.comms[i]
            rate = comm.rate
            cands, vmasks = _two_bend_candidates(comm.delta_u, comm.delta_v)
            su, sv = direction_steps(comm.direction)
            lid_matrix = links_from_vmask(mesh, comm.src, su, sv, vmasks)
            before = loads[lid_matrix]
            if scale is None and dead is None:
                graded = power.link_power_graded(
                    np.stack((before + rate, before))
                )
            else:
                # gather the candidates' per-link coefficients; a candidate
                # crossing a dead link draws the zero-bandwidth penalty, so
                # argmin avoids dead links whenever any ≤2-bend path does
                sc = None if scale is None else np.stack((s := scale[lid_matrix], s))
                dd = None if dead is None else np.stack((d := dead[lid_matrix], d))
                graded = power.link_power_graded(
                    np.stack((before + rate, before)), scale=sc, dead=dd
                )
            delta = graded[0].sum(axis=1) - graded[1].sum(axis=1)
            best = int(np.argmin(delta))
            lids = lid_matrix[best]
            loads[lids] += rate
            paths[i] = Path.from_validated(
                mesh, comm.src, comm.snk, cands[best], lids
            )
        return paths  # type: ignore[return-value]