"""Heuristic interface, result record, registry and shared load helpers.

Every heuristic consumes a :class:`~repro.core.problem.RoutingProblem` and
produces a :class:`HeuristicResult`: the constructed
:class:`~repro.core.routing.Routing` together with its evaluation and wall
time.  Heuristics never raise on infeasible instances — they return their
best attempt and the report flags it invalid, matching the paper's
"failure" bookkeeping.

Heuristic-internal comparisons use the power model's *graded* link power
(:meth:`repro.core.power.PowerModel.link_power_graded`) so that overloaded
links are repaired with priority; final reported power always uses the
strict model.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.core.evaluate import RoutingReport, evaluate_routing
from repro.core.power import PowerModel
from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of one heuristic run on one instance."""

    name: str
    routing: Routing
    report: RoutingReport
    runtime_s: float

    @property
    def valid(self) -> bool:
        """Paper validity: no link loaded above bandwidth."""
        return self.report.valid

    @property
    def power(self) -> float:
        """Total power (``inf`` when invalid)."""
        return self.report.total_power

    @property
    def power_inverse(self) -> float:
        """``1/power`` with the paper's 0-on-failure convention."""
        return self.report.power_inverse


class Heuristic(abc.ABC):
    """Base class: implement :meth:`_route`, inherit timing/evaluation."""

    #: short display name ("XY", "SG", ...); subclasses must override
    name: str = "?"

    #: True when the heuristic's final evaluation may be deferred into a
    #: stacked :class:`~repro.mesh.kernel.MultiProblemKernel` pass: the
    #: routing construction consumes no shared randomness after
    #: :meth:`reseed` and does not read its own final report, so grading
    #: many instances' results together is observably identical to
    #: :meth:`solve` (the timed region covers ``_route`` only in both
    #: cases).  Stochastic searchers keep this False so their trial RNG
    #: draw order is documented per instance.
    batch_eval: bool = False

    def route_timed(self, problem: RoutingProblem):
        """Route ``problem``; return ``(routing, elapsed_s)`` unevaluated.

        The timed region is exactly :meth:`solve`'s — ``_route`` only —
        so deferring the evaluation (see :mod:`repro.heuristics.
        batch_eval`) changes neither the measured runtime nor any RNG
        stream.
        """
        if problem.num_comms == 0:
            raise InvalidParameterError(
                f"{self.name}: cannot route an empty communication set"
            )
        t0 = time.perf_counter()
        paths = self._route(problem)
        elapsed = time.perf_counter() - t0
        return Routing.single_path(problem, paths), elapsed

    def solve(self, problem: RoutingProblem) -> HeuristicResult:
        """Route ``problem`` and return the evaluated result."""
        routing, elapsed = self.route_timed(problem)
        return HeuristicResult(
            name=self.name,
            routing=routing,
            report=evaluate_routing(routing),
            runtime_s=elapsed,
        )

    def solve_from(
        self, problem: RoutingProblem, moves: Sequence[str]
    ) -> HeuristicResult:
        """Route ``problem`` warm-started from an existing 1-MP routing.

        ``moves`` is one move string per communication, in problem order —
        typically a previous solution of a perturbed variant of
        ``problem``, re-matched by the service layer.  Heuristics that can
        exploit a warm seed override :meth:`_route_from` (SA and TABU run
        their search from the given state instead of their ``init``
        heuristic's routing); the default ignores the seed and solves
        cold, so ``solve_from`` is always safe to call.
        """
        if problem.num_comms == 0:
            raise InvalidParameterError(
                f"{self.name}: cannot route an empty communication set"
            )
        if len(moves) != problem.num_comms:
            raise InvalidParameterError(
                f"{self.name}: warm start needs {problem.num_comms} move "
                f"strings, got {len(moves)}"
            )
        t0 = time.perf_counter()
        paths = self._route_from(problem, [str(m) for m in moves])
        elapsed = time.perf_counter() - t0
        routing = Routing.single_path(problem, paths)
        return HeuristicResult(
            name=self.name,
            routing=routing,
            report=evaluate_routing(routing),
            runtime_s=elapsed,
        )

    @abc.abstractmethod
    def _route(self, problem: RoutingProblem) -> List[Path]:
        """Produce one Manhattan path per communication, in problem order."""

    def _route_from(
        self, problem: RoutingProblem, moves: List[str]
    ) -> List[Path]:
        """Warm-start hook; the default ignores ``moves`` and solves cold."""
        return self._route(problem)

    def reseed(self, rng) -> None:
        """Rebind this heuristic's randomness to ``rng`` (no-op by default).

        Deterministic heuristics ignore this.  Stochastic ones (GA, SA,
        TABU) override it so a Monte-Carlo trial can hand every competitor
        an independent, reproducible stream — without it, freshly
        constructed instances would replay their default seed on every
        trial and silently correlate the sweep.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], Heuristic]] = {}


def register_heuristic(name: str) -> Callable:
    """Class decorator registering a zero-argument heuristic factory."""

    def deco(cls):
        if name in _REGISTRY:
            raise InvalidParameterError(f"heuristic {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def get_heuristic(name: str) -> Heuristic:
    """Instantiate a registered heuristic by name (case-sensitive)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown heuristic {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_heuristics() -> List[str]:
    """Names of all registered heuristics."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# shared load-vector helpers
# ----------------------------------------------------------------------
def graded_power_delta(
    power: PowerModel,
    loads: np.ndarray,
    deltas: Mapping[int, float],
    *,
    scale: np.ndarray | None = None,
    dead: np.ndarray | None = None,
) -> float:
    """Graded-power change if each link ``lid`` gained ``deltas[lid]`` load.

    Only the affected links are evaluated, so this is O(|deltas|) — the
    delta-evaluation primitive of TB and XYI.  ``scale`` / ``dead`` are the
    mesh's full-length per-link profile vectors (see
    :mod:`repro.mesh.topology`); the affected links' coefficients are
    gathered here, so callers pass the vectors straight through.
    """
    if not deltas:
        return 0.0
    lids = np.fromiter(deltas.keys(), dtype=np.int64, count=len(deltas))
    dl = np.fromiter(deltas.values(), dtype=np.float64, count=len(deltas))
    old = loads[lids]
    new = old + dl
    if new.min() < -1e-9:
        raise InvalidParameterError("load delta would drive a link negative")
    new = np.maximum(new, 0.0)
    sc = None if scale is None else np.tile(scale[lids], 2)
    dd = None if dead is None else np.tile(dead[lids], 2)
    # one fused evaluation over [old | new] halves the numpy call overhead
    both = power.link_power_graded(
        np.concatenate([old, new]), scale=sc, dead=dd
    )
    k = old.size
    return float(both[k:].sum() - both[:k].sum())


def path_swap_deltas(
    old_links: Sequence[int], new_links: Sequence[int], rate: float
) -> Dict[int, float]:
    """Net per-link load change when a flow moves from one path to another."""
    deltas: Dict[int, float] = {}
    for lid in old_links:
        deltas[lid] = deltas.get(lid, 0.0) - rate
    for lid in new_links:
        d = deltas.get(lid, 0.0) + rate
        if d == 0.0 and lid in deltas:
            del deltas[lid]
        else:
            deltas[lid] = d
    return {lid: d for lid, d in deltas.items() if d != 0.0}


def apply_deltas(loads: np.ndarray, deltas: Mapping[int, float]) -> None:
    """In-place application of a per-link load-change mapping."""
    for lid, d in deltas.items():
        loads[lid] += d
        if loads[lid] < 0:
            # numerical dust from float accumulation; clamp to zero
            if loads[lid] < -1e-6:
                raise InvalidParameterError(
                    f"link {lid} driven to negative load {loads[lid]}"
                )
            loads[lid] = 0.0
