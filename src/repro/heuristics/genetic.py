"""GA — genetic search over single-path Manhattan routings.

The paper's related work (Shin [18], CODES+ISSS'04) applies genetic
algorithms to the sibling problem of assigning link speeds for a mapped
task graph; this module brings the same machinery to the routing problem
itself, as a reference stochastic-search baseline next to the paper's
constructive heuristics.

Representation: one individual = one move string per communication (the
complete 1-MP routing).  Fitness = graded total power (lower is better),
evaluated from scratch per individual with a single ``np.add.at`` load
accumulation.  Variation: uniform per-communication crossover plus
per-communication mutation (corner flip or uniform path resample).
Selection: size-``k`` tournaments with elitism.

The initial population is seeded with the routings of cheap registered
heuristics (XY, YX, SG by default) so the GA starts no worse than its
seeds and the comparison against the paper's heuristics is conservative.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.local_moves import flip_positions, initial_moves
from repro.mesh.kernel import FlatRoutingKernel
from repro.mesh.paths import Path
from repro.utils.rng import RngLike, StreamReplica, ensure_rng
from repro.utils.validation import InvalidParameterError

Genome = Tuple[str, ...]


@register_heuristic("GA")
class GeneticRouting(Heuristic):
    """Tournament-selection GA with heuristic-seeded initial population.

    Parameters
    ----------
    population:
        Individuals per generation (>= 4).
    generations:
        Evolution steps after initialisation.
    tournament:
        Tournament size for parent selection.
    crossover_prob:
        Probability that a child mixes two parents (else clone of one).
    mutation_prob:
        Per-communication mutation probability in each child.
    elite:
        Individuals copied unchanged into the next generation.
    seeds:
        Registered heuristic names whose routings seed the population.
    seed:
        RNG seed (or Generator); deterministic given the seed.
    """

    def __init__(
        self,
        *,
        population: int = 32,
        generations: int = 60,
        tournament: int = 3,
        crossover_prob: float = 0.9,
        mutation_prob: float = 0.2,
        elite: int = 2,
        seeds: Sequence[str] = ("XY", "YX", "SG"),
        seed: RngLike = 0,
    ):
        if population < 4:
            raise InvalidParameterError(f"population must be >= 4, got {population}")
        if generations < 1:
            raise InvalidParameterError(
                f"generations must be >= 1, got {generations}"
            )
        if not 2 <= tournament <= population:
            raise InvalidParameterError(
                f"tournament must lie in [2, population], got {tournament}"
            )
        if not 0.0 <= crossover_prob <= 1.0:
            raise InvalidParameterError(
                f"crossover_prob must lie in [0, 1], got {crossover_prob}"
            )
        if not 0.0 <= mutation_prob <= 1.0:
            raise InvalidParameterError(
                f"mutation_prob must lie in [0, 1], got {mutation_prob}"
            )
        if not 0 <= elite < population:
            raise InvalidParameterError(
                f"elite must lie in [0, population), got {elite}"
            )
        self.population = population
        self.generations = generations
        self.tournament = tournament
        self.crossover_prob = crossover_prob
        self.mutation_prob = mutation_prob
        self.elite = elite
        self.seeds = tuple(seeds)
        self._rng = ensure_rng(seed)

    def reseed(self, rng: RngLike) -> None:
        """Rebind the GA's randomness (see :meth:`Heuristic.reseed`)."""
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _route(self, problem: RoutingProblem) -> List[Path]:
        # all of the GA's randomness — tournaments, crossover masks,
        # mutation gates, path resamples — runs through the bit-exact
        # stream replica (array draws consume the generator stream element
        # by element, so the scalar replays are draw-for-draw identical)
        rng = StreamReplica(np.random.default_rng(self._rng.integers(2**63)))
        kernel = problem.kernel()
        pop = self._initial_population(problem, rng)
        fitness = self._population_fitness(problem, kernel, pop)

        comms = problem.comms
        straight = [c.delta_u == 0 or c.delta_v == 0 for c in comms]
        dags = [
            None if s else problem.dag(i) for i, s in enumerate(straight)
        ]
        for _ in range(self.generations):
            order = np.argsort(fitness)
            fitness_l = fitness.tolist()
            next_pop: List[Genome] = [pop[i] for i in order[: self.elite]]
            while len(next_pop) < self.population:
                a = self._tournament_pick(fitness_l, rng)
                if rng.random() < self.crossover_prob:
                    b = self._tournament_pick(fitness_l, rng)
                    child = self._crossover(pop[a], pop[b], rng)
                else:
                    child = pop[a]
                child = self._mutate(child, rng, straight, dags)
                next_pop.append(child)
            pop = next_pop
            fitness = self._population_fitness(problem, kernel, pop)

        best = pop[int(np.argmin(fitness))]
        return [
            Path.from_validated(problem.mesh, c.src, c.snk, mv)
            for c, mv in zip(problem.comms, best)
        ]

    # ------------------------------------------------------------------
    def _initial_population(
        self, problem: RoutingProblem, rng: np.random.Generator
    ) -> List[Genome]:
        pop: List[Genome] = []
        for name in self.seeds:
            if len(pop) >= self.population:
                break
            pop.append(tuple(initial_moves(problem, name)))
        while len(pop) < self.population:
            genome = tuple(
                problem.dag(i).random_moves(rng, alive_only=True)
                for i in range(problem.num_comms)
            )
            pop.append(genome)
        return pop

    @staticmethod
    def _population_fitness(
        problem: RoutingProblem,
        kernel: FlatRoutingKernel,
        pop: Sequence[Genome],
    ) -> np.ndarray:
        """Graded total power of every genome, in one batched NumPy pass.

        The flat kernel turns the whole population into a ``P × total_hops``
        link matrix, the loads into a ``P × num_links`` matrix, and
        :meth:`~repro.mesh.kernel.FlatRoutingKernel.graded_powers` grades
        all rows at once (threading the mesh's fault mask and power-scale
        vectors on profiled meshes) — the population evaluation that used
        to dominate the GA's runtime is a handful of vector operations.
        """
        vmask = kernel.population_vmask(pop)
        return kernel.graded_powers(problem.power, vmask)

    def _tournament_pick(self, fitness_l: List[float], rng: StreamReplica) -> int:
        """First-minimum tournament over ``tournament`` scalar draws.

        Draw-for-draw identical to drawing the contender array in one
        call and taking ``argmin`` (strict ``<`` keeps the earliest
        minimum, like ``argmin``).
        """
        integers = rng.integers
        n = len(fitness_l)
        best = integers(n)
        bf = fitness_l[best]
        for _ in range(self.tournament - 1):
            c = integers(n)
            f = fitness_l[c]
            if f < bf:
                best, bf = c, f
        return best

    @staticmethod
    def _crossover(a: Genome, b: Genome, rng: StreamReplica) -> Genome:
        """Uniform per-communication exchange (paths are never spliced)."""
        random = rng.random
        return tuple(x if random() < 0.5 else y for x, y in zip(a, b))

    def _mutate(
        self,
        genome: Genome,
        rng: StreamReplica,
        straight: List[bool],
        dags: List,
    ) -> Genome:
        out = list(genome)
        random = rng.random
        integers = rng.integers
        mutation_prob = self.mutation_prob
        for i, is_straight in enumerate(straight):
            if random() >= mutation_prob:
                continue
            if is_straight:
                continue  # unique Manhattan path; nothing to mutate
            if random() < 0.5:
                out[i] = dags[i].random_moves(rng, alive_only=True)
            else:
                mv = out[i]
                pos = flip_positions(mv)
                if pos:
                    j = pos[integers(len(pos))]
                    out[i] = mv[:j] + mv[j + 1] + mv[j] + mv[j + 2 :]
        return tuple(out)
