"""BEST — the virtual best-of-all meta-heuristic (Section 6).

The paper evaluates "the BEST heuristic as the best heuristic among all six
ones on the given problem instance": run XY, SG, IG, TB, XYI and PR, keep
the valid routing with the lowest power.  BEST fails only when all of them
fail.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, HeuristicResult, get_heuristic
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError

#: the paper's six competitors, in presentation order
PAPER_HEURISTICS = ("XY", "SG", "IG", "TB", "XYI", "PR")


def best_of_results(results: Sequence[HeuristicResult]) -> HeuristicResult:
    """Pick the winner among per-heuristic results on one instance.

    Valid routings beat invalid ones; among valid routings, lower power
    wins; among invalid ones, the first is kept (its report already flags
    the failure).  The returned result keeps the winning heuristic's name
    suffixed into ``BEST[name]`` for traceability.
    """
    if not results:
        raise InvalidParameterError("best_of_results needs at least one result")
    winner = min(
        results,
        key=lambda r: (not r.valid, r.power if r.valid else 0.0),
    )
    return HeuristicResult(
        name=f"BEST[{winner.name}]",
        routing=winner.routing,
        report=winner.report,
        runtime_s=sum(r.runtime_s for r in results),
    )


class BestOf(Heuristic):
    """Run a set of heuristics and keep the best valid routing.

    Parameters
    ----------
    names:
        Heuristic registry names to compete; defaults to the paper's six.
    """

    name = "BEST"

    def __init__(self, names: Optional[Sequence[str]] = None):
        self.names = tuple(names) if names is not None else PAPER_HEURISTICS
        if not self.names:
            raise InvalidParameterError("BestOf needs at least one heuristic name")
        self._members = [get_heuristic(n) for n in self.names]

    def solve(self, problem: RoutingProblem) -> HeuristicResult:
        results = [h.solve(problem) for h in self._members]
        best = best_of_results(results)
        return HeuristicResult(
            name="BEST",
            routing=best.routing,
            report=best.report,
            runtime_s=best.runtime_s,
        )

    def solve_all(self, problem: RoutingProblem) -> List[HeuristicResult]:
        """Per-member results (the experiment runner aggregates these)."""
        return [h.solve(problem) for h in self._members]

    def _route(self, problem: RoutingProblem) -> List[Path]:  # pragma: no cover
        # BestOf overrides solve(); the abstract hook is never used.
        raise NotImplementedError("BestOf overrides solve() directly")
