"""XY and YX baseline routings.

XY is "the most natural and widely used algorithm": every communication
travels all of its horizontal hops first, then its vertical hops.  There is
no routing freedom, so the result is deterministic and oblivious to load.
YX is the transposed baseline, used in the Lemma 2 worst-case instance.
"""

from __future__ import annotations

from typing import List

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.mesh.paths import Path


@register_heuristic("XY")
class XYRouting(Heuristic):
    """Route every communication horizontally first, then vertically."""

    batch_eval = True

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        return [Path.xy(mesh, c.src, c.snk) for c in problem.comms]


@register_heuristic("YX")
class YXRouting(Heuristic):
    """Route every communication vertically first, then horizontally."""

    batch_eval = True

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        return [Path.yx(mesh, c.src, c.snk) for c in problem.comms]
