"""Deferred heuristic evaluation through the stacked multi-problem kernel.

Heuristics whose construction is RNG-free after :meth:`~repro.heuristics.
base.Heuristic.reseed` (``batch_eval = True``: XY/YX, SG, TB, XYI, PR)
split cleanly into a timed routing phase and an untimed evaluation phase —
:meth:`~repro.heuristics.base.Heuristic.route_timed` produces the routing
and its wall time, and the final :func:`~repro.core.evaluate.
evaluate_routing` can be postponed and batched.  This module holds the
other half of that split: collect :class:`DeferredEval` records across
many heuristic runs (different instances, different heuristics), then
grade them all through **one** :class:`~repro.mesh.kernel.
MultiProblemKernel` pass.

Each produced :class:`~repro.heuristics.base.HeuristicResult` is
bit-identical to the one :meth:`Heuristic.solve` would have returned: the
timed region is the same, no RNG is consumed by evaluation, and the
stacked report replicates :func:`loads_report` float for float.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.evaluate import evaluate_routing
from repro.core.routing import Routing
from repro.heuristics.base import HeuristicResult
from repro.mesh.kernel import MultiProblemKernel


@dataclass(frozen=True)
class DeferredEval:
    """A routed-but-unevaluated heuristic run awaiting batch grading."""

    name: str
    routing: Routing
    runtime_s: float


def evaluate_deferred(
    deferred: Sequence[DeferredEval],
) -> List[HeuristicResult]:
    """Grade every deferred run in one stacked pass, preserving order.

    ``out[i]`` equals the :class:`HeuristicResult` that ``solve`` would
    have produced for ``deferred[i]``.  A single entry falls through to
    the plain per-instance evaluation (stacking one instance buys
    nothing).
    """
    if not deferred:
        return []
    if len(deferred) == 1:
        d = deferred[0]
        return [
            HeuristicResult(
                name=d.name,
                routing=d.routing,
                report=evaluate_routing(d.routing),
                runtime_s=d.runtime_s,
            )
        ]
    mpk = MultiProblemKernel([d.routing.problem for d in deferred])
    reports = mpk.evaluate_routings([d.routing for d in deferred])
    return [
        HeuristicResult(
            name=d.name,
            routing=d.routing,
            report=rep,
            runtime_s=d.runtime_s,
        )
        for d, rep in zip(deferred, reports)
    ]
