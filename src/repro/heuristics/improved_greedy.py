"""IG — the improved greedy heuristic (Section 5.2).

Every communication is first *virtually pre-routed* as if it could be
spread evenly over all the links between consecutive diagonals of its
rectangle (the ideal distribution of Figure 3).  Communications are then
processed by decreasing weight: the communication's own pre-routing is
removed from the link loads, and a unique route is grown from the source;
at each step the candidate next link is scored by a lower bound on the
power to reach the sink through it — the power of the candidate link plus,
for every remaining band between the candidate's head and the sink, the
power of the least-loaded reachable band link if the communication were
added to it.  The candidate with the smaller bound wins; ties fall back to
SG's closest-to-the-diagonal rule.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.greedy import diagonal_offset
from repro.heuristics.ordering import DEFAULT_ORDERING
from repro.mesh.moves import MOVE_H, MOVE_V
from repro.mesh.paths import CommDag, Path


class _BandIndex:
    """Vectorised view of a CommDag's bands for fast sub-rectangle minima."""

    __slots__ = ("lids", "xs", "ys")

    def __init__(self, dag: CommDag):
        # consume the DAG's cached band arrays (shared through the problem's
        # DAG pool) instead of re-walking edge_tail per link
        lids_l, xs_l, ys_l, _kv = dag.band_arrays()
        self.lids: List[np.ndarray] = lids_l
        self.xs: List[np.ndarray] = xs_l
        self.ys: List[np.ndarray] = ys_l

    def min_load_after(self, loads: np.ndarray, t: int, x0: int, y0: int) -> float:
        """Least load among band-``t`` links reachable from node ``(x0, y0)``.

        Reachable means the link's tail has progressed at least ``(x0, y0)``
        in both coordinates.
        """
        mask = (self.xs[t] >= x0) & (self.ys[t] >= y0)
        return float(loads[self.lids[t][mask]].min())

    def min_power_after(
        self,
        loads: np.ndarray,
        t: int,
        x0: int,
        y0: int,
        rate: float,
        power,
        scale: np.ndarray | None,
        alive: np.ndarray | None,
        dead: np.ndarray | None,
    ) -> float:
        """Scenario-aware band bound: least (scaled) graded power among the
        reachable band-``t`` links if the communication were added to one.

        Dead links are excluded when any live reachable link remains; when
        none does (a blocked communication) the surviving dead links are
        graded with the ``dead`` coefficients, so they draw the
        zero-bandwidth penalty instead of looking cheap.  The profile is
        passed through ``link_power_graded``'s keywords, matching the
        objective exactly (in particular the overload penalty stays
        unscaled).  On a pristine homogeneous mesh this equals
        ``link_power_graded(min_load_after(...) + rate)`` (the graded power
        is monotone in load), so the cheaper scalar path is used there.
        """
        mask = (self.xs[t] >= x0) & (self.ys[t] >= y0)
        if alive is not None:
            live = mask & alive[self.lids[t]]
            if live.any():
                mask = live
        lids = self.lids[t][mask]
        vals = power.link_power_graded(
            loads[lids] + rate,
            scale=None if scale is None else scale[lids],
            dead=None if dead is None else dead[lids],
        )
        return float(vals.min())


@register_heuristic("IG")
class ImprovedGreedy(Heuristic):
    """Pre-routed greedy with band-minimum lower-bound look-ahead."""

    def __init__(self, ordering: str = DEFAULT_ORDERING):
        self.ordering = ordering

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        power = problem.power
        n = problem.num_comms
        alive = mesh.link_mask  # None on pristine meshes
        scale = mesh.link_scale
        dead = mesh.dead_mask
        profiled = alive is not None or scale is not None
        loads = np.zeros(mesh.num_links, dtype=np.float64)

        # virtual pre-routing: δ_i / |band| on every band link (Figure 3);
        # on faulty meshes the spread covers the *live* band links only
        # (every band of a connected communication keeps at least one),
        # falling back to the full bands for blocked communications
        pre_bands: List[List[np.ndarray]] = []
        pre_shares: List[List[float]] = []
        for i in range(n):
            dag = problem.dag(i)
            if alive is not None and dag.has_live_path():
                lids_l = dag.band_arrays()[0]
                bands = [b[alive[b]] for b in lids_l]
            else:
                bands = [np.asarray(b, dtype=np.int64) for b in dag.bands()]
            share = [problem.comms[i].rate / len(b) for b in bands]
            for b, s in zip(bands, share):
                loads[b] += s
            pre_bands.append(bands)
            pre_shares.append(share)

        scratch = np.empty(1, dtype=np.float64)

        def link_power_after(load: float, rate: float) -> float:
            scratch[0] = load + rate
            return float(power.link_power_graded(scratch)[0])

        paths: List[Path | None] = [None] * n
        for i in problem.order_by(self.ordering):
            comm = problem.comms[i]
            dag = problem.dag(i)
            index = _BandIndex(dag)
            # remove this communication's own pre-routing (clamping the
            # numerical dust that uniform shares can leave behind)
            for b, s in zip(pre_bands[i], pre_shares[i]):
                loads[b] = np.maximum(loads[b] - s, 0.0)
            rate = comm.rate
            du, dv = dag.du, dag.dv
            bwd = None
            if alive is not None and dag.has_live_path():
                bwd = dag.live_reachability()[1]
            x = y = 0
            moves: List[str] = []
            while (x, y) != (du, dv):
                cands = []  # (move, lid, x', y')
                if x < du:
                    cands.append((MOVE_V, dag.edge(x, y, MOVE_V), x + 1, y))
                if y < dv:
                    cands.append((MOVE_H, dag.edge(x, y, MOVE_H), x, y + 1))
                if bwd is not None and len(cands) > 1:
                    viable = [
                        c for c in cands if alive[c[1]] and bwd[c[2], c[3]]
                    ]
                    if viable:
                        cands = viable
                if len(cands) == 1:
                    move, lid, x2, y2 = cands[0]
                else:
                    scored = []
                    for move, lid, x2, y2 in cands:
                        if profiled:
                            # grade through the profile keywords so the
                            # bound matches the objective (scale applies to
                            # the base power only, never the overload
                            # penalty; a dead candidate of a blocked comm
                            # draws the zero-bandwidth penalty)
                            scratch[0] = loads[lid] + rate
                            bound = float(
                                power.link_power_graded(
                                    scratch,
                                    scale=None if scale is None else scale[lid],
                                    dead=None if dead is None else dead[lid],
                                )[0]
                            )
                            for t in range(x2 + y2, du + dv):
                                bound += index.min_power_after(
                                    loads, t, x2, y2, rate, power,
                                    scale, alive, dead,
                                )
                        else:
                            bound = link_power_after(loads[lid], rate)
                            for t in range(x2 + y2, du + dv):
                                m = index.min_load_after(loads, t, x2, y2)
                                bound += link_power_after(m, rate)
                        scored.append((bound, move, lid, x2, y2))
                    b_v, b_h = scored[0][0], scored[1][0]
                    if b_v < b_h:
                        _, move, lid, x2, y2 = scored[0]
                    elif b_h < b_v:
                        _, move, lid, x2, y2 = scored[1]
                    else:
                        # tie: same rule as SG — head closest to the diagonal,
                        # residual tie preferring the horizontal hop
                        offs = []
                        for _, mv, ld, xx, yy in scored:
                            head = dag.node_core(xx, yy)
                            offs.append(
                                (
                                    diagonal_offset(comm.src, comm.snk, head),
                                    1 if mv == MOVE_V else 0,
                                    mv,
                                    ld,
                                    xx,
                                    yy,
                                )
                            )
                        offs.sort(key=lambda z: (z[0], z[1]))
                        _, _, move, lid, x2, y2 = offs[0]
                loads[lid] += rate
                moves.append(move)
                x, y = x2, y2
            paths[i] = Path.from_validated(mesh, comm.src, comm.snk, "".join(moves))
        return paths  # type: ignore[return-value]
