"""Communication-processing orders for greedy heuristics.

The paper sorts communications by decreasing weight (rate) and reports that
alternatives — decreasing length, decreasing weight/length density — were
tried and found worse.  The orderings are exposed here so the
``ablation_ordering`` campaign experiment can reproduce that claim.
"""

from __future__ import annotations

from typing import List

from repro.core.problem import RoutingProblem

#: orderings understood by :meth:`RoutingProblem.order_by`
ORDERINGS = ("weight", "length", "density", "input")

#: the paper's default
DEFAULT_ORDERING = "weight"


def processing_order(problem: RoutingProblem, key: str = DEFAULT_ORDERING) -> List[int]:
    """Indices of the communications in processing order (see ORDERINGS)."""
    return problem.order_by(key)
