"""PR — the path-remover heuristic (Section 5.5).

Every communication starts *virtually* routed over **all** its Manhattan
paths: each link of band ``t`` of its rectangle carries ``δ / n_t`` where
``n_t`` is the number of links in the band (the ideal spread of Figure 3).
Then, while some communication still has more than one remaining path, the
most loaded link is selected and the largest communication that can afford
to lose it gives it up; the communication's remaining spread is
re-balanced, and the *path cleaning* cascade removes every link of its
rectangle that no longer lies on any surviving source→sink path (the
generalisation of the paper's cascade-deletion rules, implemented as a
forward/backward reachability sweep over the communication's DAG).

Invariants maintained (and exercised by the test suite):

* after cleaning, every allowed link of a communication lies on at least
  one surviving src→snk path — consequently a link is removable from a
  communication iff its band still holds ≥ 2 links, and a removal never
  disconnects;
* the virtual load of a communication over each band always sums to its
  rate, so when every band holds a single link the virtual load *is* the
  real single-path load.

Links that no communication can give up are frozen and skipped from then
on (band counts only shrink, so unremovability is permanent).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.mesh.paths import CommDag, Path, band_reachability


class _CommState:
    """Per-communication spread state: allowed band links and their shares."""

    __slots__ = (
        "dag",
        "rate",
        "bands",
        "tails_x",
        "tails_y",
        "kinds",
        "allowed",
        "counts",
        "pos",
        "excess",
    )

    def __init__(
        self,
        dag: CommDag,
        rate: float,
        loads: np.ndarray,
        alive: np.ndarray | None = None,
    ):
        self.dag = dag
        self.rate = rate
        # band geometry (link ids, tail coordinates, edge kinds, positions)
        # is immutable and cached on the — possibly pooled — DAG; only the
        # `allowed` masks and counts are per-communication state
        lids_l, xs_l, ys_l, kv_l = dag.band_arrays()
        self.bands: List[np.ndarray] = list(lids_l)
        self.tails_x: List[np.ndarray] = list(xs_l)
        self.tails_y: List[np.ndarray] = list(ys_l)
        self.kinds: List[np.ndarray] = list(kv_l)  # True where vertical
        self.pos: Dict[int, Tuple[int, int]] = dag.band_pos()
        # on a faulty mesh, a communication with a surviving live path
        # spreads over its live links only (cleaned so every remaining
        # link is on some fully-live path); blocked communications fall
        # back to the full spread and end up reported invalid
        use_alive = alive is not None and dag.has_live_path()
        self.allowed = [
            (alive[lids].copy() if use_alive else np.ones(len(lids), dtype=bool))
            for lids in self.bands
        ]
        self.counts: List[int] = []
        if use_alive:
            self._clean()
        for t, lids in enumerate(self.bands):
            if use_alive:
                a = self.allowed[t]
                cnt = int(a.sum())
                loads[lids[a]] += rate / cnt
            else:
                cnt = len(lids)
                loads[lids] += rate / cnt
            self.counts.append(cnt)
        self.excess = sum(self.counts) - len(self.counts)

    @property
    def finished(self) -> bool:
        """True when every band holds exactly one link (a unique path)."""
        return self.excess == 0

    def band_count_of(self, lid: int) -> int:
        """Number of allowed links in the band containing ``lid`` (0 if gone)."""
        t, j = self.pos[lid]
        return self.counts[t] if self.allowed[t][j] else 0

    def allows(self, lid: int) -> bool:
        t_j = self.pos.get(lid)
        if t_j is None:
            return False
        t, j = t_j
        return bool(self.allowed[t][j])

    # ------------------------------------------------------------------
    def remove_and_clean(self, lid: int, loads: np.ndarray) -> List[int]:
        """Give up ``lid`` (band count must be ≥ 2), cascade-clean, update loads.

        Returns every link id this communication stopped using (the target
        plus the cleaning cascade).
        """
        t0, j0 = self.pos[lid]
        if not self.allowed[t0][j0]:
            raise AssertionError(f"link {lid} already removed from this comm")
        if self.counts[t0] < 2:
            raise AssertionError(
                "removing the last band link would break the last path"
            )
        old_allowed = [a.copy() for a in self.allowed]
        self.allowed[t0][j0] = False
        self._clean()
        removed: List[int] = []
        for t, (old_a, new_a) in enumerate(zip(old_allowed, self.allowed)):
            if old_a.sum() == new_a.sum():
                continue
            n_old = int(old_a.sum())
            n_new = int(new_a.sum())
            # re-balance: survivors go from rate/n_old to rate/n_new
            loads[self.bands[t][new_a]] += self.rate / n_new - self.rate / n_old
            gone = old_a & ~new_a
            lids_gone = self.bands[t][gone]
            loads[lids_gone] = np.maximum(loads[lids_gone] - self.rate / n_old, 0.0)
            removed.extend(int(x) for x in lids_gone)
            self.excess -= n_old - n_new
            self.counts[t] = n_new
        return removed

    def _clean(self) -> None:
        """Drop every allowed edge not on a surviving src→snk path."""
        du, dv = self.dag.du, self.dag.dv
        fwd, bwd = band_reachability(
            du, dv, self.tails_x, self.tails_y, self.kinds, self.allowed
        )
        if not fwd[du, dv]:
            raise AssertionError("cleaning disconnected src from snk")
        for t in range(len(self.bands)):
            a = self.allowed[t]
            xs, ys, kv = self.tails_x[t], self.tails_y[t], self.kinds[t]
            hx = np.where(kv, xs + 1, xs)
            hy = np.where(kv, ys, ys + 1)
            keep = a & fwd[xs, ys] & bwd[hx, hy]
            self.allowed[t] = keep

    def extract_moves(self) -> str:
        """The unique remaining path as a move string (requires finished)."""
        if not self.finished:
            raise AssertionError("communication still has multiple paths")
        out = []
        for t in range(len(self.bands)):
            j = int(np.nonzero(self.allowed[t])[0][0])
            out.append("V" if self.kinds[t][j] else "H")
        return "".join(out)


@register_heuristic("PR")
class PathRemover(Heuristic):
    """Prune the all-paths spread, most-loaded link first."""

    batch_eval = True

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        alive = mesh.link_mask
        scale = mesh.link_scale
        dead = mesh.dead_mask
        n = problem.num_comms
        loads = np.zeros(mesh.num_links, dtype=np.float64)
        states = [
            _CommState(problem.dag(i), problem.comms[i].rate, loads, alive)
            for i in range(n)
        ]
        comms_on: List[Set[int]] = [set() for _ in range(mesh.num_links)]
        for i, st in enumerate(states):
            for lid in st.pos:
                comms_on[lid].add(i)
        frozen = np.zeros(mesh.num_links, dtype=bool)
        unfinished = {i for i in range(n) if not states[i].finished}

        while unfinished:
            if scale is None and dead is None:
                weighted = loads
            else:
                # relieve the most *power-costly* link first: scale-weight
                # heterogeneous regions, and evacuate any removable spread
                # from dead links before everything else
                weighted = loads if scale is None else loads * scale
                if dead is not None:
                    weighted = weighted + np.where(
                        dead & (loads > 0), np.inf, 0.0
                    )
            masked = np.where(frozen, -1.0, weighted)
            lid = int(np.argmax(masked))
            if masked[lid] <= 0:
                # No loaded, unfrozen link left: every unfinished comm should
                # have offered a removable link — defensive stop (unreached
                # under the documented invariants, exercised by tests).
                break
            cands = sorted(
                (
                    i
                    for i in comms_on[lid]
                    if states[i].allows(lid) and states[i].band_count_of(lid) >= 2
                ),
                key=lambda i: (-problem.comms[i].rate, i),
            )
            if not cands:
                frozen[lid] = True
                continue
            i = cands[0]
            for gone in states[i].remove_and_clean(lid, loads):
                comms_on[gone].discard(i)
            if states[i].finished:
                unfinished.discard(i)

        paths = []
        for i, st in enumerate(states):
            comm = problem.comms[i]
            paths.append(
                Path.from_validated(mesh, comm.src, comm.snk, st.extract_moves())
            )
        return paths
