"""TABU — tabu search over single-path Manhattan routings.

A best-improvement local search with short-term memory: each iteration
scores a candidate neighbourhood (corner flips of the communications that
cross the currently hottest links, plus a random exploration slice),
commits the best non-tabu move even when it is uphill, and forbids undoing
it for ``tenure`` iterations.  The aspiration criterion overrides the tabu
status of any move that would improve on the best routing seen so far.

Like the paper's XYI this is an *improver*: it starts from a registered
heuristic's routing (SG by default; pass ``init="XYI"`` to refine the
paper's best improver further), and the tabu memory lets it traverse the
plateaus and shallow local optima where plain descent stops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.local_moves import RoutingState, flip_positions, initial_moves
from repro.mesh.paths import Path
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError

#: a candidate move: ("flip", ci, j) — resamples are handled separately
Move = Tuple[int, int]


@register_heuristic("TABU")
class TabuRouting(Heuristic):
    """Hot-link-guided tabu search with aspiration.

    Parameters
    ----------
    iterations:
        Committed moves (each evaluates up to ``neighborhood`` candidates).
    tenure:
        Iterations during which the inverse of a committed flip is tabu.
    neighborhood:
        Candidate-move budget per iteration.
    hot_links:
        Number of most-loaded links whose crossing communications are
        prioritised when building the candidate set.
    init:
        Registered heuristic providing the starting routing.
    seed:
        RNG seed (or Generator); deterministic given the seed.
    """

    def __init__(
        self,
        *,
        iterations: int = 300,
        tenure: int = 12,
        neighborhood: int = 48,
        hot_links: int = 4,
        init: str = "SG",
        seed: RngLike = 0,
    ):
        if iterations < 1:
            raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
        if tenure < 1:
            raise InvalidParameterError(f"tenure must be >= 1, got {tenure}")
        if neighborhood < 1:
            raise InvalidParameterError(
                f"neighborhood must be >= 1, got {neighborhood}"
            )
        if hot_links < 1:
            raise InvalidParameterError(f"hot_links must be >= 1, got {hot_links}")
        self.iterations = iterations
        self.tenure = tenure
        self.neighborhood = neighborhood
        self.hot_links = hot_links
        self.init = init
        self._rng = ensure_rng(seed)

    def reseed(self, rng: RngLike) -> None:
        """Rebind the tabu search's randomness (see :meth:`Heuristic.reseed`)."""
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _route(self, problem: RoutingProblem) -> List[Path]:
        rng = np.random.default_rng(self._rng.integers(2**63))
        state = RoutingState(problem, initial_moves(problem, self.init))
        movable = state.mutable_comms()
        if not movable:
            return state.paths()

        best_moves = state.snapshot()
        best_cost = state.cost
        tabu: Dict[Tuple[int, str], int] = {}  # (ci, move-string) -> expiry

        for it in range(self.iterations):
            chosen = self._best_candidate(state, movable, tabu, best_cost, it, rng)
            if chosen is None:
                break  # no admissible move in the sampled neighbourhood
            ci, j, deltas, dcost = chosen
            # forbid returning to the pre-move path of ci
            tabu[(ci, "".join(state.moves[ci]))] = it + self.tenure
            state.apply_flip(ci, j, deltas, dcost)
            if state.cost < best_cost:
                best_cost = state.cost
                best_moves = state.snapshot()
            if len(tabu) > 4 * self.tenure * len(movable):
                tabu = {k: v for k, v in tabu.items() if v > it}

        return RoutingState(problem, best_moves).paths()

    # ------------------------------------------------------------------
    def _best_candidate(
        self,
        state: RoutingState,
        movable: List[int],
        tabu: Dict[Tuple[int, str], int],
        best_cost: float,
        it: int,
        rng: np.random.Generator,
    ) -> Optional[Tuple[int, int, Dict[int, float], float]]:
        """Lowest-Δcost admissible flip among hot-link and random candidates."""
        cands: List[Move] = []
        seen = set()

        def add(ci: int, j: int) -> None:
            if (ci, j) not in seen:
                seen.add((ci, j))
                cands.append((ci, j))

        # flips touching the hottest links first
        for lid in state.most_loaded_links(self.hot_links):
            for ci in state.comms_using(lid):
                mv = state.moves[ci]
                k = state.links[ci].index(lid)
                for j in (k - 1, k):
                    if 0 <= j < len(mv) - 1 and mv[j] != mv[j + 1]:
                        add(ci, j)
                if len(cands) >= self.neighborhood:
                    break
            if len(cands) >= self.neighborhood:
                break

        # random exploration slice
        n_mov = len(movable)
        attempts = 0
        while len(cands) < self.neighborhood and attempts < 4 * self.neighborhood:
            attempts += 1
            ci = movable[int(rng.integers(n_mov))]
            pos = flip_positions(state.moves[ci])
            if pos:
                add(ci, pos[int(rng.integers(len(pos)))])

        best: Optional[Tuple[int, int, Dict[int, float], float]] = None
        for ci, j in cands:
            deltas, dcost = state.flip_delta(ci, j)
            # the flip's destination path for ci
            mv = state.moves[ci]
            dest = "".join(mv[:j] + [mv[j + 1], mv[j]] + mv[j + 2 :])
            is_tabu = tabu.get((ci, dest), -1) > it
            if is_tabu and state.cost + dcost >= best_cost:
                continue  # tabu and no aspiration
            if best is None or dcost < best[3]:
                best = (ci, j, deltas, dcost)
        return best
