"""TABU — tabu search over single-path Manhattan routings.

A best-improvement local search with short-term memory: each iteration
scores a candidate neighbourhood (corner flips of the communications that
cross the currently hottest links, plus a random exploration slice),
commits the best non-tabu move even when it is uphill, and forbids undoing
it for ``tenure`` iterations.  The aspiration criterion overrides the tabu
status of any move that would improve on the best routing seen so far.

Like the paper's XYI this is an *improver*: it starts from a registered
heuristic's routing (SG by default; pass ``init="XYI"`` to refine the
paper's best improver further), and the tabu memory lets it traverse the
plateaus and shallow local optima where plain descent stops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.local_moves import RoutingState, initial_moves
from repro.mesh.paths import Path
from repro.utils.rng import RngLike, StreamReplica, ensure_rng
from repro.utils.validation import InvalidParameterError

#: a candidate move: ("flip", ci, j) — resamples are handled separately
Move = Tuple[int, int]


@register_heuristic("TABU")
class TabuRouting(Heuristic):
    """Hot-link-guided tabu search with aspiration.

    Parameters
    ----------
    iterations:
        Committed moves (each evaluates up to ``neighborhood`` candidates).
    tenure:
        Iterations during which the inverse of a committed flip is tabu.
    neighborhood:
        Candidate-move budget per iteration.
    hot_links:
        Number of most-loaded links whose crossing communications are
        prioritised when building the candidate set.
    init:
        Registered heuristic providing the starting routing.
    seed:
        RNG seed (or Generator); deterministic given the seed.
    """

    def __init__(
        self,
        *,
        iterations: int = 300,
        tenure: int = 12,
        neighborhood: int = 48,
        hot_links: int = 4,
        init: str = "SG",
        seed: RngLike = 0,
    ):
        if iterations < 1:
            raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
        if tenure < 1:
            raise InvalidParameterError(f"tenure must be >= 1, got {tenure}")
        if neighborhood < 1:
            raise InvalidParameterError(
                f"neighborhood must be >= 1, got {neighborhood}"
            )
        if hot_links < 1:
            raise InvalidParameterError(f"hot_links must be >= 1, got {hot_links}")
        self.iterations = iterations
        self.tenure = tenure
        self.neighborhood = neighborhood
        self.hot_links = hot_links
        self.init = init
        self._rng = ensure_rng(seed)

    def reseed(self, rng: RngLike) -> None:
        """Rebind the tabu search's randomness (see :meth:`Heuristic.reseed`)."""
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _route(self, problem: RoutingProblem) -> List[Path]:
        return self._solve(problem, initial_moves(problem, self.init))

    def _route_from(
        self, problem: RoutingProblem, moves: List[str]
    ) -> List[Path]:
        # warm start: the search walks from the supplied routing instead
        # of the init heuristic's
        return self._solve(problem, list(moves))

    def _solve(self, problem: RoutingProblem, start: List[str]) -> List[Path]:
        # bit-exact draw sequence at a fraction of the scalar-draw cost
        rng = StreamReplica(np.random.default_rng(self._rng.integers(2**63)))
        state = RoutingState(problem, start)
        movable = state.mutable_comms()
        if not movable:
            return state.paths()
        if state.tier == "native":
            return self._route_native(problem, state, movable, rng)

        best_moves = state.snapshot()
        best_cost = state.cost
        tabu: Dict[Tuple[int, str], int] = {}  # (ci, move-string) -> expiry

        for it in range(self.iterations):
            chosen = self._best_candidate(state, movable, tabu, best_cost, it, rng)
            if chosen is None:
                break  # no admissible move in the sampled neighbourhood
            ci, j, dcost = chosen
            # forbid returning to the pre-move path of ci
            tabu[(ci, state.move_str(ci))] = it + self.tenure
            state.commit_flip(ci, j, dcost)
            if state.cost < best_cost:
                best_cost = state.cost
                best_moves = state.snapshot()
            if len(tabu) > 4 * self.tenure * len(movable):
                tabu = {k: v for k, v in tabu.items() if v > it}

        return RoutingState(problem, best_moves).paths()

    # ------------------------------------------------------------------
    def _route_native(
        self,
        problem: RoutingProblem,
        state: RoutingState,
        movable: List[int],
        rng: StreamReplica,
    ) -> List[Path]:
        """:meth:`_route`'s main loop on the native tier, bit for bit.

        The C kernel builds and grades each iteration's candidate
        neighbourhood (hot-link expansion, random slice, scalar grading,
        stable Δcost argsort) on a :class:`~repro.native.ledger.
        NativeLedger` mirror; the tabu dictionary, aspiration walk and
        commit bookkeeping stay in Python, walking the returned order
        exactly like :meth:`_best_candidate` does.
        """
        from repro.native import native_module
        from repro.native.ledger import NativeLedger
        from repro.native.stream import NativeStream

        module = native_module()
        ffi, lib = module.ffi, module.lib
        # the replica has not drawn yet: hand its untouched generator to
        # the C stream so the draw sequence continues unchanged
        nrng = NativeStream(rng._rng)
        nat = NativeLedger(state, link_comms=True)
        best_moves = nat.snapshot()
        best_cost = nat.cost
        tabu: Dict[Tuple[int, str], int] = {}

        nb = self.neighborhood
        # hot expansion checks the budget only after appending both
        # corners of a crossing, so one iteration can exceed it by one
        cci = np.zeros(nb + 1, dtype=np.int64)
        cj = np.zeros(nb + 1, dtype=np.int64)
        dcosts = np.zeros(nb + 1, dtype=np.float64)
        order = np.zeros(nb + 1, dtype=np.int64)
        seen = np.zeros(max(nat.total_len - nat.num_comms, 1), dtype=np.uint8)
        movable_arr = np.asarray(movable, dtype=np.int64)
        p_cci = ffi.cast("int64_t *", cci.ctypes.data)
        p_cj = ffi.cast("int64_t *", cj.ctypes.data)
        p_dc = ffi.cast("double *", dcosts.ctypes.data)
        p_or = ffi.cast("int64_t *", order.ctypes.data)
        p_seen = ffi.cast("uint8_t *", seen.ctypes.data)
        p_mov = ffi.cast("const int64_t *", movable_arr.ctypes.data)

        tabu_get = tabu.get
        for it in range(self.iterations):
            hot = np.asarray(
                nat.most_loaded_links(self.hot_links), dtype=np.int64
            )
            nc = lib.repro_tabu_candidates(
                nat._c, nrng._c,
                ffi.cast("const int64_t *", hot.ctypes.data), len(hot),
                p_mov, len(movable), nb, p_cci, p_cj, p_dc, p_or, p_seen,
            )
            if nc < 0:
                nrng.check_err()
                nat.raise_err()
            chosen = None
            scost = nat.cost
            for idx in range(nc):
                k = int(order[idx])
                ci = int(cci[k])
                j = int(cj[k])
                s = nat.move_str(ci)
                dest = s[: j] + s[j + 1] + s[j] + s[j + 2 :]
                if tabu_get((ci, dest), -1) > it and (
                    scost + dcosts[k] >= best_cost
                ):
                    continue
                chosen = (ci, j, float(dcosts[k]))
                break
            if chosen is None:
                break
            ci, j, dcost = chosen
            tabu[(ci, nat.move_str(ci))] = it + self.tenure
            nat.commit_flip(ci, j, dcost)
            if nat.cost < best_cost:
                best_cost = nat.cost
                best_moves = nat.snapshot()
            if len(tabu) > 4 * self.tenure * len(movable):
                tabu = {k2: v for k2, v in tabu.items() if v > it}
                tabu_get = tabu.get

        return RoutingState(problem, best_moves).paths()

    # ------------------------------------------------------------------
    def _best_candidate(
        self,
        state: RoutingState,
        movable: List[int],
        tabu: Dict[Tuple[int, str], int],
        best_cost: float,
        it: int,
        rng: StreamReplica,
    ) -> Optional[Tuple[int, int, float]]:
        """Lowest-Δcost admissible flip among hot-link and random candidates.

        The whole candidate neighbourhood is graded in **one** batched
        ledger pass (:meth:`~repro.mesh.batch.LoadLedger.
        flip_dcost_batch`) — one ``link_power_graded`` call per iteration
        instead of one per candidate — with per-candidate costs identical
        to the scalar evaluation, then swept in candidate order with the
        original tabu/aspiration logic.
        """
        cands: List[Move] = []
        seen = set()
        seen_add = seen.add
        cands_append = cands.append
        neighborhood = self.neighborhood
        links = state.links
        mstrs = state._mstr
        pos_lists = state._pos

        # flips touching the hottest links first
        for lid in state.most_loaded_links(self.hot_links):
            for ci in state.comms_using(lid):
                mv = mstrs[ci]
                k = links[ci].index(lid)
                for j in (k - 1, k):
                    if 0 <= j < len(mv) - 1 and mv[j] != mv[j + 1]:
                        key = (ci, j)
                        if key not in seen:
                            seen_add(key)
                            cands_append(key)
                if len(cands) >= neighborhood:
                    break
            if len(cands) >= neighborhood:
                break

        # random exploration slice
        n_mov = len(movable)
        attempts = 0
        max_attempts = 4 * neighborhood
        integers = rng.integers
        n_cands = len(cands)
        while n_cands < neighborhood and attempts < max_attempts:
            attempts += 1
            ci = movable[integers(n_mov)]
            pos = pos_lists[ci]
            if pos:
                key = (ci, pos[integers(len(pos))])
                if key not in seen:
                    seen_add(key)
                    cands_append(key)
                    n_cands += 1

        if not cands:
            return None
        dcosts = state.flip_dcost_batch(cands)
        # the committed move is the lowest-Δcost admissible candidate,
        # ties resolved to the earliest candidate — i.e. the first
        # admissible entry of the stable (Δcost, candidate-order) sort.
        # Walking that order evaluates the tabu status (and builds the
        # destination move string) of almost always just one candidate
        # instead of the whole neighbourhood.
        scost = state.cost
        tabu_get = tabu.get
        for k in np.argsort(dcosts, kind="stable"):
            ci, j = cands[k]
            dcost = dcosts[k]
            # the flip's destination path for ci
            s = state.move_str(ci)
            dest = s[:j] + s[j + 1] + s[j] + s[j + 2 :]
            is_tabu = tabu_get((ci, dest), -1) > it
            if is_tabu and scost + dcost >= best_cost:
                continue  # tabu and no aspiration
            return (ci, j, float(dcost))
        return None
