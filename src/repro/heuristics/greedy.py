"""SG — the simple greedy heuristic (Section 5.1).

Communications are processed by decreasing weight.  Each path is built hop
by hop from the source: among the (at most two) Manhattan-feasible next
links, take the least loaded one; on a tie, take the link whose head core
is closest to the straight diagonal from the source to the sink.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.ordering import DEFAULT_ORDERING
from repro.mesh.moves import MOVE_H, MOVE_V
from repro.mesh.paths import Path

Coord = Tuple[int, int]


def diagonal_offset(src: Coord, snk: Coord, core: Coord) -> float:
    """Unnormalised distance of ``core`` from the straight line src→snk.

    The absolute value of the cross product of (snk − src) and
    (core − src); proportional to the perpendicular distance, which is all
    a comparison needs.
    """
    du, dv = snk[0] - src[0], snk[1] - src[1]
    cu, cv = core[0] - src[0], core[1] - src[1]
    return abs(du * cv - dv * cu)


@register_heuristic("SG")
class SimpleGreedy(Heuristic):
    """Least-loaded-next-link greedy with diagonal tie-breaking.

    Parameters
    ----------
    ordering:
        Communication processing order; the paper's default is decreasing
        weight (see :mod:`repro.heuristics.ordering`).
    """

    def __init__(self, ordering: str = DEFAULT_ORDERING):
        self.ordering = ordering

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        loads = np.zeros(mesh.num_links, dtype=np.float64)
        paths: List[Path | None] = [None] * problem.num_comms
        for i in problem.order_by(self.ordering):
            comm = problem.comms[i]
            dag = problem.dag(i)
            su, sv = dag.su, dag.sv
            (u, v), snk = comm.src, comm.snk
            moves: List[str] = []
            while (u, v) != snk:
                cands = []  # (move, lid, next core)
                if u != snk[0]:
                    nxt = (u + su, v)
                    cands.append((MOVE_V, mesh.link_between((u, v), nxt), nxt))
                if v != snk[1]:
                    nxt = (u, v + sv)
                    cands.append((MOVE_H, mesh.link_between((u, v), nxt), nxt))
                if len(cands) == 1:
                    move, lid, nxt = cands[0]
                else:
                    (mv, lv, cv_), (mh, lh, ch_) = cands
                    if loads[lv] < loads[lh]:
                        move, lid, nxt = mv, lv, cv_
                    elif loads[lh] < loads[lv]:
                        move, lid, nxt = mh, lh, ch_
                    else:
                        # tie: head core closest to the src->snk diagonal;
                        # a residual tie prefers the horizontal link (XY-like)
                        dv_off = diagonal_offset(comm.src, snk, cv_)
                        dh_off = diagonal_offset(comm.src, snk, ch_)
                        if dv_off < dh_off:
                            move, lid, nxt = mv, lv, cv_
                        else:
                            move, lid, nxt = mh, lh, ch_
                loads[lid] += comm.rate
                moves.append(move)
                u, v = nxt
            paths[i] = Path(mesh, comm.src, comm.snk, "".join(moves))
        return paths  # type: ignore[return-value]
