"""SG — the simple greedy heuristic (Section 5.1).

Communications are processed by decreasing weight.  Each path is built hop
by hop from the source: among the (at most two) Manhattan-feasible next
links, take the least loaded one; on a tie, take the link whose head core
is closest to the straight diagonal from the source to the sink.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.ordering import DEFAULT_ORDERING
from repro.mesh.diagonals import direction_steps
from repro.mesh.kernel import direction_link_bases
from repro.mesh.moves import MOVE_H, MOVE_V
from repro.mesh.paths import Path

Coord = Tuple[int, int]


def diagonal_offset(src: Coord, snk: Coord, core: Coord) -> float:
    """Unnormalised distance of ``core`` from the straight line src→snk.

    The absolute value of the cross product of (snk − src) and
    (core − src); proportional to the perpendicular distance, which is all
    a comparison needs.
    """
    du, dv = snk[0] - src[0], snk[1] - src[1]
    cu, cv = core[0] - src[0], core[1] - src[1]
    return abs(du * cv - dv * cu)


@register_heuristic("SG")
class SimpleGreedy(Heuristic):
    """Least-loaded-next-link greedy with diagonal tie-breaking.

    Parameters
    ----------
    ordering:
        Communication processing order; the paper's default is decreasing
        weight (see :mod:`repro.heuristics.ordering`).
    """

    batch_eval = True

    def __init__(self, ordering: str = DEFAULT_ORDERING):
        self.ordering = ordering

    def _route(self, problem: RoutingProblem) -> List[Path]:
        mesh = problem.mesh
        # plain Python floats: SG only ever touches single links, and list
        # indexing beats ndarray scalar indexing in the hop loop
        loads = [0.0] * mesh.num_links
        q = mesh.q
        alive = mesh.link_mask  # None on pristine meshes
        paths: List[Path | None] = [None] * problem.num_comms
        for i in problem.order_by(self.ordering):
            comm = problem.comms[i]
            su, sv = direction_steps(comm.direction)
            # O(1) link ids: vertical hop from (u, v) is vbase + u*q + v,
            # horizontal is hbase + u*(q-1) + v (bases fold the direction
            # in; the arithmetic lives in kernel.direction_link_bases)
            vbase, hbase = direction_link_bases(mesh, su, sv)
            rate = comm.rate
            (u, v), snk = comm.src, comm.snk
            snk_u, snk_v = snk
            # fault-awareness: when the mesh has dead links and this
            # communication still has a live Manhattan path, constrain the
            # walk to hops whose link is alive and whose head can still
            # reach the sink over alive links (so the greedy walk never
            # dead-ends).  Blocked communications fall back to the
            # unconstrained walk and are reported invalid by evaluation.
            bwd = None
            if alive is not None:
                dag = problem.dag(i)
                if dag.has_live_path():
                    bwd = dag.live_reachability()[1]
            x = y = 0  # progress coordinates (only consulted when bwd set)
            moves: List[str] = []
            lids: List[int] = []
            while u != snk_u or v != snk_v:
                if u == snk_u:
                    move, lid = MOVE_H, hbase + u * (q - 1) + v
                elif v == snk_v:
                    move, lid = MOVE_V, vbase + u * q + v
                else:
                    lv = vbase + u * q + v
                    lh = hbase + u * (q - 1) + v
                    forced = None
                    if bwd is not None:
                        viab_v = alive[lv] and bwd[x + 1, y]
                        viab_h = alive[lh] and bwd[x, y + 1]
                        if viab_v != viab_h:
                            forced = (
                                (MOVE_V, lv) if viab_v else (MOVE_H, lh)
                            )
                    if forced is not None:
                        move, lid = forced
                    else:
                        load_v, load_h = loads[lv], loads[lh]
                        if load_v < load_h:
                            move, lid = MOVE_V, lv
                        elif load_h < load_v:
                            move, lid = MOVE_H, lh
                        else:
                            # tie: head core closest to the src->snk
                            # diagonal; a residual tie prefers the
                            # horizontal link (XY-like)
                            dv_off = diagonal_offset(comm.src, snk, (u + su, v))
                            dh_off = diagonal_offset(comm.src, snk, (u, v + sv))
                            if dv_off < dh_off:
                                move, lid = MOVE_V, lv
                            else:
                                move, lid = MOVE_H, lh
                loads[lid] += rate
                moves.append(move)
                lids.append(lid)
                if move == MOVE_V:
                    u += su
                    x += 1
                else:
                    v += sv
                    y += 1
            paths[i] = Path.from_validated(
                mesh, comm.src, snk, "".join(moves),
                np.asarray(lids, dtype=np.int64),
            )
        return paths  # type: ignore[return-value]
