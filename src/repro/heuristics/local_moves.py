"""Mutable 1-MP routing state with O(changed-links) cost updates.

The local-search metaheuristics (:mod:`repro.heuristics.annealing`,
:mod:`repro.heuristics.tabu`) explore the space of single-path Manhattan
routings through two elementary moves:

* **corner flip** — swap two adjacent, distinct moves ``…HV… ↔ …VH…`` of
  one communication's move string.  Adjacent transpositions generate every
  permutation of the H/V multiset, so corner flips alone connect the whole
  Manhattan path space of a communication; each flip replaces exactly two
  links of the path, giving an O(1)-sized load delta.
* **path resample** — replace one communication's path by a uniformly
  random Manhattan path (an O(length) delta).

:class:`RoutingState` owns the link-load vector and the graded total power
(:meth:`repro.core.power.PowerModel.total_power_graded`), and keeps both
consistent under moves via delta evaluation — the inner-loop primitive that
makes thousands of annealing steps per second feasible in pure Python.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.heuristics.base import graded_power_delta, path_swap_deltas
from repro.mesh.diagonals import direction_steps
from repro.mesh.kernel import links_from_vmask, moves_to_vmask
from repro.mesh.moves import MOVE_V, validate_moves
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]


def flip_positions(moves: Sequence[str]) -> List[int]:
    """Indices ``j`` where ``moves[j] != moves[j+1]`` (flippable corners)."""
    return [j for j in range(len(moves) - 1) if moves[j] != moves[j + 1]]


class RoutingState:
    """A complete 1-MP routing under local-move mutation.

    Parameters
    ----------
    problem:
        The routing problem; one path per communication is maintained.
    moves_list:
        Initial move string per communication, in problem order.

    Attributes
    ----------
    loads:
        Link-load vector (Mb/s per link id), always consistent with the
        current paths.
    cost:
        Graded total power of ``loads`` (strict power when feasible; the
        graded overload penalty otherwise), maintained incrementally.
    """

    __slots__ = (
        "problem",
        "mesh",
        "power",
        "scale",
        "dead",
        "moves",
        "links",
        "loads",
        "cost",
    )

    def __init__(self, problem: RoutingProblem, moves_list: Sequence[str]):
        if len(moves_list) != problem.num_comms:
            raise InvalidParameterError(
                f"expected {problem.num_comms} move strings, got {len(moves_list)}"
            )
        self.problem = problem
        self.mesh = problem.mesh
        self.power = problem.power
        # mesh link profile (None / None on pristine meshes): dead links are
        # graded like zero-bandwidth overloads, so the metaheuristics
        # driving this state evacuate them before optimising true power
        self.scale = self.mesh.link_scale
        self.dead = self.mesh.dead_mask
        self.moves: List[List[str]] = []
        self.links: List[List[int]] = []
        self.loads = np.zeros(self.mesh.num_links, dtype=np.float64)
        for i, mv in enumerate(moves_list):
            comm = problem.comms[i]
            validate_moves(comm.src, comm.snk, mv)
            su, sv = direction_steps(comm.direction)
            lids = links_from_vmask(
                self.mesh, comm.src, su, sv, moves_to_vmask(mv)
            ).tolist()
            self.moves.append(list(mv))
            self.links.append(lids)
            for lid in lids:
                self.loads[lid] += comm.rate
        self.cost = self.power.total_power_graded(
            self.loads, scale=self.scale, dead=self.dead
        )

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _core_at(self, ci: int, j: int) -> Coord:
        """Core reached after the first ``j`` moves of communication ``ci``."""
        comm = self.problem.comms[ci]
        dag = self.problem.dag(ci)
        x = y = 0
        mv = self.moves[ci]
        for m in mv[:j]:
            if m == MOVE_V:
                x += 1
            else:
                y += 1
        return (comm.src[0] + dag.su * x, comm.src[1] + dag.sv * y)

    def _step(self, ci: int, core: Coord, move: str) -> Coord:
        dag = self.problem.dag(ci)
        if move == MOVE_V:
            return (core[0] + dag.su, core[1])
        return (core[0], core[1] + dag.sv)

    # ------------------------------------------------------------------
    # corner flips
    # ------------------------------------------------------------------
    def flip_links(self, ci: int, j: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Old and new link pairs for the corner flip ``(ci, j)``.

        Returns ``((old_j, old_j1), (new_j, new_j1))``.  Raises when the
        two moves are equal (nothing to flip).
        """
        mv = self.moves[ci]
        if not 0 <= j < len(mv) - 1:
            raise InvalidParameterError(
                f"flip position {j} out of range for a {len(mv)}-hop path"
            )
        if mv[j] == mv[j + 1]:
            raise InvalidParameterError(
                f"moves {j} and {j + 1} of communication {ci} are both "
                f"{mv[j]!r}; corner flips need distinct moves"
            )
        c0 = self._core_at(ci, j)
        mid_new = self._step(ci, c0, mv[j + 1])
        end = self._step(ci, self._step(ci, c0, mv[j]), mv[j + 1])
        new_j = self.mesh.link_between(c0, mid_new)
        new_j1 = self.mesh.link_between(mid_new, end)
        return (self.links[ci][j], self.links[ci][j + 1]), (new_j, new_j1)

    def flip_delta(self, ci: int, j: int) -> Tuple[Dict[int, float], float]:
        """Load deltas and graded-cost change of corner flip ``(ci, j)``."""
        (o1, o2), (n1, n2) = self.flip_links(ci, j)
        rate = self.problem.comms[ci].rate
        deltas = path_swap_deltas((o1, o2), (n1, n2), rate)
        return deltas, graded_power_delta(
            self.power, self.loads, deltas, scale=self.scale, dead=self.dead
        )

    def apply_flip(self, ci: int, j: int, deltas: Dict[int, float], dcost: float) -> None:
        """Commit a corner flip whose delta was already evaluated."""
        (_, _), (n1, n2) = self.flip_links(ci, j)
        mv = self.moves[ci]
        mv[j], mv[j + 1] = mv[j + 1], mv[j]
        self.links[ci][j] = n1
        self.links[ci][j + 1] = n2
        for lid, d in deltas.items():
            self.loads[lid] += d
            if self.loads[lid] < 0:
                self.loads[lid] = 0.0
        self.cost += dcost

    # ------------------------------------------------------------------
    # full-path resamples
    # ------------------------------------------------------------------
    def resample_delta(
        self, ci: int, new_moves: str
    ) -> Tuple[List[int], Dict[int, float], float]:
        """Deltas and cost change if ``ci`` switched to ``new_moves``."""
        comm = self.problem.comms[ci]
        validate_moves(comm.src, comm.snk, new_moves)
        su, sv = direction_steps(comm.direction)
        new_links = links_from_vmask(
            self.mesh, comm.src, su, sv, moves_to_vmask(new_moves)
        ).tolist()
        deltas = path_swap_deltas(self.links[ci], new_links, comm.rate)
        return (
            new_links,
            deltas,
            graded_power_delta(
                self.power, self.loads, deltas, scale=self.scale, dead=self.dead
            ),
        )

    def apply_resample(
        self,
        ci: int,
        new_moves: str,
        new_links: List[int],
        deltas: Dict[int, float],
        dcost: float,
    ) -> None:
        """Commit a path resample whose delta was already evaluated."""
        self.moves[ci] = list(new_moves)
        self.links[ci] = list(new_links)
        for lid, d in deltas.items():
            self.loads[lid] += d
            if self.loads[lid] < 0:
                self.loads[lid] = 0.0
        self.cost += dcost

    # ------------------------------------------------------------------
    # export / bookkeeping
    # ------------------------------------------------------------------
    def snapshot(self) -> List[str]:
        """Current move strings (copy), one per communication."""
        return ["".join(mv) for mv in self.moves]

    def restore(self, snapshot: Sequence[str]) -> None:
        """Reset to a previously captured snapshot (full rebuild)."""
        self.__init__(self.problem, snapshot)

    def recompute_cost(self) -> float:
        """From-scratch graded cost (drift check; also resyncs ``cost``)."""
        self.cost = self.power.total_power_graded(
            self.loads, scale=self.scale, dead=self.dead
        )
        return self.cost

    def paths(self) -> List[Path]:
        """Materialise the current state as :class:`Path` objects.

        The internal move strings are valid by construction (validated on
        entry and only mutated by legal flips/resamples), so the trusted
        constructor is used with the maintained link arrays.
        """
        out = []
        for i, comm in enumerate(self.problem.comms):
            out.append(
                Path.from_validated(
                    self.mesh,
                    comm.src,
                    comm.snk,
                    "".join(self.moves[i]),
                    np.asarray(self.links[i], dtype=np.int64),
                )
            )
        return out

    def to_routing(self) -> Routing:
        """Materialise the current state as a single-path routing."""
        return Routing.single_path(self.problem, self.paths())

    def mutable_comms(self) -> List[int]:
        """Communications with more than one Manhattan path (flippable)."""
        return [
            i
            for i, comm in enumerate(self.problem.comms)
            if comm.delta_u > 0 and comm.delta_v > 0
        ]

    def comms_using(self, lid: int) -> List[int]:
        """Communications whose current path crosses link ``lid``."""
        return [ci for ci, lids in enumerate(self.links) if lid in lids]

    def most_loaded_links(self, k: int = 1) -> List[int]:
        """The ``k`` most loaded link ids, heaviest first (ties arbitrary)."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        k = min(k, int(np.count_nonzero(self.loads)))
        if k == 0:
            return []
        idx = np.argpartition(self.loads, -k)[-k:]
        return [int(i) for i in idx[np.argsort(self.loads[idx])[::-1]]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingState({self.problem.num_comms} comms, "
            f"cost={self.cost:.6g})"
        )


def initial_moves(problem: RoutingProblem, init: str) -> List[str]:
    """Move strings of the named registered heuristic's solution.

    ``init`` may be any registered heuristic name ("XY", "SG", "TB", ...);
    the heuristic is run on ``problem`` and its (single-path) routing is
    converted to move strings.
    """
    from repro.heuristics.base import get_heuristic  # local import: registry

    result = get_heuristic(init).solve(problem)
    routing = result.routing
    if not routing.is_single_path:
        raise InvalidParameterError(
            f"init heuristic {init!r} produced a split routing"
        )
    return [routing.paths(i)[0].moves for i in range(problem.num_comms)]
