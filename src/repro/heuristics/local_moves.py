"""Mutable 1-MP routing state with O(changed-links) cost updates.

The local-search metaheuristics (:mod:`repro.heuristics.annealing`,
:mod:`repro.heuristics.tabu`) explore the space of single-path Manhattan
routings through two elementary moves:

* **corner flip** — swap two adjacent, distinct moves ``…HV… ↔ …VH…`` of
  one communication's move string.  Adjacent transpositions generate every
  permutation of the H/V multiset, so corner flips alone connect the whole
  Manhattan path space of a communication; each flip replaces exactly two
  links of the path, giving an O(1)-sized load delta.
* **path resample** — replace one communication's path by a uniformly
  random Manhattan path (an O(length) delta).

:class:`RoutingState` is the problem-aware face of
:class:`repro.mesh.batch.LoadLedger` — the batched metaheuristic engine
that owns the link-load vector and the graded total power and keeps both
consistent under moves via O(1) flip-link arithmetic, a scalar fast path
for small graded deltas, and one-NumPy-pass grading of whole candidate
neighbourhoods.  All of it is float-for-float identical to evaluating
each move through :func:`repro.heuristics.base.graded_power_delta`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.mesh.batch import LoadLedger, flip_corners
from repro.mesh.moves import validate_moves
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError

#: historical name of :func:`repro.mesh.batch.flip_corners`
flip_positions = flip_corners

#: relative improvement threshold of :func:`descend` — flips whose gain is
#: numerical dust (within 1e-12 of the current cost scale) do not count,
#: mirroring XYI's acceptance rule
_DESCENT_REL_EPS = 1e-12


class RoutingState(LoadLedger):
    """A complete 1-MP routing under local-move mutation.

    Parameters
    ----------
    problem:
        The routing problem; one path per communication is maintained.
    moves_list:
        Initial move string per communication, in problem order.

    Attributes
    ----------
    loads:
        Link-load vector (Mb/s per link id), always consistent with the
        current paths.
    cost:
        Graded total power of ``loads`` (strict power when feasible; the
        graded overload penalty otherwise), maintained incrementally.
    """

    __slots__ = ("problem",)

    def __init__(self, problem: RoutingProblem, moves_list: Sequence[str]):
        self.problem = problem
        super().__init__(
            problem.mesh,
            problem.power,
            [(c.src, c.snk) for c in problem.comms],
            [c.rate for c in problem.comms],
            moves_list,
            kernel=problem.kernel(),
        )

    # ------------------------------------------------------------------
    # warm-start seeding
    # ------------------------------------------------------------------
    @classmethod
    def from_routing(
        cls, problem: RoutingProblem, routing: Routing
    ) -> "RoutingState":
        """Seed the state from an existing single-path routing.

        The routing may belong to a *different* problem instance — e.g.
        the pre-perturbation ancestor in a warm-start repair — as long as
        the communication endpoints match ``problem``'s in order.  Rates,
        the power model and the mesh's fault/derating profile are taken
        from ``problem``, so the returned state grades the old paths under
        the new conditions.
        """
        if not routing.is_single_path:
            raise InvalidParameterError(
                "warm-start seeding needs a single-path routing, got "
                f"max_split={routing.max_split}"
            )
        prev = routing.problem
        if prev.num_comms != problem.num_comms:
            raise InvalidParameterError(
                f"routing covers {prev.num_comms} communications, "
                f"problem has {problem.num_comms}"
            )
        moves: List[str] = []
        for i, comm in enumerate(problem.comms):
            pc = prev.comms[i]
            if pc.src != comm.src or pc.snk != comm.snk:
                raise InvalidParameterError(
                    f"communication {i} endpoints differ: routing has "
                    f"{pc.src}->{pc.snk}, problem has "
                    f"{comm.src}->{comm.snk}"
                )
            moves.append(routing.paths(i)[0].moves)
        return cls(problem, moves)

    def reroute_greedy(self, ci: int):
        """Fault-aware greedy re-insertion proposal for ``ci``.

        Wraps :meth:`~repro.mesh.batch.LoadLedger.greedy_reroute` with
        SG's live-reachability guard: on a faulty mesh the walk is
        constrained to hops that can still reach the sink over alive
        links whenever a live path exists (blocked communications fall
        back to the unconstrained walk and stay invalid, like SG).
        """
        bwd = None
        if self.mesh.link_mask is not None:
            dag = self.problem.dag(ci)
            if dag.has_live_path():
                bwd = dag.live_reachability()[1]
        return self.greedy_reroute(ci, bwd=bwd)

    # ------------------------------------------------------------------
    # validated public variant of the trusted resample evaluation
    # ------------------------------------------------------------------
    def resample_delta(self, ci: int, new_moves: str):
        """Deltas and cost change if ``ci`` switched to ``new_moves``.

        ``new_moves`` may come from anywhere, so it is validated; the
        metaheuristic inner loops use the trusted
        :meth:`~repro.mesh.batch.LoadLedger.resample_eval` (their
        proposals are legal by construction).
        """
        comm = self.problem.comms[ci]
        validate_moves(comm.src, comm.snk, new_moves)
        return self.resample_eval(ci, new_moves)

    def apply_resample(
        self,
        ci: int,
        new_moves: str,
        new_links: List[int],
        deltas,
        dcost: float,
    ) -> None:
        """Commit a path resample whose delta was already evaluated."""
        self.commit_resample(ci, new_moves, new_links, deltas, dcost)

    # ------------------------------------------------------------------
    # export / bookkeeping
    # ------------------------------------------------------------------
    def restore(self, snapshot: Sequence[str]) -> None:
        """Reset to a previously captured snapshot (full rebuild)."""
        self._load(snapshot)

    def paths(self) -> List[Path]:
        """Materialise the current state as :class:`Path` objects.

        The internal move strings are valid by construction (validated on
        entry and only mutated by legal flips/resamples), so the trusted
        constructor is used with the maintained link arrays.
        """
        out = []
        for i, comm in enumerate(self.problem.comms):
            out.append(
                Path.from_validated(
                    self.mesh,
                    comm.src,
                    comm.snk,
                    self.move_str(i),
                    np.asarray(self.links[i], dtype=np.int64),
                )
            )
        return out

    def to_routing(self) -> Routing:
        """Materialise the current state as a single-path routing."""
        return Routing.single_path(self.problem, self.paths())


def descend(
    state: RoutingState,
    comms: Optional[Iterable[int]] = None,
    *,
    max_flips: Optional[int] = None,
) -> int:
    """First-improvement corner-flip descent on ``state``, in place.

    Deterministic and RNG-free: the communications in ``comms`` (default
    all mutable ones; indices outside the mutable set are ignored) are
    swept in ascending order, each scanning its flippable corners left to
    right and committing every flip that improves the graded cost by more
    than the relative noise threshold — restarting that communication's
    corner scan after a commit — until a full sweep commits nothing.  All
    grading runs through the ledger's scalar fast path, so the trajectory
    is identical across the ``REPRO_NATIVE`` tiers.  This is the polish
    stage of warm-start repair: restricted to the repaired neighbourhood
    it converges in a handful of flips, and on an already locally optimal
    state it commits nothing at all.

    Returns the number of committed flips.
    """
    if comms is None:
        targets = state.mutable_comms()
    else:
        targets = sorted(set(comms) & set(state.mutable_comms()))
    if not targets:
        return 0
    if max_flips is None:
        # same safety cap shape as XYI: generous, never binding in practice
        mesh = state.mesh
        max_flips = 10 * mesh.p * mesh.q * len(targets)
    flips = 0
    flip_dcost = state.flip_dcost
    commit_flip = state.commit_flip
    improved = True
    while improved:
        improved = False
        for ci in targets:
            pos = state.flip_pos(ci)  # live index, mutated by commits
            k = 0
            while k < len(pos):
                j = pos[k]
                dcost = flip_dcost(ci, j)
                if dcost < -_DESCENT_REL_EPS * max(abs(state.cost), 1.0):
                    commit_flip(ci, j, dcost)
                    flips += 1
                    if flips >= max_flips:
                        return flips
                    improved = True
                    k = 0
                else:
                    k += 1
    return flips


def initial_moves(problem: RoutingProblem, init: str) -> List[str]:
    """Move strings of the named registered heuristic's solution.

    ``init`` may be any registered heuristic name ("XY", "SG", "TB", ...);
    the heuristic is run on ``problem`` and its (single-path) routing is
    converted to move strings.  The result is memoised on the problem
    (every registered heuristic is deterministic for a fixed default
    seed), so SA and TABU sharing an ``init`` on one instance pay for it
    once.
    """
    return list(problem.initial_moves(init))
