"""Mutable 1-MP routing state with O(changed-links) cost updates.

The local-search metaheuristics (:mod:`repro.heuristics.annealing`,
:mod:`repro.heuristics.tabu`) explore the space of single-path Manhattan
routings through two elementary moves:

* **corner flip** — swap two adjacent, distinct moves ``…HV… ↔ …VH…`` of
  one communication's move string.  Adjacent transpositions generate every
  permutation of the H/V multiset, so corner flips alone connect the whole
  Manhattan path space of a communication; each flip replaces exactly two
  links of the path, giving an O(1)-sized load delta.
* **path resample** — replace one communication's path by a uniformly
  random Manhattan path (an O(length) delta).

:class:`RoutingState` is the problem-aware face of
:class:`repro.mesh.batch.LoadLedger` — the batched metaheuristic engine
that owns the link-load vector and the graded total power and keeps both
consistent under moves via O(1) flip-link arithmetic, a scalar fast path
for small graded deltas, and one-NumPy-pass grading of whole candidate
neighbourhoods.  All of it is float-for-float identical to evaluating
each move through :func:`repro.heuristics.base.graded_power_delta`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.mesh.batch import LoadLedger, flip_corners
from repro.mesh.moves import validate_moves
from repro.mesh.paths import Path

#: historical name of :func:`repro.mesh.batch.flip_corners`
flip_positions = flip_corners


class RoutingState(LoadLedger):
    """A complete 1-MP routing under local-move mutation.

    Parameters
    ----------
    problem:
        The routing problem; one path per communication is maintained.
    moves_list:
        Initial move string per communication, in problem order.

    Attributes
    ----------
    loads:
        Link-load vector (Mb/s per link id), always consistent with the
        current paths.
    cost:
        Graded total power of ``loads`` (strict power when feasible; the
        graded overload penalty otherwise), maintained incrementally.
    """

    __slots__ = ("problem",)

    def __init__(self, problem: RoutingProblem, moves_list: Sequence[str]):
        self.problem = problem
        super().__init__(
            problem.mesh,
            problem.power,
            [(c.src, c.snk) for c in problem.comms],
            [c.rate for c in problem.comms],
            moves_list,
            kernel=problem.kernel(),
        )

    # ------------------------------------------------------------------
    # validated public variant of the trusted resample evaluation
    # ------------------------------------------------------------------
    def resample_delta(self, ci: int, new_moves: str):
        """Deltas and cost change if ``ci`` switched to ``new_moves``.

        ``new_moves`` may come from anywhere, so it is validated; the
        metaheuristic inner loops use the trusted
        :meth:`~repro.mesh.batch.LoadLedger.resample_eval` (their
        proposals are legal by construction).
        """
        comm = self.problem.comms[ci]
        validate_moves(comm.src, comm.snk, new_moves)
        return self.resample_eval(ci, new_moves)

    def apply_resample(
        self,
        ci: int,
        new_moves: str,
        new_links: List[int],
        deltas,
        dcost: float,
    ) -> None:
        """Commit a path resample whose delta was already evaluated."""
        self.commit_resample(ci, new_moves, new_links, deltas, dcost)

    # ------------------------------------------------------------------
    # export / bookkeeping
    # ------------------------------------------------------------------
    def restore(self, snapshot: Sequence[str]) -> None:
        """Reset to a previously captured snapshot (full rebuild)."""
        self._load(snapshot)

    def paths(self) -> List[Path]:
        """Materialise the current state as :class:`Path` objects.

        The internal move strings are valid by construction (validated on
        entry and only mutated by legal flips/resamples), so the trusted
        constructor is used with the maintained link arrays.
        """
        out = []
        for i, comm in enumerate(self.problem.comms):
            out.append(
                Path.from_validated(
                    self.mesh,
                    comm.src,
                    comm.snk,
                    self.move_str(i),
                    np.asarray(self.links[i], dtype=np.int64),
                )
            )
        return out

    def to_routing(self) -> Routing:
        """Materialise the current state as a single-path routing."""
        return Routing.single_path(self.problem, self.paths())


def initial_moves(problem: RoutingProblem, init: str) -> List[str]:
    """Move strings of the named registered heuristic's solution.

    ``init`` may be any registered heuristic name ("XY", "SG", "TB", ...);
    the heuristic is run on ``problem`` and its (single-path) routing is
    converted to move strings.  The result is memoised on the problem
    (every registered heuristic is deterministic for a fixed default
    seed), so SA and TABU sharing an ``init`` on one instance pay for it
    once.
    """
    return list(problem.initial_moves(init))
