"""The paper's routing heuristics (Section 5) and the XY baseline.

All heuristics are *single-path* (1-MP): the paper restricts to one route
per communication "because of the overhead incurred by routing a given
communication across several paths".  Multi-path solutions are produced by
the exact/relaxation solvers in :mod:`repro.optimal` instead.

========  ==============================================  =======
Name      Strategy                                        Section
========  ==============================================  =======
``XY``    horizontal first, then vertical                 §1
``YX``    vertical first, then horizontal                 (companion baseline)
``SG``    hop-by-hop greedy on least-loaded next link     §5.1
``IG``    greedy guided by ideal-spread pre-routing       §5.2
``TB``    best path among all ≤ 2-bend candidates         §5.3
``XYI``   local corner-relocation descent from XY         §5.4
``PR``    prune the all-paths spread link by link         §5.5
``BEST``  virtual best of all of the above                §6
``SA``    simulated annealing on corner flips             (extension)
``GA``    genetic search, heuristic-seeded population     (extension, cf. [18])
``TABU``  hot-link-guided tabu search with aspiration     (extension)
========  ==============================================  =======

The three metaheuristics are extensions beyond the paper; they share the
incremental-cost :class:`~repro.heuristics.local_moves.RoutingState`
machinery and are benchmarked against the paper's heuristics by the
``meta_heuristics`` campaign experiment (``repro campaign run
meta_heuristics``).
"""

from repro.heuristics.base import (
    Heuristic,
    HeuristicResult,
    available_heuristics,
    get_heuristic,
    register_heuristic,
)
from repro.heuristics.xy import XYRouting, YXRouting
from repro.heuristics.greedy import SimpleGreedy
from repro.heuristics.improved_greedy import ImprovedGreedy
from repro.heuristics.two_bend import TwoBend
from repro.heuristics.xy_improver import XYImprover
from repro.heuristics.path_remover import PathRemover
from repro.heuristics.best import BestOf, best_of_results, PAPER_HEURISTICS
from repro.heuristics.local_moves import (
    RoutingState,
    descend,
    flip_positions,
    initial_moves,
)
from repro.heuristics.annealing import SimulatedAnnealing
from repro.heuristics.genetic import GeneticRouting
from repro.heuristics.tabu import TabuRouting

#: the extension metaheuristics, by registry name
META_HEURISTICS = ("SA", "GA", "TABU")

__all__ = [
    "Heuristic",
    "HeuristicResult",
    "available_heuristics",
    "get_heuristic",
    "register_heuristic",
    "XYRouting",
    "YXRouting",
    "SimpleGreedy",
    "ImprovedGreedy",
    "TwoBend",
    "XYImprover",
    "PathRemover",
    "BestOf",
    "best_of_results",
    "PAPER_HEURISTICS",
    "RoutingState",
    "descend",
    "flip_positions",
    "initial_moves",
    "SimulatedAnnealing",
    "GeneticRouting",
    "TabuRouting",
    "META_HEURISTICS",
]
