"""repro — Power-aware Manhattan routing on chip multiprocessors.

A complete reproduction of Benoit, Melhem, Renaud-Goud & Robert,
*Power-aware Manhattan routing on chip multiprocessors* (INRIA RR-7752 /
IPDPS 2012).

Package map
-----------
``repro.mesh``
    The CMP platform: 2-D mesh topology, diagonal geometry, Manhattan
    paths and per-communication routing DAGs.
``repro.core``
    Power model (continuous/discrete frequencies), communications,
    routings (single- and multi-path), validity and power evaluation.
``repro.heuristics``
    XY baseline and the paper's five 1-MP heuristics (SG, IG, TB, XYI,
    PR), plus the virtual BEST.
``repro.theory``
    Section 4: path counting, diagonal lower bounds, the Theorem 1 /
    Lemma 2 worst-case constructions, the Theorem 3 NP-reduction gadget.
``repro.optimal``
    Exact 1-MP solvers (branch & bound, MILP) and the Frank–Wolfe
    continuous max-MP relaxation with certified lower bounds.
``repro.workloads``
    Random/length-targeted workloads of Section 6, classic NoC patterns,
    task-graph applications mapped onto the chip.
``repro.experiments``
    The Section 6 Monte-Carlo harness: one entry point per figure panel
    and the §6.4 summary statistics.
``repro.scenarios``
    The scenario engine: declarative fault/heterogeneity-aware platform
    specs, the named-scenario registry and its runner (the golden
    regression corpus under ``tests/golden/`` pins every scenario).
``repro.noc``
    Flit-level wormhole simulator and channel-dependency-graph deadlock
    analysis — the deployment assumptions the paper delegates to [5]/[3].

Quickstart
----------
>>> from repro import Mesh, PowerModel, RoutingProblem
>>> from repro.workloads import uniform_random_workload
>>> from repro.heuristics import BestOf
>>> mesh = Mesh(8, 8)
>>> comms = uniform_random_workload(mesh, 20, 100.0, 2500.0, rng=42)
>>> problem = RoutingProblem(mesh, PowerModel.kim_horowitz(), comms)
>>> result = BestOf().solve(problem)
>>> result.valid
True
"""

from repro.core import (
    Communication,
    PowerModel,
    Routing,
    RoutedFlow,
    RoutingProblem,
    RoutingReport,
    RoutingRule,
    evaluate_routing,
)
from repro.mesh import CommDag, Mesh, Path
from repro.version import __version__

__all__ = [
    "Mesh",
    "Path",
    "CommDag",
    "PowerModel",
    "Communication",
    "RoutingProblem",
    "Routing",
    "RoutedFlow",
    "RoutingReport",
    "RoutingRule",
    "evaluate_routing",
    "__version__",
]
