"""Eager-build entry point: ``python -m repro.native.build``.

CI (and anyone who wants the build failure loudly, rather than the
silent ``auto`` fallback) runs this once to compile the extension into
the installed package before exercising ``REPRO_NATIVE=1``.
"""

from __future__ import annotations

import sys

from repro.native import build_native


def main() -> int:
    dest = build_native(verbose=True)
    print(f"built {dest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
