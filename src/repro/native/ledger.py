"""Flat C mirror of a :class:`~repro.mesh.batch.LoadLedger`.

:class:`NativeLedger` packs a ledger's maintained state — move
characters, link ids, prefix V-counts, sorted flip corners, per-link
loads and graded-power cache, the link→communications index — into
contiguous numpy arrays and hands zero-copy pointers to the ``rledger``
struct of the compiled extension.  From then on the *C kernels own the
mirror*: flips, resamples and the SA/TABU drivers mutate the flat arrays
directly, with float operations replicating the Python ledger bit for
bit (``tests/test_native.py`` fuzzes the equivalence state-field by
state-field).

The mirror is built per metaheuristic run (O(total hops), microseconds)
from whatever state the Python ledger is in; the Python ledger itself is
left untouched and stale afterwards — callers read results back through
:meth:`snapshot` / :meth:`decode_moves` and rebuild Python state from
move strings.

Only scalar-graded models (discrete frequency tables) have a native
tier, mirroring the ledger's own scalar fast path; callers gate on
``ledger._scalar`` before constructing the mirror.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.validation import InvalidParameterError

#: rledger error codes (keep in sync with _builder.C_SOURCE)
ERR_NEGLOAD = 1
ERR_RNG = 2
ERR_STATE = 3


class NativeLedger:
    """Zero-copy ``rledger`` mirror of a Python :class:`LoadLedger`."""

    def __init__(self, ledger, *, link_comms: bool = False):
        from repro.native import native_module

        module = native_module()
        if module is None:  # pragma: no cover - callers gate on the tier
            raise RuntimeError("native module unavailable")
        if not ledger._scalar:
            raise InvalidParameterError(
                "the native ledger tier needs a discrete (scalar-graded) "
                "power model"
            )
        ffi = module.ffi
        self._ffi = ffi
        self._lib = module.lib
        kernel = ledger.kernel
        nc = kernel.num_comms
        num_links = ledger.mesh.num_links
        starts = np.ascontiguousarray(kernel.starts, dtype=np.int64)
        lengths = np.ascontiguousarray(kernel.lengths, dtype=np.int64)
        total = int(lengths.sum())
        ar = np.arange(nc, dtype=np.int64)
        cstarts = starts + ar
        pstarts = starts - ar
        self.num_comms = nc
        self.total_len = total
        self._starts = starts
        self._lengths = lengths

        moves = np.frombuffer(
            "".join(ledger._mstr).encode("ascii"), dtype=np.uint8
        ).copy()
        links = np.empty(total, dtype=np.int64)
        cumv = np.empty(total + nc, dtype=np.int64)
        pos = np.zeros(max(total - nc, 1), dtype=np.int64)
        pos_len = np.zeros(nc, dtype=np.int64)
        for i in range(nc):
            lo = int(starts[i])
            n = int(lengths[i])
            links[lo : lo + n] = ledger.links[i]
            cumv[lo + i : lo + i + n + 1] = ledger._cumv[i]
            p = ledger._pos[i]
            pos_len[i] = len(p)
            if p:
                pos[lo - i : lo - i + len(p)] = p

        self.loads = np.array(ledger._loads_l, dtype=np.float64)
        plist = np.array(ledger._plist, dtype=np.float64)
        rates = np.array(ledger._rates_l, dtype=np.float64)
        src_u = np.array(ledger._src_u, dtype=np.int64)
        src_v = np.array(ledger._src_v, dtype=np.int64)
        su = np.array(ledger._su, dtype=np.int64)
        sv = np.array(ledger._sv, dtype=np.int64)
        vbase = np.array(ledger._vbase, dtype=np.int64)
        hbase = np.array(ledger._hbase, dtype=np.int64)
        freqs = np.array(ledger._freqs_l, dtype=np.float64)
        lvl = np.array(ledger._lvl_l, dtype=np.float64)
        scale = (
            None
            if ledger._scale_l is None
            else np.array(ledger._scale_l, dtype=np.float64)
        )
        dead = (
            None
            if ledger._dead_l is None
            else np.array(ledger._dead_l, dtype=np.uint8)
        )

        if link_comms:
            lc_cap = nc
            lc = np.zeros((num_links, max(lc_cap, 1)), dtype=np.int32)
            lc_len = np.zeros(num_links, dtype=np.int32)
            for lid, cs in enumerate(ledger._link_comms):
                if cs:
                    srt = sorted(cs)
                    lc_len[lid] = len(srt)
                    lc[lid, : len(srt)] = srt
        else:
            lc_cap = 0
            lc = lc_len = None

        max_len = int(lengths.max()) if nc else 1
        scr_links = np.zeros(max_len, dtype=np.int64)
        scr_dlid = np.zeros(2 * max_len, dtype=np.int64)
        scr_dval = np.zeros(2 * max_len, dtype=np.float64)
        scr_alive = np.zeros(2 * max_len, dtype=np.uint8)
        scr_clid = np.zeros(2 * max_len, dtype=np.int64)
        scr_cval = np.zeros(2 * max_len, dtype=np.float64)
        scr_news = np.zeros(2 * max_len, dtype=np.float64)
        scr_olds = np.zeros(2 * max_len, dtype=np.float64)

        # every array referenced by the struct must outlive it
        self._keep = [
            starts, lengths, cstarts, pstarts, moves, links, cumv, pos,
            pos_len, self.loads, plist, rates, src_u, src_v, su, sv,
            vbase, hbase, freqs, lvl, scale, dead, lc, lc_len, scr_links,
            scr_dlid, scr_dval, scr_alive, scr_clid, scr_cval, scr_news,
            scr_olds,
        ]
        self._moves = moves

        def ptr(ctype: str, arr: Optional[np.ndarray]):
            if arr is None:
                return ffi.NULL
            return ffi.cast(ctype, arr.ctypes.data)

        c = ffi.new("rledger *")
        c.num_comms = nc
        c.num_links = num_links
        c.q = ledger._q
        c.total_len = total
        c.lc_cap = lc_cap
        c.starts = ptr("const int64_t *", starts)
        c.lengths = ptr("const int64_t *", lengths)
        c.cstarts = ptr("const int64_t *", cstarts)
        c.pstarts = ptr("const int64_t *", pstarts)
        c.src_u = ptr("const int64_t *", src_u)
        c.src_v = ptr("const int64_t *", src_v)
        c.su = ptr("const int64_t *", su)
        c.sv = ptr("const int64_t *", sv)
        c.vbase = ptr("const int64_t *", vbase)
        c.hbase = ptr("const int64_t *", hbase)
        c.rates = ptr("const double *", rates)
        c.moves = ptr("uint8_t *", moves)
        c.links = ptr("int64_t *", links)
        c.cumv = ptr("int64_t *", cumv)
        c.pos = ptr("int64_t *", pos)
        c.pos_len = ptr("int64_t *", pos_len)
        c.lc = ptr("int32_t *", lc)
        c.lc_len = ptr("int32_t *", lc_len)
        c.loads = ptr("double *", self.loads)
        c.plist = ptr("double *", plist)
        c.cost = float(ledger.cost)
        c.freqs = ptr("const double *", freqs)
        c.lvl = ptr("const double *", lvl)
        c.scale = ptr("const double *", scale)
        c.dead = ptr("const uint8_t *", dead)
        c.pen0 = ledger._pen0
        c.bw = ledger._bw
        c.thresh = ledger._thresh
        c.scr_links = ptr("int64_t *", scr_links)
        c.scr_dlid = ptr("int64_t *", scr_dlid)
        c.scr_dval = ptr("double *", scr_dval)
        c.scr_alive = ptr("uint8_t *", scr_alive)
        c.scr_clid = ptr("int64_t *", scr_clid)
        c.scr_cval = ptr("double *", scr_cval)
        c.scr_news = ptr("double *", scr_news)
        c.scr_olds = ptr("double *", scr_olds)
        c.err = 0
        self._c = c
        # exposed for equivalence tests
        self._links = links
        self._pos = pos
        self._pos_len = pos_len
        self._plist = plist
        self._cumv = cumv
        self._lc = lc
        self._lc_len = lc_len

    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        return self._c.cost

    def raise_err(self, stream=None) -> None:
        """Translate a pending C error code into the Python exception."""
        code = self._c.err
        self._c.err = 0
        if code == ERR_NEGLOAD:
            raise InvalidParameterError(
                "load delta would drive a link negative"
            )
        if code == ERR_RNG and stream is not None:
            stream.check_err()
        raise RuntimeError(  # pragma: no cover - internal invariant
            f"native ledger error (code {code})"
        )

    # ------------------------------------------------------------------
    def move_str(self, ci: int) -> str:
        lo = int(self._starts[ci])
        n = int(self._lengths[ci])
        return self._moves[lo : lo + n].tobytes().decode("ascii")

    def snapshot(self) -> List[str]:
        """Current move strings, one per communication."""
        return self.decode_moves(self._moves)

    def moves_copy(self) -> np.ndarray:
        """Writable flat copy of the current move characters."""
        return self._moves.copy()

    def decode_moves(self, flat: np.ndarray) -> List[str]:
        """Per-communication strings of a flat move-character buffer."""
        blob = flat.tobytes().decode("ascii")
        out = []
        for i in range(self.num_comms):
            lo = int(self._starts[i])
            out.append(blob[lo : lo + int(self._lengths[i])])
        return out

    def most_loaded_links(self, k: int) -> List[int]:
        """``LoadLedger.most_loaded_links`` on the mirrored load vector."""
        k = min(k, int(np.count_nonzero(self.loads)))
        if k == 0:
            return []
        idx = np.argpartition(self.loads, -k)[-k:]
        return [int(i) for i in idx[np.argsort(self.loads[idx])[::-1]]]

    # thin kernel wrappers (fuzz-test surface) -------------------------
    def flip_dcost(self, ci: int, j: int) -> float:
        d = self._lib.repro_flip_dcost(self._c, ci, j)
        if self._c.err:
            self.raise_err()
        return d

    def commit_flip(self, ci: int, j: int, dcost: float) -> None:
        self._lib.repro_commit_flip(self._c, ci, j, dcost)
        if self._c.err:
            self.raise_err()

    def resample_eval(self, ci: int, new_moves: str) -> float:
        b = new_moves.encode("ascii")
        d = self._lib.repro_resample_eval(self._c, ci, b, len(b), 0)
        if self._c.err:
            self.raise_err()
        return d

    def commit_resample(self, ci: int, new_moves: str) -> float:
        b = new_moves.encode("ascii")
        d = self._lib.repro_resample_eval(self._c, ci, b, len(b), 1)
        if self._c.err:
            self.raise_err()
        return d
