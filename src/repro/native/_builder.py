"""cffi build recipe for the native fast-path kernels.

Out-of-line API mode: ``ffibuilder`` below is consumed either by the
conditional ``cffi_modules`` hook in ``setup.py`` (install-time build when
cffi is available in the build environment) or by
:func:`repro.native.build_native` (first-use build into the package
directory).  Importing this module only *parses* the recipe — nothing is
compiled until one of those entry points runs it, so environments without
cffi or a compiler never pay (or fail) at import time.

The C source replicates the Python fast paths **operation for operation**:

* ``rstream`` — the :class:`repro.utils.rng.StreamReplica` word-consumption
  discipline (raw-64 blocks, buffered 32-bit half-words, Lemire bounded
  draws, masked-rejection intervals) over raw PCG64 words that stay drawn
  *in Python* through the ``_repro_stream_refill`` callback, preserving the
  generator draw-order contract;
* ``rledger`` — the :class:`repro.mesh.batch.LoadLedger` scalar tier:
  O(1) corner-flip geometry, the graded-power scalar replica, NumPy's
  pairwise summation (sequential < 8, the 8-accumulator 128-block, the
  halving recursion above it), ordered path-swap deltas, and the
  sorted flip-corner / link→comms index maintenance;
* ``rsa`` / ``repro_tabu_candidates`` — the SA chain loop and the TABU
  candidate machinery of :mod:`repro.heuristics`, float-for-float
  (Metropolis clamp, cooling order, stable candidate sort);
* ``rnoc`` — the :class:`repro.noc.engine.ArrayFlitSimulator` cycle loop
  (ejection before traversal, ascending-link / RR-VC / flow-order
  arbitration, budget accrual and idle cap, wormhole ownership, deadlock
  window) over flat numpy state passed by pointer.

``-ffp-contract=off`` is load-bearing: gcc's default ``-ffp-contract=fast``
would fuse ``a * b + c`` into FMAs and break the bit-identity contract the
probe corpora pin.  See ``docs/performance.md`` §7.
"""

from __future__ import annotations

from cffi import FFI

# struct layouts shared verbatim between the cdef (so Python can allocate
# and fill them) and the C source (which cffi does NOT copy the cdef into)
STRUCTS = r"""
typedef struct {
    uint64_t *buf;
    int64_t cap, i, n;
    int32_t has32, err;
    uint32_t u32, _pad;
    uint64_t key;
} rstream;

typedef struct {
    int64_t num_comms, num_links, q, total_len, lc_cap;
    const int64_t *starts;
    const int64_t *lengths;
    const int64_t *cstarts;
    const int64_t *pstarts;
    const int64_t *src_u;
    const int64_t *src_v;
    const int64_t *su;
    const int64_t *sv;
    const int64_t *vbase;
    const int64_t *hbase;
    const double *rates;
    uint8_t *moves;
    int64_t *links;
    int64_t *cumv;
    int64_t *pos;
    int64_t *pos_len;
    int32_t *lc;
    int32_t *lc_len;
    double *loads;
    double *plist;
    double cost;
    const double *freqs;
    const double *lvl;
    const double *scale;
    const uint8_t *dead;
    double pen0, bw, thresh;
    int64_t *scr_links;
    int64_t *scr_dlid;
    double *scr_dval;
    uint8_t *scr_alive;
    int64_t *scr_clid;
    double *scr_cval;
    double *scr_news;
    double *scr_olds;
    int32_t err, _pad;
} rledger;

typedef struct {
    rledger *L;
    rstream *st;
    const int64_t *movable;
    int64_t n_mov, iterations, it;
    double temp, cooling, resample_prob;
    double best_cost;
    uint8_t *best_moves;
    int64_t pending_ci;
    int32_t awaiting, _pad;
} rsa;

typedef struct {
    int64_t nf, nvc, bf, pf, L, window, cycles, warmup;
    int32_t collect, _pad;
    const int64_t *arrivals;
    const int64_t *pkt_ptr;
    const int64_t *pkt_times;
    const int64_t *first_cl;
    const int64_t *next_of;
    const int64_t *feeder_ptr;
    const int64_t *feeder_fi;
    const int64_t *feeder_up;
    const double *speed_l;
    const double *cap_l;
    int64_t *bflow;
    int64_t *bpk;
    int64_t *bk;
    int64_t *bt;
    int64_t *bnext;
    int64_t *hd;
    int64_t *cnt;
    int64_t *ow_f;
    int64_t *ow_p;
    int64_t *iq_head;
    int64_t *iq_k;
    int64_t *iq_n;
    double *budget;
    int64_t *rr;
    int64_t *feed;
    int64_t *occ;
    int64_t *fwd;
    int64_t *injected;
    int64_t *delivered;
    int64_t *delivered_pkts;
    double *latency_sum;
    int64_t *rec_fi;
    int64_t *rec_inj;
    int64_t *rec_done;
    int64_t rec_cap, rec_n;
    int64_t total_delivered, t_final;
    int32_t deadlocked, err;
} rnoc;
"""

CDEF = STRUCTS + r"""
double repro_stream_random(rstream *s);
int64_t repro_stream_integers(rstream *s, int64_t n);
int64_t repro_stream_interval(rstream *s, uint64_t mx);

double repro_flip_dcost(rledger *L, int64_t ci, int64_t j);
int64_t repro_flip_dcost_many(rledger **ls, const int64_t *li,
                              const int64_t *ci, const int64_t *cj,
                              int64_t n, double *out);
void repro_commit_flip(rledger *L, int64_t ci, int64_t j, double dcost);
double repro_resample_eval(rledger *L, int64_t ci, const uint8_t *mv,
                           int64_t plen, int32_t commit);
double repro_pairwise_sum(const double *a, int64_t n);

int repro_sa_run(rsa *sa, const uint8_t *proposal, int64_t plen);
int64_t repro_tabu_candidates(rledger *L, rstream *st,
                              const int64_t *hot, int64_t n_hot,
                              const int64_t *movable, int64_t n_mov,
                              int64_t neighborhood,
                              int64_t *cci, int64_t *cj, double *dcosts,
                              int64_t *order, uint8_t *seen);

int repro_noc_run(rnoc *R);

extern "Python" int _repro_stream_refill(rstream *);
"""

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>
#include <math.h>
""" + STRUCTS + r"""
/* extern "Python" callback — cffi emits the definition after this source */
static int _repro_stream_refill(rstream *);

/* error codes mirrored by repro.native (keep in sync) */
#define RERR_NEGLOAD 1
#define RERR_RNG     2
#define RERR_STATE   3

/* ================================================================== */
/* rstream: StreamReplica word-consumption discipline over raw PCG64   */
/* words refilled from Python (the RNG itself never leaves Python).    */
/* ================================================================== */

static uint64_t rs_raw64(rstream *s) {
    if (s->i >= s->n) {
        if (_repro_stream_refill(s) != 0) {
            s->err = RERR_RNG;
            return 0;
        }
    }
    return s->buf[s->i++];
}

/* numpy's next_uint32 on a 64-bit generator: low half first, high half
   buffered for the next 32-bit draw */
static uint32_t rs_raw32(rstream *s) {
    uint64_t v;
    if (s->has32) {
        s->has32 = 0;
        return s->u32;
    }
    v = rs_raw64(s);
    s->has32 = 1;
    s->u32 = (uint32_t)(v >> 32);
    return (uint32_t)(v & 0xFFFFFFFFu);
}

/* Generator.random(): (word >> 11) * 2**-53, same constant as numpy */
static double rs_random(rstream *s) {
    return (double)(rs_raw64(s) >> 11) * 1.1102230246251565e-16;
}

/* scalar Generator.integers(n) for int64 dtype: Lemire rejection,
   32-bit kernel (half-words) for bounds below 2**32 */
static int64_t rs_integers(rstream *s, int64_t n) {
    uint64_t rng_ = (uint64_t)(n - 1);
    if (n <= 1)
        return 0;
    if (rng_ <= 0xFFFFFFFFu) {
        uint64_t rng_excl = rng_ + 1;
        uint64_t m = (uint64_t)rs_raw32(s) * rng_excl;
        uint64_t leftover = m & 0xFFFFFFFFu;
        if (leftover < rng_excl) {
            uint64_t threshold = (0xFFFFFFFFu - rng_) % rng_excl;
            while (leftover < threshold) {
                m = (uint64_t)rs_raw32(s) * rng_excl;
                leftover = m & 0xFFFFFFFFu;
            }
        }
        return (int64_t)(m >> 32);
    }
    if (rng_ == 0xFFFFFFFFFFFFFFFFULL)
        return (int64_t)rs_raw64(s);
    {
        uint64_t rng_excl = rng_ + 1;
        __uint128_t m = (__uint128_t)rs_raw64(s) * rng_excl;
        uint64_t leftover = (uint64_t)m;
        if (leftover < rng_excl) {
            uint64_t threshold =
                (0xFFFFFFFFFFFFFFFFULL - rng_) % rng_excl;
            while (leftover < threshold) {
                m = (__uint128_t)rs_raw64(s) * rng_excl;
                leftover = (uint64_t)m;
            }
        }
        return (int64_t)(uint64_t)(m >> 64);
    }
}

/* numpy's masked-rejection random_interval (Fisher-Yates kernel) */
static int64_t rs_interval(rstream *s, uint64_t mx) {
    uint64_t mask = mx;
    if (mx == 0)
        return 0;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    if (mx <= 0xFFFFFFFFu) {
        for (;;) {
            uint64_t v = (uint64_t)rs_raw32(s) & mask;
            if (v <= mx)
                return (int64_t)v;
            if (s->err)
                return 0;
        }
    }
    for (;;) {
        uint64_t v = rs_raw64(s) & mask;
        if (v <= mx)
            return (int64_t)v;
        if (s->err)
            return 0;
    }
}

double repro_stream_random(rstream *s) { return rs_random(s); }
int64_t repro_stream_integers(rstream *s, int64_t n) {
    return rs_integers(s, n);
}
int64_t repro_stream_interval(rstream *s, uint64_t mx) {
    return rs_interval(s, mx);
}

/* ================================================================== */
/* pairwise summation: np.sum over a contiguous double vector, bit for */
/* bit — sequential < 8, the unrolled 8-accumulator block to 128, the  */
/* halving recursion (n2 = n/2 rounded down to a multiple of 8) above. */
/* ================================================================== */

static double pairwise_sum(const double *a, int64_t n) {
    if (n < 8) {
        double r;
        int64_t i;
        if (n == 0)
            return 0.0;
        r = a[0];
        for (i = 1; i < n; i++)
            r += a[i];
        return r;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        double res;
        int64_t i = 8, stop = n - (n % 8);
        while (i < stop) {
            r0 += a[i];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
            i += 8;
        }
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        while (i < n) {
            res += a[i];
            i += 1;
        }
        return res;
    }
    {
        int64_t n2 = n / 2;
        n2 -= n2 % 8;
        return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
    }
}

double repro_pairwise_sum(const double *a, int64_t n) {
    return pairwise_sum(a, n);
}

/* ================================================================== */
/* rledger: the LoadLedger scalar tier                                 */
/* ================================================================== */

#define MV_V 'V'

/* _link_power_scalar: one link's graded power, same floats as the
   link_power_graded element */
static double lp_scalar(const rledger *L, double load, int64_t lid) {
    if (!(load > 0.0))
        return 0.0;
    if (L->dead != NULL && L->dead[lid])
        return L->pen0 * (1.0 + load / L->bw);
    if (load > L->thresh)
        return L->pen0 * (1.0 + (load - L->bw) / L->bw);
    {
        double capped = (load < L->bw) ? load : L->bw;
        const double *freqs = L->freqs;
        int64_t k = 0;
        double base;
        while (freqs[k] < capped)
            k++;
        base = L->lvl[k];
        if (L->scale != NULL)
            base = base * L->scale[lid];
        return base;
    }
}

/* O(1) corner-flip geometry (replacement links of hops j, j+1) */
static void flip_new_links(const rledger *L, int64_t ci, int64_t j,
                           int64_t *n1, int64_t *n2) {
    const uint8_t *mv = L->moves + L->starts[ci];
    int64_t cv = L->cumv[L->cstarts[ci] + j];
    int64_t su = L->su[ci], sv = L->sv[ci];
    int64_t u = L->src_u[ci] + su * cv;
    int64_t v = L->src_v[ci] + sv * (j - cv);
    int64_t q = L->q;
    uint8_t a = mv[j], b = mv[j + 1];
    if (b == MV_V) {
        *n1 = L->vbase[ci] + u * q + v;
        u += su;
    } else {
        *n1 = L->hbase[ci] + u * (q - 1) + v;
        v += sv;
    }
    if (a == MV_V)
        *n2 = L->vbase[ci] + u * q + v;
    else
        *n2 = L->hbase[ci] + u * (q - 1) + v;
}

double repro_flip_dcost(rledger *L, int64_t ci, int64_t j) {
    const int64_t *lks = L->links + L->starts[ci];
    int64_t o1 = lks[j], o2 = lks[j + 1], n1, n2;
    double r = L->rates[ci];
    double w1, w2, w3, w4, p1, p2, p3, p4;
    flip_new_links(L, ci, j, &n1, &n2);
    w1 = L->loads[o1] - r;
    w2 = L->loads[o2] - r;
    if (w1 < -1e-9 || w2 < -1e-9) {
        L->err = RERR_NEGLOAD;
        return 0.0;
    }
    if (w1 < 0.0)
        w1 = 0.0;
    if (w2 < 0.0)
        w2 = 0.0;
    w3 = L->loads[n1] + r;
    w4 = L->loads[n2] + r;
    p1 = lp_scalar(L, w1, o1);
    p2 = lp_scalar(L, w2, o2);
    p3 = lp_scalar(L, w3, n1);
    p4 = lp_scalar(L, w4, n2);
    return (p1 + p2 + p3 + p4) -
           (L->plist[o1] + L->plist[o2] + L->plist[n1] + L->plist[n2]);
}

/* batched flip grading across a batch of ledgers: candidate k lives on
 * ledger ls[li[k]].  One C call amortises the per-candidate FFI overhead
 * over the whole cross-instance candidate set; each delta is the plain
 * repro_flip_dcost result, bit for bit.  Returns -1 on success, else the
 * index of the first failing candidate (its ledger carries the err code).
 */
int64_t repro_flip_dcost_many(rledger **ls, const int64_t *li,
                              const int64_t *ci, const int64_t *cj,
                              int64_t n, double *out) {
    int64_t k;
    for (k = 0; k < n; k++) {
        rledger *L = ls[li[k]];
        out[k] = repro_flip_dcost(L, ci[k], cj[k]);
        if (L->err)
            return k;
    }
    return -1;
}

/* link→comms index: sorted insert / remove (optional: lc == NULL skips) */
static void lc_add(rledger *L, int64_t lid, int64_t ci) {
    int32_t *row;
    int32_t n, idx;
    if (L->lc == NULL)
        return;
    row = L->lc + lid * L->lc_cap;
    n = L->lc_len[lid];
    if ((int64_t)n >= L->lc_cap) {
        L->err = RERR_STATE;
        return;
    }
    idx = 0;
    while (idx < n && row[idx] < (int32_t)ci)
        idx++;
    if (idx < n && row[idx] == (int32_t)ci)
        return;
    memmove(row + idx + 1, row + idx, (size_t)(n - idx) * sizeof(int32_t));
    row[idx] = (int32_t)ci;
    L->lc_len[lid] = n + 1;
}

static void lc_discard(rledger *L, int64_t lid, int64_t ci) {
    int32_t *row;
    int32_t n, idx;
    if (L->lc == NULL)
        return;
    row = L->lc + lid * L->lc_cap;
    n = L->lc_len[lid];
    idx = 0;
    while (idx < n && row[idx] != (int32_t)ci)
        idx++;
    if (idx == n)
        return;
    memmove(row + idx, row + idx + 1,
            (size_t)(n - idx - 1) * sizeof(int32_t));
    L->lc_len[lid] = n - 1;
}

/* _toggle_corner: resync corner k's membership in the sorted pos index */
static void toggle_corner(rledger *L, int64_t ci, int64_t k) {
    const uint8_t *mv = L->moves + L->starts[ci];
    int64_t *pos = L->pos + L->pstarts[ci];
    int64_t n = L->pos_len[ci];
    int64_t idx = 0;
    int present;
    while (idx < n && pos[idx] < k)
        idx++;
    present = (idx < n && pos[idx] == k);
    if (mv[k] != mv[k + 1]) {
        if (!present) {
            memmove(pos + idx + 1, pos + idx,
                    (size_t)(n - idx) * sizeof(int64_t));
            pos[idx] = k;
            L->pos_len[ci] = n + 1;
        }
    } else if (present) {
        memmove(pos + idx, pos + idx + 1,
                (size_t)(n - idx - 1) * sizeof(int64_t));
        L->pos_len[ci] = n - 1;
    }
}

/* _bump: one link's load change, clamped, with the power cache refresh */
static void bump(rledger *L, int64_t lid, double d) {
    double val = L->loads[lid] + d;
    if (val < 0.0)
        val = 0.0;
    L->loads[lid] = val;
    L->plist[lid] = lp_scalar(L, val, lid);
}

void repro_commit_flip(rledger *L, int64_t ci, int64_t j, double dcost) {
    uint8_t *mv = L->moves + L->starts[ci];
    int64_t *lks = L->links + L->starts[ci];
    int64_t *cum = L->cumv + L->cstarts[ci];
    int64_t len = L->lengths[ci];
    int64_t o1 = lks[j], o2 = lks[j + 1], n1, n2;
    double r = L->rates[ci];
    uint8_t tmp;
    flip_new_links(L, ci, j, &n1, &n2);
    tmp = mv[j];
    mv[j] = mv[j + 1];
    mv[j + 1] = tmp;
    lks[j] = n1;
    lks[j + 1] = n2;
    lc_discard(L, o1, ci);
    lc_discard(L, o2, ci);
    lc_add(L, n1, ci);
    lc_add(L, n2, ci);
    cum[j + 1] = cum[j] + ((mv[j] == MV_V) ? 1 : 0);
    if (j > 0)
        toggle_corner(L, ci, j - 1);
    if (j + 2 < len)
        toggle_corner(L, ci, j + 1);
    bump(L, o1, -r);
    bump(L, o2, -r);
    bump(L, n1, r);
    bump(L, n2, r);
    L->cost += dcost;
}

/* _trusted_links: link ids of a trusted move string */
static void trusted_links(const rledger *L, int64_t ci, const uint8_t *mv,
                          int64_t len, int64_t *out) {
    int64_t u = L->src_u[ci], v = L->src_v[ci];
    int64_t su = L->su[ci], sv = L->sv[ci];
    int64_t vb = L->vbase[ci], hb = L->hbase[ci];
    int64_t q = L->q, jj;
    for (jj = 0; jj < len; jj++) {
        if (mv[jj] == MV_V) {
            out[jj] = vb + u * q + v;
            u += su;
        } else {
            out[jj] = hb + u * (q - 1) + v;
            v += sv;
        }
    }
}

/* path_swap_deltas: ordered dict semantics — in-place updates keep the
   entry's position, deletions remove it from the order, re-insertions
   append.  Entries carry an alive flag; compaction happens at grading. */
static int64_t swap_deltas(rledger *L, const int64_t *oldl, int64_t n_old,
                           const int64_t *newl, int64_t n_new, double rate) {
    int64_t *dlid = L->scr_dlid;
    double *dval = L->scr_dval;
    uint8_t *alive = L->scr_alive;
    int64_t n = 0, i, k;
    for (i = 0; i < n_old; i++) {
        int64_t lid = oldl[i];
        for (k = 0; k < n; k++)
            if (alive[k] && dlid[k] == lid)
                break;
        if (k < n) {
            dval[k] = dval[k] - rate;
        } else {
            dlid[n] = lid;
            dval[n] = 0.0 - rate;
            alive[n] = 1;
            n++;
        }
    }
    for (i = 0; i < n_new; i++) {
        int64_t lid = newl[i];
        double d;
        for (k = 0; k < n; k++)
            if (alive[k] && dlid[k] == lid)
                break;
        d = ((k < n) ? dval[k] : 0.0) + rate;
        if (d == 0.0 && k < n) {
            alive[k] = 0;
        } else if (k < n) {
            dval[k] = d;
        } else {
            dlid[n] = lid;
            dval[n] = d;
            alive[n] = 1;
            n++;
        }
    }
    return n;
}

/* grade the (compacted) delta list: olds from the power cache, news via
   the scalar replica, pairwise sums in entry order — exactly
   _graded_delta_scalar (and graded_power_delta, whose old powers are the
   same floats by the plist invariant) for any delta size under a
   discrete model */
static double grade_deltas(rledger *L, int64_t n_entries, int64_t *out_k) {
    int64_t *dlid = L->scr_dlid;
    double *dval = L->scr_dval;
    uint8_t *alive = L->scr_alive;
    int64_t k = 0, i;
    for (i = 0; i < n_entries; i++) {
        int64_t lid;
        double nw;
        if (!alive[i] || dval[i] == 0.0)
            continue;
        lid = dlid[i];
        nw = L->loads[lid] + dval[i];
        if (nw < -1e-9) {
            L->err = RERR_NEGLOAD;
            return 0.0;
        }
        if (nw < 0.0)
            nw = 0.0;
        L->scr_olds[k] = L->plist[lid];
        L->scr_news[k] = lp_scalar(L, nw, lid);
        L->scr_clid[k] = lid;
        L->scr_cval[k] = dval[i];
        k++;
    }
    *out_k = k;
    return pairwise_sum(L->scr_news, k) - pairwise_sum(L->scr_olds, k);
}

static void commit_resample(rledger *L, int64_t ci, const uint8_t *mv,
                            const int64_t *newl, int64_t n_deltas,
                            double dcost) {
    int64_t st = L->starts[ci];
    int64_t len = L->lengths[ci];
    int64_t *lks = L->links + st;
    int64_t *pos = L->pos + L->pstarts[ci];
    int64_t *cum = L->cumv + L->cstarts[ci];
    int64_t i, acc, np;
    for (i = 0; i < len; i++)
        lc_discard(L, lks[i], ci);
    for (i = 0; i < len; i++)
        lc_add(L, newl[i], ci);
    memcpy(L->moves + st, mv, (size_t)len);
    memcpy(lks, newl, (size_t)len * sizeof(int64_t));
    np = 0;
    for (i = 0; i < len - 1; i++)
        if (mv[i] != mv[i + 1])
            pos[np++] = i;
    L->pos_len[ci] = np;
    acc = 0;
    for (i = 0; i < len; i++) {
        if (mv[i] == MV_V)
            acc += 1;
        cum[i + 1] = acc;
    }
    for (i = 0; i < n_deltas; i++)
        bump(L, L->scr_clid[i], L->scr_cval[i]);
    L->cost += dcost;
}

double repro_resample_eval(rledger *L, int64_t ci, const uint8_t *mv,
                           int64_t plen, int32_t commit) {
    int64_t len = L->lengths[ci];
    int64_t n_ent, k;
    double dcost;
    if (plen != len) {
        L->err = RERR_STATE;
        return 0.0;
    }
    trusted_links(L, ci, mv, len, L->scr_links);
    n_ent = swap_deltas(L, L->links + L->starts[ci], len, L->scr_links,
                        len, L->rates[ci]);
    dcost = grade_deltas(L, n_ent, &k);
    if (L->err)
        return 0.0;
    if (commit)
        commit_resample(L, ci, mv, L->scr_links, k, dcost);
    return dcost;
}

/* ================================================================== */
/* SA chain driver: the _anneal loop with a resume protocol — resample */
/* proposals are drawn in Python (CommDag.random_moves over the shared */
/* rstream), so the driver returns 1 (= need proposal) and is re-      */
/* entered with the proposal bytes (plen == -1 means "equal to the     */
/* current path": cooling only, no evaluation).                        */
/* ================================================================== */

static void sa_step_tail(rsa *sa) {
    rledger *L = sa->L;
    if (L->cost < sa->best_cost) {
        sa->best_cost = L->cost;
        memcpy(sa->best_moves, L->moves, (size_t)L->total_len);
    }
    sa->temp *= sa->cooling;
    sa->it += 1;
}

int repro_sa_run(rsa *sa, const uint8_t *proposal, int64_t plen) {
    rledger *L = sa->L;
    rstream *st = sa->st;
    if (sa->awaiting) {
        int64_t ci = sa->pending_ci;
        sa->awaiting = 0;
        if (plen == -1) {
            /* proposal equals the current path: cooling only */
            sa->temp *= sa->cooling;
            sa->it += 1;
        } else {
            double dcost = repro_resample_eval(L, ci, proposal, plen, 0);
            int accept;
            if (L->err)
                return -1;
            accept = (dcost <= 0.0);
            if (!accept) {
                double a = dcost / fmax(sa->temp, 1e-300);
                if (a > 700.0)
                    a = 700.0;
                accept = (rs_random(st) < exp(-a));
                if (st->err)
                    return -1;
            }
            if (accept) {
                int64_t k = 0, n_ent;
                /* re-evaluate with commit: same state, same floats */
                trusted_links(L, ci, proposal, plen, L->scr_links);
                n_ent = swap_deltas(L, L->links + L->starts[ci], plen,
                                    L->scr_links, plen, L->rates[ci]);
                grade_deltas(L, n_ent, &k);
                if (L->err)
                    return -1;
                commit_resample(L, ci, proposal, L->scr_links, k, dcost);
            }
            sa_step_tail(sa);
        }
    }
    while (sa->it < sa->iterations) {
        int64_t ci = sa->movable[rs_integers(st, sa->n_mov)];
        double u = rs_random(st);
        if (st->err)
            return -1;
        if (u < sa->resample_prob) {
            sa->pending_ci = ci;
            sa->awaiting = 1;
            return 1;
        }
        {
            int64_t pn = L->pos_len[ci];
            int64_t j;
            double dcost;
            int accept;
            if (pn == 0) {
                sa->temp *= sa->cooling;
                sa->it += 1;
                continue;
            }
            j = (L->pos + L->pstarts[ci])[rs_integers(st, pn)];
            if (st->err)
                return -1;
            dcost = repro_flip_dcost(L, ci, j);
            if (L->err)
                return -1;
            accept = (dcost <= 0.0);
            if (!accept) {
                double a = dcost / fmax(sa->temp, 1e-300);
                if (a > 700.0)
                    a = 700.0;
                accept = (rs_random(st) < exp(-a));
                if (st->err)
                    return -1;
            }
            if (accept)
                repro_commit_flip(L, ci, j, dcost);
            sa_step_tail(sa);
        }
    }
    return 0;
}

/* ================================================================== */
/* TABU candidate kernel: hot-link expansion + random exploration      */
/* slice + scalar grading + stable ascending argsort, exactly          */
/* TabuRouting._best_candidate up to the (Python-side) tabu walk.      */
/* ================================================================== */

int64_t repro_tabu_candidates(rledger *L, rstream *st,
                              const int64_t *hot, int64_t n_hot,
                              const int64_t *movable, int64_t n_mov,
                              int64_t neighborhood,
                              int64_t *cci, int64_t *cj, double *dcosts,
                              int64_t *order, uint8_t *seen) {
    int64_t nc = 0, h, i;
    memset(seen, 0, (size_t)(L->total_len - L->num_comms));
    for (h = 0; h < n_hot; h++) {
        int64_t lid = hot[h];
        const int32_t *row = L->lc + lid * L->lc_cap;
        int32_t cn = L->lc_len[lid], tix;
        for (tix = 0; tix < cn; tix++) {
            int64_t ci = (int64_t)row[tix];
            const uint8_t *mv = L->moves + L->starts[ci];
            const int64_t *lks = L->links + L->starts[ci];
            int64_t len = L->lengths[ci];
            int64_t k = 0, jj;
            while (k < len && lks[k] != lid)
                k++;
            if (k == len) {
                L->err = RERR_STATE;
                return -1;
            }
            for (jj = k - 1; jj <= k; jj++) {
                if (jj >= 0 && jj < len - 1 && mv[jj] != mv[jj + 1]) {
                    int64_t slot = L->pstarts[ci] + jj;
                    if (!seen[slot]) {
                        seen[slot] = 1;
                        cci[nc] = ci;
                        cj[nc] = jj;
                        nc++;
                    }
                }
            }
            if (nc >= neighborhood)
                break;
        }
        if (nc >= neighborhood)
            break;
    }
    {
        int64_t attempts = 0, max_attempts = 4 * neighborhood;
        while (nc < neighborhood && attempts < max_attempts) {
            int64_t ci, pn;
            attempts++;
            ci = movable[rs_integers(st, n_mov)];
            pn = L->pos_len[ci];
            if (pn) {
                int64_t jj = (L->pos + L->pstarts[ci])[rs_integers(st, pn)];
                int64_t slot = L->pstarts[ci] + jj;
                if (!seen[slot]) {
                    seen[slot] = 1;
                    cci[nc] = ci;
                    cj[nc] = jj;
                    nc++;
                }
            }
            if (st->err)
                return -1;
        }
    }
    for (i = 0; i < nc; i++) {
        dcosts[i] = repro_flip_dcost(L, cci[i], cj[i]);
        if (L->err)
            return -1;
    }
    /* stable insertion argsort ascending == np.argsort(kind="stable") */
    for (i = 0; i < nc; i++)
        order[i] = i;
    for (i = 1; i < nc; i++) {
        int64_t key = order[i];
        double kd = dcosts[key];
        int64_t j2 = i - 1;
        while (j2 >= 0 && dcosts[order[j2]] > kd) {
            order[j2 + 1] = order[j2];
            j2--;
        }
        order[j2 + 1] = key;
    }
    return nc;
}

/* ================================================================== */
/* rnoc: the ArrayFlitSimulator cycle loop, verbatim                   */
/* ================================================================== */

int repro_noc_run(rnoc *R) {
    const int64_t nf = R->nf, nvc = R->nvc, bf = R->bf, pf = R->pf;
    const int64_t L = R->L, cycles = R->cycles, warmup = R->warmup;
    const int64_t pf_last = pf - 1, window = R->window;
    const int collect = R->collect;
    const int64_t *arrivals = R->arrivals;
    const int64_t *pkt_ptr = R->pkt_ptr;
    const int64_t *pkt_times = R->pkt_times;
    const int64_t *first_cl = R->first_cl;
    const int64_t *next_of = R->next_of;
    const int64_t *feeder_ptr = R->feeder_ptr;
    const int64_t *feeder_fi = R->feeder_fi;
    const int64_t *feeder_up = R->feeder_up;
    const double *speed_l = R->speed_l;
    const double *cap_l = R->cap_l;
    int64_t *bflow = R->bflow, *bpk = R->bpk, *bk = R->bk, *bt = R->bt;
    int64_t *bnext = R->bnext, *hd = R->hd, *cnt = R->cnt;
    int64_t *ow_f = R->ow_f, *ow_p = R->ow_p;
    int64_t *iq_head = R->iq_head, *iq_k = R->iq_k, *iq_n = R->iq_n;
    double *budget = R->budget;
    int64_t *rr = R->rr, *feed = R->feed, *occ = R->occ, *fwd = R->fwd;
    int64_t *injected = R->injected, *delivered = R->delivered;
    int64_t *delivered_pkts = R->delivered_pkts;
    double *latency_sum = R->latency_sum;
    int64_t in_flight = 0, idle_cycles = 0, total_delivered = 0;
    int deadlocked = 0;
    int64_t t = 0;

    for (t = 0; t < cycles; t++) {
        int measuring = (t >= warmup);
        int progress = 0;
        int64_t fi, cl, vc;

        /* 1) arrivals (precomputed schedule, ascending flow order) */
        for (fi = 0; fi < nf; fi++) {
            int64_t n = arrivals[fi * cycles + t];
            int64_t add;
            if (!n)
                continue;
            add = n * pf;
            iq_n[fi] += add;
            feed[first_cl[fi]] += add;
            in_flight += add;
            if (measuring)
                injected[fi] += add;
        }

        /* 2) ejection: drain head flits whose next hop is -1 */
        for (cl = 0; cl < L; cl++) {
            int64_t b0;
            if (!occ[cl])
                continue;
            b0 = cl * nvc;
            for (vc = 0; vc < nvc; vc++) {
                int64_t b = b0 + vc;
                int64_t c = cnt[b];
                int64_t h, sb;
                if (!c)
                    continue;
                h = hd[b];
                sb = b * bf;
                while (c && bnext[sb + h] == -1) {
                    int64_t s = sb + h;
                    int64_t f2 = bflow[s];
                    int64_t k = bk[s];
                    int tail;
                    h += 1;
                    if (h == bf)
                        h = 0;
                    c -= 1;
                    progress = 1;
                    occ[cl] -= 1;
                    in_flight -= 1;
                    tail = (k == pf_last);
                    if (tail && ow_f[b] == f2 && ow_p[b] == bpk[s])
                        ow_f[b] = -1;
                    if (measuring) {
                        delivered[f2] += 1;
                        total_delivered += 1;
                        if (tail) {
                            delivered_pkts[f2] += 1;
                            latency_sum[f2] += (double)(t - bt[s]);
                            if (collect) {
                                if (R->rec_n >= R->rec_cap) {
                                    R->err = RERR_STATE;
                                    return -1;
                                }
                                R->rec_fi[R->rec_n] = f2;
                                R->rec_inj[R->rec_n] = bt[s];
                                R->rec_done[R->rec_n] = t;
                                R->rec_n += 1;
                            }
                        }
                    }
                }
                hd[b] = h;
                cnt[b] = c;
            }
        }

        /* 3) traversal: budget accrual + wormhole RR arbitration */
        for (cl = 0; cl < L; cl++) {
            double bdg = budget[cl] + speed_l[cl];
            double cap;
            if (bdg >= 1.0 && feed[cl]) {
                int64_t b0 = cl * nvc;
                for (;;) {
                    int64_t start = rr[cl];
                    int moved = 0;
                    int64_t off;
                    for (off = 0; off < nvc; off++) {
                        int64_t v2 = start + off;
                        int64_t b, c_b, of, fp, fe, x;
                        if (v2 >= nvc)
                            v2 -= nvc;
                        b = b0 + v2;
                        c_b = cnt[b];
                        if (c_b >= bf)
                            continue;
                        of = ow_f[b];
                        fp = feeder_ptr[b];
                        fe = feeder_ptr[b + 1];
                        for (x = fp; x < fe; x++) {
                            int64_t f2 = feeder_fi[x];
                            int64_t up = feeder_up[x];
                            int64_t pk, k, us, ub = -1, cu = 0;
                            int tail;
                            int64_t tstamp, s, nx, vcn;
                            if (up < 0) {
                                if (!iq_n[f2])
                                    continue;
                                pk = iq_head[f2];
                                k = iq_k[f2];
                                us = -1;
                            } else {
                                ub = up * nvc + v2;
                                cu = cnt[ub];
                                if (!cu)
                                    continue;
                                us = ub * bf + hd[ub];
                                if (bflow[us] != f2)
                                    continue;
                                pk = bpk[us];
                                k = bk[us];
                            }
                            if (of >= 0) {
                                if (f2 != of || pk != ow_p[b])
                                    continue;
                            } else if (k != 0) {
                                /* only a head flit claims a free channel */
                                continue;
                            }
                            tail = (k == pf_last);
                            if (us < 0) {
                                int64_t kk = k + 1;
                                tstamp = pkt_times[pkt_ptr[f2] + pk];
                                if (kk == pf) {
                                    iq_head[f2] = pk + 1;
                                    iq_k[f2] = 0;
                                } else {
                                    iq_k[f2] = kk;
                                }
                                iq_n[f2] -= 1;
                            } else {
                                int64_t hu = hd[ub] + 1;
                                tstamp = bt[us];
                                hd[ub] = (hu == bf) ? 0 : hu;
                                cnt[ub] = cu - 1;
                                occ[up] -= 1;
                                if (tail && ow_f[ub] == f2 &&
                                    ow_p[ub] == pk)
                                    ow_f[ub] = -1;
                            }
                            s = b * bf + hd[b] + c_b;
                            if (s >= b * bf + bf)
                                s -= bf;
                            bflow[s] = f2;
                            bpk[s] = pk;
                            bk[s] = k;
                            bt[s] = tstamp;
                            nx = next_of[f2 * L + cl];
                            bnext[s] = nx;
                            cnt[b] = c_b + 1;
                            occ[cl] += 1;
                            feed[cl] -= 1;
                            if (nx >= 0)
                                feed[nx] += 1;
                            if (tail) {
                                ow_f[b] = -1;
                            } else {
                                ow_f[b] = f2;
                                ow_p[b] = pk;
                            }
                            vcn = v2 + 1;
                            rr[cl] = (vcn == nvc) ? 0 : vcn;
                            moved = 1;
                            break;
                        }
                        if (moved)
                            break;
                    }
                    if (!moved)
                        break;
                    bdg -= 1.0;
                    progress = 1;
                    if (measuring)
                        fwd[cl] += 1;
                    if (bdg < 1.0)
                        break;
                }
            }
            /* cap idle budget so long-idle links can't burst */
            cap = cap_l[cl];
            budget[cl] = (bdg > cap) ? cap : bdg;
        }

        if (progress || !in_flight) {
            idle_cycles = 0;
        } else {
            idle_cycles += 1;
            if (idle_cycles >= window) {
                deadlocked = 1;
                break;
            }
        }
    }

    R->t_final = deadlocked ? t : cycles - 1;
    R->total_delivered = total_delivered;
    R->deadlocked = deadlocked;
    return 0;
}
"""

ffibuilder = FFI()
ffibuilder.cdef(CDEF)
ffibuilder.set_source(
    "repro.native._native",
    C_SOURCE,
    # -ffp-contract=off: gcc defaults to contracting a*b+c into FMAs,
    # which would break the per-operation IEEE rounding the bit-identity
    # contract depends on; -O2 alone does not imply it off for gcc.
    extra_compile_args=["-O2", "-ffp-contract=off"],
    libraries=["m"],
)

if __name__ == "__main__":  # pragma: no cover - manual/CI entry point
    ffibuilder.compile(verbose=True)
