"""Native fast-path tier: tier selection, loading and first-use build.

The compiled extension (``repro.native._native``, built from
:mod:`repro.native._builder`) provides C kernels for the two hottest inner
loops — the :class:`~repro.mesh.batch.LoadLedger` flip/resample grading
(driving SA and TABU) and the :class:`~repro.noc.engine.ArrayFlitSimulator`
cycle loop — each bit-identical to its Python tier.

Tier selection is explicit and observable through ``REPRO_NATIVE``:

* ``auto`` (default, also the empty string) — use the native kernels when
  the compiled module imports (building it on first use when cffi and a C
  compiler are available), else fall back silently to the Python tier with
  a one-time logged notice;
* ``1`` — require the native tier; :class:`NativeUnavailableError` if the
  module cannot be imported or built;
* ``0`` — force the Python tier even when the module is available.

Anything else raises :class:`~repro.utils.validation.
InvalidParameterError`, mirroring the ``REPRO_TRIALS`` / ``REPRO_JOBS``
conventions.  The variable is re-read on every tier decision so tests (and
benches) can flip tiers per call; the expensive load/build itself is
memoised per process.

Even on the native tier the *random draws stay in Python*: the C stream
consumes raw PCG64 words refilled through a callback into
:func:`repro.utils.rng.raw_word_block`, preserving the generator
draw-order contract documented in :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import importlib
import importlib.util
import logging
import os
import sys
import tempfile
from pathlib import Path
from typing import Optional, Tuple

from repro.utils.validation import InvalidParameterError, ReproError

__all__ = [
    "NativeUnavailableError",
    "active_tier",
    "build_native",
    "native_kernels",
    "native_mode",
    "native_module",
]

logger = logging.getLogger("repro.native")

_MODES = ("auto", "0", "1")


class NativeUnavailableError(ReproError):
    """``REPRO_NATIVE=1`` but the native module cannot be loaded/built."""


def native_mode() -> str:
    """The validated ``REPRO_NATIVE`` mode: ``"auto"``, ``"0"`` or ``"1"``."""
    raw = os.environ.get("REPRO_NATIVE", "")
    value = raw.strip().lower()
    if not value:
        return "auto"
    if value not in _MODES:
        raise InvalidParameterError(
            f"REPRO_NATIVE must be one of {', '.join(_MODES)}; got {raw!r}"
        )
    return value


# memoised load state: None = not attempted, (module,) = loaded,
# (None, reason) = attempted and unavailable
_LOAD: Optional[Tuple] = None
_FALLBACK_NOTICED = False


def _package_dir() -> Path:
    return Path(__file__).resolve().parent


def _module_filename() -> str:
    import importlib.machinery

    suffix = importlib.machinery.EXTENSION_SUFFIXES[0]
    return f"_native{suffix}"


#: ``.native-build-*`` dirs older than this are orphans of a killed
#: builder (seconds)
STALE_BUILD_AGE_S = 3600.0


def _sweep_stale_builds(
    target_dir: Path,
    *,
    max_age_s: float = STALE_BUILD_AGE_S,
    now: Optional[float] = None,
) -> int:
    """Remove ``.native-build-*`` residue in ``target_dir``; returns count.

    A builder killed mid-compile (SIGKILL, OOM) leaves its whole
    ``TemporaryDirectory`` behind — object files included, easily a few
    MB each.  Directories older than ``max_age_s`` cannot belong to a
    live build and are dropped before the next build starts; younger
    ones are left for the concurrent builder that owns them.
    """
    import shutil
    import time

    if now is None:
        now = time.time()
    removed = 0
    for p in target_dir.glob(".native-build-*"):
        try:
            if p.is_dir() and now - p.stat().st_mtime >= max_age_s:
                shutil.rmtree(p, ignore_errors=True)
                removed += 1
        except OSError:
            continue  # raced with another sweeper
    return removed


def build_native(target_dir: Optional[Path] = None, *, verbose: bool = False):
    """Compile the extension into ``target_dir`` (default: the package).

    Builds in a temporary directory on the same filesystem and moves the
    artefact into place with an atomic rename, so concurrent builders
    (parallel sweep workers importing simultaneously) cannot observe a
    half-written module.  Stale ``.native-build-*`` residue from killed
    builders is swept first.  Returns the path of the built extension.
    Raises on any failure — callers decide whether that is fatal
    (``REPRO_NATIVE=1``) or a fallback (``auto``).
    """
    from repro.native._builder import ffibuilder

    if target_dir is None:
        target_dir = _package_dir()
    target_dir = Path(target_dir)
    target_dir.mkdir(parents=True, exist_ok=True)
    _sweep_stale_builds(target_dir)
    with tempfile.TemporaryDirectory(
        prefix=".native-build-", dir=str(target_dir)
    ) as tmp:
        built = ffibuilder.compile(tmpdir=tmp, verbose=verbose)
        dest = target_dir / Path(built).name
        os.replace(built, dest)
    return dest


def _try_load():
    """Import the compiled module, building it on first use if possible."""
    try:
        return importlib.import_module("repro.native._native"), None
    except ImportError as exc:
        import_reason = str(exc)
    try:
        import cffi  # noqa: F401
    except ImportError:
        return None, (
            "compiled module not importable and cffi is not installed "
            f"(install the 'native' extra): {import_reason}"
        )
    try:
        dest = build_native()
    except Exception as exc:  # distutils/compiler failures are diverse
        return None, f"native build failed: {exc}"
    try:
        spec = importlib.util.spec_from_file_location(
            "repro.native._native", dest
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules["repro.native._native"] = module
        spec.loader.exec_module(module)
        return module, None
    except Exception as exc:  # pragma: no cover - freak load failure
        sys.modules.pop("repro.native._native", None)
        return None, f"built module failed to load: {exc}"


def native_module():
    """The loaded extension module, or ``None`` — ignores ``REPRO_NATIVE``.

    First call may build the extension (seconds, once per environment);
    the outcome is memoised for the process.
    """
    global _LOAD
    if _LOAD is None:
        module, reason = _try_load()
        if module is not None:
            from repro.native.stream import register_refill_callback

            register_refill_callback(module)
        _LOAD = (module, reason)
    return _LOAD[0]


def _unavailable_reason() -> str:
    native_module()
    return _LOAD[1] or "unknown"


def native_kernels():
    """The extension honouring ``REPRO_NATIVE``, or ``None`` (Python tier).

    ``auto``: module or ``None`` (one-time logged notice on fallback);
    ``1``: module or :class:`NativeUnavailableError`; ``0``: ``None``.
    """
    global _FALLBACK_NOTICED
    mode = native_mode()
    if mode == "0":
        return None
    module = native_module()
    if module is None:
        if mode == "1":
            raise NativeUnavailableError(
                "REPRO_NATIVE=1 but the native tier is unavailable: "
                + _unavailable_reason()
            )
        if not _FALLBACK_NOTICED:
            _FALLBACK_NOTICED = True
            logger.info(
                "native tier unavailable (%s); continuing on the Python "
                "tier",
                _LOAD[1],
            )
        return None
    return module


def active_tier() -> str:
    """``"native"`` or ``"python"`` — what the current mode resolves to."""
    return "python" if native_kernels() is None else "native"
