"""Native runner for the :class:`~repro.noc.engine.ArrayFlitSimulator`.

Packs the simulator's static tables (successor matrix, feeder CSR, link
speeds) once per simulator and its per-run state (ring-buffer lanes, FIFO
cursors, wormhole owners, budgets, statistics) into flat numpy arrays,
then executes the whole cycle loop in one ``repro_noc_run`` call.  The C
loop is a statement-for-statement port of ``ArrayFlitSimulator.run`` —
same ejection-before-traversal order, ascending-link / round-robin-VC /
flow-order arbitration, budget accrual and idle cap, wormhole ownership
and deadlock window — so reports (flows, utilisation, packet records,
deadlock behaviour) are bit-identical to the Python tier.

Injection schedules stay in Python: :func:`repro.noc.traffic.
precompute_arrivals` draws the whole arrival matrix up front with the
reference's RNG word-consumption order, and the C loop only *consumes*
it — the draw-order contract never moves across the FFI boundary.
"""

from __future__ import annotations

import numpy as np

from repro.noc.simulator import (
    DeadlockError,
    FlowStats,
    PacketRecord,
    SimulationReport,
)
from repro.noc.traffic import precompute_arrivals


def _static_tables(sim, ffi):
    """Flat per-simulator tables, built once and cached on the instance."""
    nf = len(sim.flow_paths)
    L = sim._num_used
    nvc = sim.num_vcs
    next_of = np.full((nf, max(L, 1)), -2, dtype=np.int64)
    for fi, cp in enumerate(sim._cpaths):
        nxt = sim._next_after[fi]
        for p, cl in enumerate(cp):
            next_of[fi, cl] = nxt[p]
    nb = L * nvc
    feeder_ptr = np.zeros(nb + 1, dtype=np.int64)
    for b, fs in enumerate(sim._feeders):
        feeder_ptr[b + 1] = feeder_ptr[b] + len(fs)
    feeder_fi = np.zeros(max(int(feeder_ptr[-1]), 1), dtype=np.int64)
    feeder_up = np.zeros_like(feeder_fi)
    for b, fs in enumerate(sim._feeders):
        at = int(feeder_ptr[b])
        for x, (fi, up) in enumerate(fs):
            feeder_fi[at + x] = fi
            feeder_up[at + x] = up
    first_cl = np.asarray(sim._first_cl, dtype=np.int64)
    speed_l = np.asarray(sim._speed_used, dtype=np.float64)
    cap_l = np.asarray(sim._cap_used, dtype=np.float64)
    return {
        "next_of": next_of,
        "feeder_ptr": feeder_ptr,
        "feeder_fi": feeder_fi,
        "feeder_up": feeder_up,
        "first_cl": first_cl,
        "speed_l": speed_l,
        "cap_l": cap_l,
    }


def run_native(sim, cycles: int, *, warmup: int = 0) -> SimulationReport:
    """``ArrayFlitSimulator.run`` on the native tier (bit-identical)."""
    module = sim._native
    ffi, lib = module.ffi, module.lib
    tables = getattr(sim, "_native_tables", None)
    if tables is None:
        tables = _static_tables(sim, ffi)
        sim._native_tables = tables

    nf = len(sim.flow_paths)
    nvc = sim.num_vcs
    bf = sim.buffer_flits
    pf = sim.packet_flits
    L = sim._num_used
    collect = sim.collect_packets

    # batched injection: the whole arrival schedule, drawn up front in
    # Python with the reference's exact RNG word-consumption order
    arrivals = precompute_arrivals(
        sim.injection, sim.flow_rate_frac, pf, sim._rng, cycles
    )
    arr_mat = np.zeros((max(nf, 1), cycles), dtype=np.int64)
    for fi in range(nf):
        arr_mat[fi, :] = arrivals[fi]
    # per-flow packet injection times, CSR over absolute packet ids
    pkt_ptr = np.zeros(nf + 1, dtype=np.int64)
    if nf:
        np.cumsum(arr_mat[:nf].sum(axis=1), out=pkt_ptr[1:])
    total_pkts = int(pkt_ptr[-1])
    pkt_times = np.zeros(max(total_pkts, 1), dtype=np.int64)
    cyc_ids = np.arange(cycles, dtype=np.int64)
    for fi in range(nf):
        pkt_times[int(pkt_ptr[fi]) : int(pkt_ptr[fi + 1])] = np.repeat(
            cyc_ids, arr_mat[fi]
        )

    nb = L * nvc
    nslots = nb * bf
    z64 = lambda n: np.zeros(max(n, 1), dtype=np.int64)  # noqa: E731
    bflow, bpk, bk, bt, bnext = (z64(nslots) for _ in range(5))
    hd, cnt, ow_p = (z64(nb) for _ in range(3))
    ow_f = np.full(max(nb, 1), -1, dtype=np.int64)
    iq_head, iq_k, iq_n = (z64(nf) for _ in range(3))
    budget = np.zeros(max(L, 1), dtype=np.float64)
    rr, feed, occ, fwd = (z64(L) for _ in range(4))
    injected, delivered, delivered_pkts = (z64(nf) for _ in range(3))
    latency_sum = np.zeros(max(nf, 1), dtype=np.float64)
    rec_cap = total_pkts if collect else 0
    rec_fi, rec_inj, rec_done = (z64(rec_cap) for _ in range(3))

    keep = [
        arr_mat, pkt_ptr, pkt_times, bflow, bpk, bk, bt, bnext, hd, cnt,
        ow_f, ow_p, iq_head, iq_k, iq_n, budget, rr, feed, occ, fwd,
        injected, delivered, delivered_pkts, latency_sum, rec_fi,
        rec_inj, rec_done,
    ]
    keep.extend(tables.values())

    R = ffi.new("rnoc *")
    R.nf = nf
    R.nvc = nvc
    R.bf = bf
    R.pf = pf
    R.L = L
    R.window = sim.deadlock_window
    R.cycles = cycles
    R.warmup = warmup
    R.collect = 1 if collect else 0

    def ptr(ctype, a):
        return ffi.cast(ctype, a.ctypes.data)

    R.arrivals = ptr("const int64_t *", arr_mat)
    R.pkt_ptr = ptr("const int64_t *", pkt_ptr)
    R.pkt_times = ptr("const int64_t *", pkt_times)
    R.first_cl = ptr("const int64_t *", tables["first_cl"])
    R.next_of = ptr("const int64_t *", tables["next_of"])
    R.feeder_ptr = ptr("const int64_t *", tables["feeder_ptr"])
    R.feeder_fi = ptr("const int64_t *", tables["feeder_fi"])
    R.feeder_up = ptr("const int64_t *", tables["feeder_up"])
    R.speed_l = ptr("const double *", tables["speed_l"])
    R.cap_l = ptr("const double *", tables["cap_l"])
    R.bflow = ptr("int64_t *", bflow)
    R.bpk = ptr("int64_t *", bpk)
    R.bk = ptr("int64_t *", bk)
    R.bt = ptr("int64_t *", bt)
    R.bnext = ptr("int64_t *", bnext)
    R.hd = ptr("int64_t *", hd)
    R.cnt = ptr("int64_t *", cnt)
    R.ow_f = ptr("int64_t *", ow_f)
    R.ow_p = ptr("int64_t *", ow_p)
    R.iq_head = ptr("int64_t *", iq_head)
    R.iq_k = ptr("int64_t *", iq_k)
    R.iq_n = ptr("int64_t *", iq_n)
    R.budget = ptr("double *", budget)
    R.rr = ptr("int64_t *", rr)
    R.feed = ptr("int64_t *", feed)
    R.occ = ptr("int64_t *", occ)
    R.fwd = ptr("int64_t *", fwd)
    R.injected = ptr("int64_t *", injected)
    R.delivered = ptr("int64_t *", delivered)
    R.delivered_pkts = ptr("int64_t *", delivered_pkts)
    R.latency_sum = ptr("double *", latency_sum)
    R.rec_fi = ptr("int64_t *", rec_fi)
    R.rec_inj = ptr("int64_t *", rec_inj)
    R.rec_done = ptr("int64_t *", rec_done)
    R.rec_cap = rec_cap
    R.rec_n = 0
    R.total_delivered = 0
    R.t_final = 0
    R.deadlocked = 0
    R.err = 0

    rc = lib.repro_noc_run(R)
    if rc != 0:  # pragma: no cover - internal invariant (record overflow)
        raise RuntimeError(f"native NoC run failed (code {R.err})")
    t = int(R.t_final)
    if R.deadlocked:
        raise DeadlockError(
            f"no flit moved for {sim.deadlock_window} cycles at t={t} "
            "with traffic in flight — wormhole deadlock"
        )

    measured = max(1, t + 1 - warmup)
    forwarded = np.zeros(sim.mesh.num_links)
    if L:
        forwarded[sim._used_links] = fwd[:L]
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            sim.speed > 0, forwarded / (measured * sim.speed), 0.0
        )
    flows = tuple(
        FlowStats(
            comm_index=sim.flow_comm[fi],
            rate_fraction=sim.flow_rate_frac[fi],
            injected_flits=int(injected[fi]),
            delivered_flits=int(delivered[fi]),
            delivered_packets=int(delivered_pkts[fi]),
            mean_packet_latency=(
                float(latency_sum[fi]) / int(delivered_pkts[fi])
                if delivered_pkts[fi]
                else float("nan")
            ),
        )
        for fi in range(nf)
    )
    flow_comm = sim.flow_comm
    packet_records = tuple(
        PacketRecord(
            flow=int(rec_fi[x]),
            comm=flow_comm[int(rec_fi[x])],
            injected_at=int(rec_inj[x]),
            completed_at=int(rec_done[x]),
        )
        for x in range(int(R.rec_n))
    )
    del keep
    return SimulationReport(
        cycles=cycles,
        flows=flows,
        link_utilization=util,
        total_delivered_flits=int(R.total_delivered),
        deadlocked=False,
        packets=packet_records,
    )
