"""Python-fed C random stream: the native face of ``StreamReplica``.

:class:`NativeStream` exposes the same draw API as
:class:`repro.utils.rng.StreamReplica` — ``random()``, ``integers(n)``,
``shuffle(list)`` — but the word-consumption kernels (Lemire bounded
draws, half-word buffering, masked-rejection intervals) run in C on an
``rstream`` struct that native drivers (the SA chain, the TABU candidate
kernel) can also draw from directly.  Both sides share one cursor, so
Python-side draws (e.g. ``CommDag.random_moves`` proposals) interleave
with C-side draws in exactly the order the Python tier would produce.

The raw words themselves are never generated in C: when the stream runs
dry the extension calls back into Python (``_repro_stream_refill``),
which refills the buffer through :func:`repro.utils.rng.raw_word_block`
on the wrapped :class:`numpy.random.Generator` — the RNG stays in
Python, preserving the draw-order contract bit for bit.
"""

from __future__ import annotations

import itertools
import weakref

import numpy as np

from repro.utils.rng import raw_word_block

#: live streams by refill key (weak: a collected stream unregisters itself)
_REGISTRY: "weakref.WeakValueDictionary[int, NativeStream]" = (
    weakref.WeakValueDictionary()
)
_KEYS = itertools.count(1)
_CALLBACK_BOUND = False


def register_refill_callback(module) -> None:
    """Bind the ``_repro_stream_refill`` extern to the loaded module."""
    global _CALLBACK_BOUND
    if _CALLBACK_BOUND:  # pragma: no cover - single load per process
        return
    _CALLBACK_BOUND = True

    @module.ffi.def_extern(name="_repro_stream_refill", error=1)
    def _repro_stream_refill(st_ptr):
        stream = _REGISTRY.get(st_ptr.key)
        if stream is None:  # pragma: no cover - stream died mid-call
            return 1
        return stream._fill(st_ptr)


class NativeStream:
    """Replica-compatible draw stream backed by the C kernels."""

    def __init__(self, rng: np.random.Generator, block: int = 1024):
        from repro.native import native_module

        module = native_module()
        if module is None:  # pragma: no cover - callers gate on the tier
            raise RuntimeError("native module unavailable")
        self._ffi = module.ffi
        self._lib = module.lib
        self._rng = rng
        self._block = block
        self._buf = np.zeros(block, dtype=np.uint64)
        self._exc = None
        st = self._ffi.new("rstream *")
        st.buf = self._ffi.cast("uint64_t *", self._buf.ctypes.data)
        st.cap = block
        st.i = 0
        st.n = 0
        st.has32 = 0
        st.err = 0
        st.u32 = 0
        st.key = next(_KEYS)
        self._c = st
        _REGISTRY[st.key] = self

    # ------------------------------------------------------------------
    def _fill(self, st_ptr) -> int:
        """Refill callback target: one vectorised raw-word block."""
        try:
            self._buf[:] = raw_word_block(self._rng, self._block)
        except BaseException as exc:  # surfaced by check_err()
            self._exc = exc
            return 1
        st_ptr.i = 0
        st_ptr.n = self._block
        return 0

    def check_err(self) -> None:
        """Raise the stashed refill failure if a C-side draw hit one."""
        if self._c.err:
            exc, self._exc = self._exc, None
            self._c.err = 0
            if exc is not None:
                raise exc
            raise RuntimeError(  # pragma: no cover - refill never lies
                "native stream refill failed"
            )

    # ------------------------------------------------------------------
    def random(self) -> float:
        """Uniform double in [0, 1) — ``Generator.random()`` bit for bit."""
        v = self._lib.repro_stream_random(self._c)
        if self._c.err:
            self.check_err()
        return v

    def integers(self, n: int) -> int:
        """Uniform int in [0, n) — scalar ``Generator.integers(n)`` bit
        for bit (same Lemire kernels as the Python replica)."""
        if n < 1:
            raise ValueError(f"high <= 0 in integers({n})")
        v = self._lib.repro_stream_integers(self._c, n)
        if self._c.err:
            self.check_err()
        return v

    def shuffle(self, x: list) -> None:
        """In-place Fisher–Yates — ``Generator.shuffle`` bit for bit."""
        lib = self._lib
        st = self._c
        for i in range(len(x) - 1, 0, -1):
            j = lib.repro_stream_interval(st, i)
            x[i], x[j] = x[j], x[i]
        if st.err:
            self.check_err()
