"""STB — split-two-bend: the s-MP generalisation of the TB heuristic.

Communications are processed by decreasing weight.  Each one may use up to
``s`` of its two-bend paths: its rate is cut into small quanta which are
water-filled greedily — every quantum goes to the candidate path whose
links absorb it with the least graded-power increase, with the constraint
that at most ``s`` distinct paths open up.  Because the link power is
convex, greedy quantum placement approximates the optimal split over the
chosen support well, and with ``s = 1`` the heuristic degenerates to TB
(one path takes everything).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.problem import RoutingProblem
from repro.core.routing import RoutedFlow, Routing
from repro.heuristics.ordering import DEFAULT_ORDERING
from repro.mesh.moves import moves_to_links, two_bend_moves
from repro.mesh.paths import Path
from repro.multipath.base import MultiPathHeuristic
from repro.utils.validation import InvalidParameterError


class SplitTwoBend(MultiPathHeuristic):
    """Water-fill each communication over up to ``s`` two-bend paths.

    Parameters
    ----------
    s:
        Split bound (paths per communication).
    quanta:
        Number of rate quanta used by the water-filling; more quanta give
        finer splits at linear extra cost.  Defaults to ``max(8, 4 s)``.
    ordering:
        Communication processing order (paper default: decreasing weight).
    """

    name = "STB"

    def __init__(self, s: int = 2, quanta: int | None = None,
                 ordering: str = DEFAULT_ORDERING):
        super().__init__(s)
        if quanta is None:
            quanta = max(8, 4 * self.s)
        if quanta < self.s:
            raise InvalidParameterError(
                f"quanta ({quanta}) must be >= s ({self.s})"
            )
        self.quanta = int(quanta)
        self.ordering = ordering

    def _route(self, problem: RoutingProblem) -> Routing:
        mesh = problem.mesh
        power = problem.power
        loads = np.zeros(mesh.num_links, dtype=np.float64)
        flows: List[List[RoutedFlow]] = [[] for _ in range(problem.num_comms)]

        for i in problem.order_by(self.ordering):
            comm = problem.comms[i]
            cands = [
                (m, np.asarray(
                    moves_to_links(mesh, comm.src, comm.snk, m), dtype=np.int64
                ))
                for m in two_bend_moves(comm.src, comm.snk)
            ]
            quantum = comm.rate / self.quanta
            assigned: Dict[str, float] = {}
            for _ in range(self.quanta):
                best_m, best_lids, best_delta = None, None, np.inf
                for m, lids in cands:
                    if len(assigned) >= self.s and m not in assigned:
                        continue  # support is full: stay on opened paths
                    before = loads[lids]
                    delta = float(
                        np.sum(power.link_power_graded(before + quantum))
                        - np.sum(power.link_power_graded(before))
                    )
                    if delta < best_delta:
                        best_m, best_lids, best_delta = m, lids, delta
                assert best_m is not None  # cands is never empty
                loads[best_lids] += quantum
                assigned[best_m] = assigned.get(best_m, 0.0) + quantum
            total = sum(assigned.values())
            # water-filling used exact quanta; renormalise away float dust
            flows[i] = [
                RoutedFlow(
                    Path(mesh, comm.src, comm.snk, m), comm.rate * w / total
                )
                for m, w in sorted(assigned.items(), key=lambda kv: -kv[1])
            ]
        return Routing(problem, flows)
