"""Multi-path (s-MP) routing heuristics — the paper's sketched future work.

The conclusion of the paper: "it may be interesting to design multi-path
heuristics, since these may allow for an even better load-balance of
communications throughout the CMP".  This package provides three:

* :class:`~repro.multipath.split_two_bend.SplitTwoBend` — a direct s-MP
  generalisation of the TB heuristic: each communication is water-filled
  over its cheapest two-bend paths, at most ``s`` of them;
* :class:`~repro.multipath.fw_rounding.FrankWolfeRounding` — solve the
  continuous max-MP relaxation with Frank–Wolfe, keep each
  communication's ``s`` heaviest paths, and locally repair any bandwidth
  violation the trimming introduced;
* :class:`~repro.multipath.adaptive_split.AdaptiveSplitRepair` — start
  from a single-path heuristic and split *only* the communications whose
  links are overloaded, addressing the paper's reassembly-overhead
  concern by paying for splits exactly where congestion demands them.

Both return ordinary :class:`~repro.core.routing.Routing` objects (with
``max_split <= s``), evaluated under the same validity/power rules as the
single-path heuristics, so the benches can quantify exactly how much
splitting buys over 1-MP — including on the pigeonhole instances where no
single-path routing exists at all.
"""

from repro.multipath.base import MultiPathHeuristic, MultiPathResult
from repro.multipath.split_two_bend import SplitTwoBend
from repro.multipath.fw_rounding import FrankWolfeRounding
from repro.multipath.adaptive_split import AdaptiveSplitRepair

__all__ = [
    "MultiPathHeuristic",
    "MultiPathResult",
    "SplitTwoBend",
    "FrankWolfeRounding",
    "AdaptiveSplitRepair",
]
