"""Interface shared by the s-MP heuristics.

Mirrors :mod:`repro.heuristics.base` but produces (possibly) split
routings; the split bound ``s`` is a constructor parameter so one instance
corresponds to one point of the XY ⊂ 1-MP ⊂ s-MP hierarchy.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

from repro.core.evaluate import RoutingReport, evaluate_routing
from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.utils.validation import InvalidParameterError


@dataclass(frozen=True)
class MultiPathResult:
    """Outcome of one s-MP heuristic run."""

    name: str
    s: int
    routing: Routing
    report: RoutingReport
    runtime_s: float

    @property
    def valid(self) -> bool:
        return self.report.valid

    @property
    def power(self) -> float:
        return self.report.total_power

    @property
    def power_inverse(self) -> float:
        return self.report.power_inverse


class MultiPathHeuristic(abc.ABC):
    """Base class: implement :meth:`_route`, inherit timing/evaluation."""

    name: str = "?"

    def __init__(self, s: int = 2):
        if s < 1:
            raise InvalidParameterError(f"split bound s must be >= 1, got {s}")
        self.s = int(s)

    def solve(self, problem: RoutingProblem) -> MultiPathResult:
        """Route ``problem`` with at most ``s`` paths per communication."""
        if problem.num_comms == 0:
            raise InvalidParameterError(
                f"{self.name}: cannot route an empty communication set"
            )
        t0 = time.perf_counter()
        routing = self._route(problem)
        elapsed = time.perf_counter() - t0
        if routing.max_split > self.s:
            raise AssertionError(
                f"{self.name} produced {routing.max_split} paths for one "
                f"communication, exceeding s={self.s}"
            )
        return MultiPathResult(
            name=self.name,
            s=self.s,
            routing=routing,
            report=evaluate_routing(routing),
            runtime_s=elapsed,
        )

    @abc.abstractmethod
    def _route(self, problem: RoutingProblem) -> Routing:
        """Produce the s-MP routing."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(s={self.s})"
