"""FWR — Frank–Wolfe rounding: relax, trim to ``s`` paths, repair.

Solve the continuous max-MP dynamic-power relaxation (whose optimum may
spread a communication over arbitrarily many paths), keep each
communication's ``s`` heaviest paths with renormalised rates, and — since
trimming can concentrate load above ``BW`` — run a local repair loop:
while some link is overloaded, take the heaviest flow crossing it and move
rate away, either onto one of its communication's other open paths or
(if the support has room) onto the cheapest fresh Manhattan path under the
graded marginal cost.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.problem import RoutingProblem
from repro.core.routing import RoutedFlow, Routing
from repro.mesh.paths import Path
from repro.multipath.base import MultiPathHeuristic
from repro.optimal.frank_wolfe import _shortest_moves, frank_wolfe_relaxation
from repro.utils.validation import InvalidParameterError


class FrankWolfeRounding(MultiPathHeuristic):
    """Trimmed Frank–Wolfe with bandwidth repair.

    Parameters
    ----------
    s:
        Split bound.
    fw_iterations:
        Frank–Wolfe iterations for the relaxation phase.
    repair_steps:
        Cap on local repair moves.
    """

    name = "FWR"

    def __init__(self, s: int = 2, fw_iterations: int = 120,
                 repair_steps: int = 500):
        super().__init__(s)
        if fw_iterations < 1:
            raise InvalidParameterError(
                f"fw_iterations must be >= 1, got {fw_iterations}"
            )
        if repair_steps < 0:
            raise InvalidParameterError(
                f"repair_steps must be >= 0, got {repair_steps}"
            )
        self.fw_iterations = int(fw_iterations)
        self.repair_steps = int(repair_steps)

    def _route(self, problem: RoutingProblem) -> Routing:
        fw = frank_wolfe_relaxation(problem, max_iter=self.fw_iterations)
        routing = fw.as_routing(max_paths=self.s)
        return self._repair(problem, routing)

    # ------------------------------------------------------------------
    def _repair(self, problem: RoutingProblem, routing: Routing) -> Routing:
        mesh = problem.mesh
        power = problem.power
        bw = power.bandwidth
        # mutable view: per comm, moves -> rate
        shares: List[Dict[str, float]] = [
            {f.path.moves: f.rate for f in fl} for fl in routing.flows
        ]
        loads = routing.link_loads().copy()

        def links_of(i: int, moves: str) -> np.ndarray:
            return Path(mesh, problem.comms[i].src, problem.comms[i].snk,
                        moves).link_ids

        for _ in range(self.repair_steps):
            worst = int(np.argmax(loads))
            excess = loads[worst] - bw
            if excess <= bw * 1e-12:
                break
            # the heaviest flow crossing the worst link
            best = None  # (rate, i, moves)
            for i, sh in enumerate(shares):
                for moves, rate in sh.items():
                    if worst in set(int(x) for x in links_of(i, moves)):
                        if best is None or rate > best[0]:
                            best = (rate, i, moves)
            if best is None:
                break  # nothing crosses it (stale view) — cannot repair
            rate, i, moves = best
            move_amount = min(rate, excess)
            # candidate targets: the comm's other open paths, plus (if the
            # support has room) the cheapest fresh path by marginal cost
            grad = power.p0 * power.alpha * (
                np.maximum(loads, 0.0) / power.freq_unit
            ) ** (power.alpha - 1) / power.freq_unit
            grad[worst] = np.inf  # never route the moved rate back
            targets = [m for m in shares[i] if m != moves]
            if len(shares[i]) < self.s:
                try:
                    fresh, _ = _shortest_moves(problem.dag(i), grad)
                except InvalidParameterError:
                    fresh = None  # every alternative crosses the worst link
                if fresh is not None and fresh not in shares[i]:
                    targets.append(fresh)
            best_t, best_cost = None, np.inf
            for t in targets:
                lids = links_of(i, t)
                if worst in set(int(x) for x in lids):
                    continue
                cost = float(grad[lids].sum())
                if cost < best_cost:
                    best_t, best_cost = t, cost
            if best_t is None:
                # this flow cannot be moved; damp it from consideration by
                # moving on (other links may still be repairable)
                loads_sorted = np.argsort(-loads)
                moved = False
                for cand in loads_sorted[1:]:
                    if loads[cand] > bw * (1 + 1e-12):
                        worst = int(cand)
                        moved = True
                        break
                if not moved:
                    break
                continue
            old_lids = links_of(i, moves)
            new_lids = links_of(i, best_t)
            loads[old_lids] -= move_amount
            loads[new_lids] += move_amount
            shares[i][best_t] = shares[i].get(best_t, 0.0) + move_amount
            if rate - move_amount <= problem.comms[i].rate * 1e-12:
                del shares[i][moves]
            else:
                shares[i][moves] = rate - move_amount

        flows = []
        for i, sh in enumerate(shares):
            comm = problem.comms[i]
            total = sum(sh.values())
            flows.append(
                [
                    RoutedFlow(
                        Path(mesh, comm.src, comm.snk, m),
                        comm.rate * w / total,
                    )
                    for m, w in sorted(sh.items(), key=lambda kv: -kv[1])
                ]
            )
        return Routing(problem, flows)
