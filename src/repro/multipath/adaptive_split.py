"""ASR — adaptive split repair: split only where single paths fail.

The paper restricts its heuristics to single paths "because of the
overhead incurred by routing a given communication across several paths",
yet its conclusion asks for multi-path heuristics because splitting may
be the only way to route a constrained instance.  This heuristic takes
the practical middle ground:

1. run a (configurable) single-path heuristic;
2. while some link is overloaded, take the largest communication crossing
   the most overloaded link and *split it once*: move the rate fraction
   that repairs the overload onto its best alternative two-bend path
   (evaluated under graded power), within the per-communication budget
   of ``s`` paths;
3. stop when the routing is valid, no overloaded link has a splittable
   communication left, or the split budget is exhausted everywhere.

Most communications therefore keep one path (no reassembly overhead);
splitting is paid only by the few flows whose congestion demands it —
and the result records exactly how many.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.core.routing import RoutedFlow, Routing
from repro.heuristics.base import get_heuristic
from repro.mesh.moves import two_bend_moves
from repro.mesh.paths import Path
from repro.multipath.base import MultiPathHeuristic
from repro.utils.validation import InvalidParameterError


class AdaptiveSplitRepair(MultiPathHeuristic):
    """Split-on-demand repair of a single-path routing.

    Parameters
    ----------
    s:
        Split budget per communication (>= 2 for any repair to happen).
    init:
        Registered single-path heuristic providing the starting routing
        ("XYI" default: the best unconstrained heuristic of the paper).
    max_repairs:
        Hard cap on split operations (defends against pathological
        instances; generous by default).
    """

    name = "ASR"

    def __init__(self, s: int = 2, init: str = "XYI", max_repairs: int = 256):
        super().__init__(s)
        if max_repairs < 1:
            raise InvalidParameterError(
                f"max_repairs must be >= 1, got {max_repairs}"
            )
        self.init = init
        self.max_repairs = max_repairs

    # ------------------------------------------------------------------
    def _route(self, problem: RoutingProblem) -> Routing:
        mesh = problem.mesh
        power = problem.power
        start = get_heuristic(self.init).solve(problem).routing
        flows: List[List[RoutedFlow]] = [
            list(fl) for fl in start.flows
        ]
        loads = start.link_loads().copy()
        bw = power.bandwidth

        for _ in range(self.max_repairs):
            over = loads - bw
            lid = int(np.argmax(over))
            if over[lid] <= bw * 1e-12:
                break  # valid
            repaired = self._repair_link(problem, flows, loads, lid)
            if not repaired:
                # try the next most overloaded links before giving up
                order = np.argsort(loads)[::-1]
                for cand in order:
                    cand = int(cand)
                    if loads[cand] <= bw * (1 + 1e-12):
                        break
                    if cand != lid and self._repair_link(
                        problem, flows, loads, cand
                    ):
                        repaired = True
                        break
                if not repaired:
                    break  # no overloaded link is repairable
        return Routing(problem, flows)

    # ------------------------------------------------------------------
    def _repair_link(
        self,
        problem: RoutingProblem,
        flows: List[List[RoutedFlow]],
        loads: np.ndarray,
        lid: int,
    ) -> bool:
        """Split one flow off ``lid``; returns True when progress was made."""
        mesh = problem.mesh
        power = problem.power
        bw = power.bandwidth
        excess = loads[lid] - bw

        # candidate flows over this link, largest rate first, that still
        # have split budget and at least one alternative two-bend path
        cands: List[Tuple[float, int, int]] = []  # (rate, comm, flow idx)
        for i, fl in enumerate(flows):
            if len(fl) >= self.s:
                continue
            for j, f in enumerate(fl):
                if f.path.uses_link(lid):
                    cands.append((f.rate, i, j))
        cands.sort(reverse=True)

        for rate, i, j in cands:
            flow = flows[i][j]
            alt = self._best_alternative(
                problem, loads, flow.path, lid, rate, excess
            )
            if alt is None:
                continue
            new_path, moved = alt
            # commit: shrink (or remove) the old flow, add the new one
            for l in flow.path.link_ids:
                loads[l] -= moved
            for l in new_path.link_ids:
                loads[l] += moved
            remaining = flow.rate - moved
            if remaining > bw * 1e-12:
                flows[i][j] = RoutedFlow(path=flow.path, rate=remaining)
                flows[i].append(RoutedFlow(path=new_path, rate=moved))
            else:
                flows[i][j] = RoutedFlow(path=new_path, rate=flow.rate)
            return True
        return False

    def _best_alternative(
        self,
        problem: RoutingProblem,
        loads: np.ndarray,
        path: Path,
        lid: int,
        rate: float,
        excess: float,
    ) -> Optional[Tuple[Path, float]]:
        """Cheapest two-bend detour avoiding ``lid`` and how much to move.

        Moves the smaller of (the flow's rate) and (the excess plus a 5%
        margin), but only onto a path whose own links keep enough room —
        a detour that creates a new overload is rejected.
        """
        mesh = problem.mesh
        power = problem.power
        bw = power.bandwidth
        src, snk = path.src, path.snk
        want = min(rate, excess * 1.05 + bw * 1e-9)
        if want <= 0:
            return None

        best: Optional[Tuple[float, float, Path, float]] = None
        for moves in two_bend_moves(src, snk):
            cand = Path(mesh, src, snk, moves)
            if cand.uses_link(lid) or cand.moves == path.moves:
                continue
            # the candidate can absorb only its own headroom; a partial
            # move still makes progress (later repairs continue)
            avail = float(bw - loads[cand.link_ids].max())
            moved = min(want, avail)
            if moved <= bw * 1e-9:
                continue  # no room at all on this detour
            new_loads = loads[cand.link_ids] + moved
            cost = float(
                np.sum(power.link_power_graded(new_loads))
                - np.sum(power.link_power_graded(loads[cand.link_ids]))
            )
            # prefer candidates that relieve more, then cheaper ones
            key = (-moved, cost)
            if best is None or key < (best[0], best[1]):
                best = (-moved, cost, cand, moved)
        if best is None:
            return None
        return best[2], best[3]
