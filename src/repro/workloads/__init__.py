"""Workload generators for the Section 6 simulations and beyond.

* :mod:`repro.workloads.random_uniform` — the paper's random workloads:
  uniformly random endpoint pairs with uniformly drawn rates, plus the
  fixed-average-weight variant of Figure 8.
* :mod:`repro.workloads.length_targeted` — Figure 9's workloads whose
  Manhattan length concentrates "around the target average length".
* :mod:`repro.workloads.patterns` — classic NoC traffic patterns
  (transpose, bit-complement, bit-reverse, shuffle, tornado, hotspot,
  neighbour) for the example applications.
* :mod:`repro.workloads.taskgraph` — synthetic multi-application task
  graphs mapped onto the CMP, the system-level motivation of Section 1.
* :mod:`repro.workloads.apps` — the published multimedia task graphs of
  the NoC mapping literature (VOPD, MPEG-4, MWD, PIP).
* :mod:`repro.workloads.mapping` — bandwidth-aware task placement
  (NMAP-style greedy, simulated annealing, per-application regions).
"""

from repro.workloads.random_uniform import (
    uniform_random_workload,
    fixed_weight_workload,
    single_pair_workload,
)
from repro.workloads.length_targeted import length_targeted_workload, max_length
from repro.workloads.patterns import (
    transpose_pattern,
    bit_complement_pattern,
    bit_reverse_pattern,
    shuffle_pattern,
    tornado_pattern,
    hotspot_pattern,
    neighbor_pattern,
)
from repro.workloads.taskgraph import (
    TaskGraph,
    pipeline_app,
    stencil_app,
    fork_join_app,
    random_dag_app,
    map_applications,
    row_major_placement,
    random_placement,
)
from repro.workloads.apps import (
    PUBLISHED_APPS,
    mpeg4_app,
    mwd_app,
    pip_app,
    published_app,
    vopd_app,
)
from repro.workloads.mapping import (
    annealed_placement,
    bandwidth_aware_placement,
    placement_cost,
    region_split,
)

__all__ = [
    "uniform_random_workload",
    "fixed_weight_workload",
    "single_pair_workload",
    "length_targeted_workload",
    "max_length",
    "transpose_pattern",
    "bit_complement_pattern",
    "bit_reverse_pattern",
    "shuffle_pattern",
    "tornado_pattern",
    "hotspot_pattern",
    "neighbor_pattern",
    "TaskGraph",
    "pipeline_app",
    "stencil_app",
    "fork_join_app",
    "random_dag_app",
    "map_applications",
    "row_major_placement",
    "random_placement",
    "PUBLISHED_APPS",
    "published_app",
    "vopd_app",
    "mpeg4_app",
    "mwd_app",
    "pip_app",
    "bandwidth_aware_placement",
    "annealed_placement",
    "placement_cost",
    "region_split",
]
