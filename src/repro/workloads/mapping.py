"""Bandwidth-aware task-to-core mapping.

The paper takes the mapping as given ("each task is already mapped to a
core") — but *which* mapping determines how hard the routing problem is.
This module provides the standard mapping ladder so experiments can
control that input:

* :func:`bandwidth_aware_placement` — NMAP-style constructive greedy:
  seed the most communicative task near the centre of the region, then
  repeatedly place the unplaced task with the largest bandwidth to
  already-placed tasks onto the free core minimising rate-weighted
  Manhattan distance;
* :func:`annealed_placement` — simulated-annealing refinement over task
  swaps/relocations, minimising the same Σ rate × distance objective
  (the standard mapping cost, and a lower bound proxy on any routing's
  dynamic power);
* :func:`region_split` — carve a mesh into per-application rectangular
  regions (greedy guillotine), so several applications can each be
  mapped compactly, the multi-application scenario of Section 1.

All placements return core lists compatible with
:func:`repro.workloads.taskgraph.map_applications`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mesh.topology import Mesh
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError
from repro.workloads.taskgraph import TaskGraph

Coord = Tuple[int, int]


def _symmetric_bandwidth(app: TaskGraph) -> Dict[Tuple[int, int], float]:
    """Undirected task-pair bandwidth (routing cost is direction-blind)."""
    bw: Dict[Tuple[int, int], float] = {}
    for (a, b), rate in app.edges.items():
        key = (min(a, b), max(a, b))
        bw[key] = bw.get(key, 0.0) + rate
    return bw


def placement_cost(app: TaskGraph, placement: Sequence[Coord]) -> float:
    """Rate-weighted total Manhattan distance of a placement.

    This is the classic mapping objective; it equals the total traffic
    crossing links under *any* shortest-path routing, and hence lower-
    bound-correlates with dynamic routing power.
    """
    if len(placement) != app.num_tasks:
        raise InvalidParameterError(
            f"{app.num_tasks} tasks but {len(placement)} cores"
        )
    cost = 0.0
    for (a, b), rate in app.edges.items():
        (ua, va), (ub, vb) = placement[a], placement[b]
        cost += rate * (abs(ua - ub) + abs(va - vb))
    return cost


def bandwidth_aware_placement(
    mesh: Mesh,
    app: TaskGraph,
    *,
    region: Optional[Sequence[Coord]] = None,
    rng: RngLike = None,
) -> List[Coord]:
    """NMAP-style greedy constructive mapping.

    Parameters
    ----------
    region:
        Candidate cores (defaults to the whole mesh); must hold at least
        ``app.num_tasks`` cores.
    rng:
        Only used to break exact ties reproducibly.
    """
    gen = ensure_rng(rng)
    free = list(region) if region is not None else list(mesh.cores())
    if len(set(free)) != len(free):
        raise InvalidParameterError("region contains duplicate cores")
    for c in free:
        mesh.check_core(*c)
    if app.num_tasks > len(free):
        raise InvalidParameterError(
            f"cannot place {app.num_tasks} tasks on {len(free)} cores"
        )
    bw = _symmetric_bandwidth(app)
    total_bw = [0.0] * app.num_tasks
    for (a, b), rate in bw.items():
        total_bw[a] += rate
        total_bw[b] += rate

    # seed: the most communicative task on the most central free core
    cu = sum(c[0] for c in free) / len(free)
    cv = sum(c[1] for c in free) / len(free)
    centre = min(free, key=lambda c: (abs(c[0] - cu) + abs(c[1] - cv)))
    first = int(np.argmax(total_bw))
    placement: Dict[int, Coord] = {first: centre}
    free.remove(centre)

    unplaced = set(range(app.num_tasks)) - {first}
    while unplaced:
        # next task: largest bandwidth to the placed set (total bw breaks ties)
        def attraction(t: int) -> Tuple[float, float]:
            s = 0.0
            for (a, b), rate in bw.items():
                if a == t and b in placement:
                    s += rate
                elif b == t and a in placement:
                    s += rate
            return (s, total_bw[t])

        task = max(sorted(unplaced), key=attraction)
        # best core: minimise rate-weighted distance to placed neighbours
        best_cores: List[Coord] = []
        best_cost = float("inf")
        for core in free:
            cost = 0.0
            for (a, b), rate in bw.items():
                other = None
                if a == task and b in placement:
                    other = placement[b]
                elif b == task and a in placement:
                    other = placement[a]
                if other is not None:
                    cost += rate * (
                        abs(core[0] - other[0]) + abs(core[1] - other[1])
                    )
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_cores = [core]
            elif cost <= best_cost + 1e-12:
                best_cores.append(core)
        core = best_cores[int(gen.integers(len(best_cores)))]
        placement[task] = core
        free.remove(core)
        unplaced.remove(task)
    return [placement[t] for t in range(app.num_tasks)]


def annealed_placement(
    mesh: Mesh,
    app: TaskGraph,
    *,
    region: Optional[Sequence[Coord]] = None,
    iterations: int = 3000,
    seed: RngLike = 0,
) -> List[Coord]:
    """Simulated-annealing mapping (swap / relocate moves).

    Starts from :func:`bandwidth_aware_placement` and anneals the
    Σ rate × distance objective; deterministic given ``seed``.
    """
    if iterations < 1:
        raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
    gen = ensure_rng(seed)
    cores = list(region) if region is not None else list(mesh.cores())
    placement = bandwidth_aware_placement(mesh, app, region=cores, rng=gen)
    occupied = {c: t for t, c in enumerate(placement)}
    free = [c for c in cores if c not in occupied]

    cost = placement_cost(app, placement)
    best = list(placement)
    best_cost = cost
    # temperature from the typical single-edge cost scale
    mean_rate = (
        sum(app.edges.values()) / len(app.edges) if app.edges else 1.0
    )
    temp = 2.0 * mean_rate
    cooling = (1e-3) ** (1.0 / max(1, iterations - 1))

    for _ in range(iterations):
        t = int(gen.integers(app.num_tasks))
        old = placement[t]
        if free and gen.random() < 0.3:
            new = free[int(gen.integers(len(free)))]
            swap_with = None
        else:
            new = cores[int(gen.integers(len(cores)))]
            if new == old:
                temp *= cooling
                continue
            swap_with = occupied.get(new)

        placement[t] = new
        if swap_with is not None:
            placement[swap_with] = old
        new_cost = placement_cost(app, placement)
        d = new_cost - cost
        if d <= 0 or gen.random() < math.exp(-d / max(temp, 1e-12)):
            cost = new_cost
            occupied.pop(old, None)
            occupied[new] = t
            if swap_with is not None:
                occupied[old] = swap_with
            else:
                if new in free:
                    free.remove(new)
                free.append(old)
            if cost < best_cost:
                best_cost = cost
                best = list(placement)
        else:  # revert
            placement[t] = old
            if swap_with is not None:
                placement[swap_with] = new
        temp *= cooling
    return best


def region_split(
    mesh: Mesh, sizes: Sequence[int]
) -> List[List[Coord]]:
    """Carve the mesh into disjoint rectangular regions of given sizes.

    Greedy guillotine: regions are cut as vertical strips of full-height
    columns (plus a partial column when needed), left to right.  Raises
    when the total size exceeds the mesh.
    """
    if any(s < 1 for s in sizes):
        raise InvalidParameterError(f"region sizes must be >= 1, got {sizes}")
    if sum(sizes) > mesh.num_cores:
        raise InvalidParameterError(
            f"regions of total size {sum(sizes)} exceed {mesh.num_cores} cores"
        )
    order: List[Coord] = [
        (u, v) for v in range(mesh.q) for u in range(mesh.p)
    ]  # column-major: full columns make compact strips
    regions: List[List[Coord]] = []
    k = 0
    for size in sizes:
        regions.append(order[k : k + size])
        k += size
    return regions
