"""Classic NoC traffic patterns.

Deterministic permutation/locality patterns from the on-chip-network
literature, expressed as communication sets on the paper's mesh model.
They feed the example applications and the NoC-simulator validation runs;
cores whose image coincides with themselves simply emit nothing.

Patterns over the *linearised* core id (bit-complement, bit-reverse,
shuffle) require the core count to be a power of two.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.problem import Communication
from repro.mesh.topology import Mesh
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError, check_positive

Coord = Tuple[int, int]


def _bits_of(mesh: Mesh) -> int:
    n = mesh.num_cores
    if n & (n - 1) != 0:
        raise InvalidParameterError(
            f"bit-oriented patterns need a power-of-two core count, got {n}"
        )
    return n.bit_length() - 1


def _from_permutation(mesh: Mesh, images: List[int], rate: float) -> List[Communication]:
    out = []
    for cid, img in enumerate(images):
        if img != cid:
            out.append(
                Communication(mesh.core_coords(cid), mesh.core_coords(img), rate)
            )
    return out


def transpose_pattern(mesh: Mesh, rate: float) -> List[Communication]:
    """Core ``(u, v)`` sends to ``(v, u)`` (square meshes only)."""
    check_positive("rate", rate)
    if mesh.p != mesh.q:
        raise InvalidParameterError(
            f"transpose needs a square mesh, got {mesh.p}x{mesh.q}"
        )
    out = []
    for (u, v) in mesh.cores():
        if (u, v) != (v, u):
            out.append(Communication((u, v), (v, u), rate))
    return out


def bit_complement_pattern(mesh: Mesh, rate: float) -> List[Communication]:
    """Core id ``b`` sends to ``~b`` (all address bits flipped)."""
    check_positive("rate", rate)
    bits = _bits_of(mesh)
    mask = (1 << bits) - 1
    return _from_permutation(
        mesh, [cid ^ mask for cid in range(mesh.num_cores)], rate
    )


def bit_reverse_pattern(mesh: Mesh, rate: float) -> List[Communication]:
    """Core id ``b_{k-1}..b_0`` sends to ``b_0..b_{k-1}``."""
    check_positive("rate", rate)
    bits = _bits_of(mesh)
    images = []
    for cid in range(mesh.num_cores):
        rev = 0
        for b in range(bits):
            rev |= ((cid >> b) & 1) << (bits - 1 - b)
        images.append(rev)
    return _from_permutation(mesh, images, rate)


def shuffle_pattern(mesh: Mesh, rate: float) -> List[Communication]:
    """Perfect shuffle: left-rotate the core id bits by one."""
    check_positive("rate", rate)
    bits = _bits_of(mesh)
    mask = (1 << bits) - 1
    images = [
        ((cid << 1) | (cid >> (bits - 1))) & mask for cid in range(mesh.num_cores)
    ]
    return _from_permutation(mesh, images, rate)


def tornado_pattern(mesh: Mesh, rate: float) -> List[Communication]:
    """Each core sends halfway around its row: ``(u, v) -> (u, (v + ⌈q/2⌉-... )``.

    The mesh variant of the classical ring tornado: destination column is
    ``(v + ⌊(q-1)/2⌋) mod q``.
    """
    check_positive("rate", rate)
    shift = (mesh.q - 1) // 2
    out = []
    for (u, v) in mesh.cores():
        t = (u, (v + shift) % mesh.q)
        if t != (u, v):
            out.append(Communication((u, v), t, rate))
    return out


def hotspot_pattern(
    mesh: Mesh,
    rate: float,
    *,
    hotspot: Coord | None = None,
    fraction: float = 1.0,
    rng: RngLike = None,
) -> List[Communication]:
    """Every other core sends toward one hotspot core.

    ``fraction`` of the cores participate (drawn without replacement when
    < 1); the default hotspot is the mesh centre.
    """
    check_positive("rate", rate)
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(f"fraction must lie in (0, 1], got {fraction}")
    if hotspot is None:
        hotspot = (mesh.p // 2, mesh.q // 2)
    mesh.check_core(*hotspot)
    senders = [c for c in mesh.cores() if c != hotspot]
    if fraction < 1.0:
        gen = ensure_rng(rng)
        k = max(1, int(round(fraction * len(senders))))
        idx = gen.choice(len(senders), size=k, replace=False)
        senders = [senders[int(i)] for i in sorted(idx)]
    return [Communication(s, hotspot, rate) for s in senders]


def neighbor_pattern(mesh: Mesh, rate: float) -> List[Communication]:
    """Nearest-neighbour ring sweep: each core sends one hop east (wrapping
    to the next row), modelling tightly coupled stencil exchange."""
    check_positive("rate", rate)
    out = []
    for cid in range(mesh.num_cores):
        nxt = (cid + 1) % mesh.num_cores
        if nxt != cid:
            out.append(
                Communication(mesh.core_coords(cid), mesh.core_coords(nxt), rate)
            )
    return out
