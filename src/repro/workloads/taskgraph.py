"""Task-graph applications mapped onto the CMP.

The paper's system-level setting (Section 1): "several parallel
applications executing on the CMP, and each of them has been mapped onto a
set of nodes, resulting in one or several communications between CMP
nodes".  This module provides small synthetic application task graphs
(pipelines, 2-D stencils, fork–join trees, random DAGs), placement
policies, and :func:`map_applications`, which turns mapped applications
into the flat communication set a :class:`~repro.core.problem.RoutingProblem`
consumes — "irrespective of the application that generates the
communication".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.problem import Communication
from repro.mesh.topology import Mesh
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError, check_positive

Coord = Tuple[int, int]


@dataclass(frozen=True)
class TaskGraph:
    """A DAG of tasks with per-edge bandwidth demands.

    ``edges`` maps ``(producer, consumer)`` task ids to the sustained rate
    the producer streams to the consumer.
    """

    name: str
    num_tasks: int
    edges: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise InvalidParameterError(
                f"task graph needs >= 1 task, got {self.num_tasks}"
            )
        for (a, b), rate in self.edges.items():
            if not (0 <= a < self.num_tasks and 0 <= b < self.num_tasks):
                raise InvalidParameterError(
                    f"edge ({a}, {b}) references tasks outside 0..{self.num_tasks - 1}"
                )
            if a == b:
                raise InvalidParameterError(f"self-edge on task {a}")
            check_positive(f"rate of edge ({a}, {b})", rate)


def pipeline_app(stages: int, rate: float, name: str = "pipeline") -> TaskGraph:
    """A linear streaming pipeline: stage i feeds stage i+1 at ``rate``."""
    if stages < 2:
        raise InvalidParameterError(f"pipeline needs >= 2 stages, got {stages}")
    return TaskGraph(
        name, stages, {(i, i + 1): rate for i in range(stages - 1)}
    )


def stencil_app(rows: int, cols: int, rate: float, name: str = "stencil") -> TaskGraph:
    """A 2-D halo-exchange stencil: neighbouring tiles exchange both ways."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError(f"stencil grid must be >= 1x1, got {rows}x{cols}")
    edges: Dict[Tuple[int, int], float] = {}
    for r in range(rows):
        for c in range(cols):
            t = r * cols + c
            if c + 1 < cols:
                edges[(t, t + 1)] = rate
                edges[(t + 1, t)] = rate
            if r + 1 < rows:
                edges[(t, t + cols)] = rate
                edges[(t + cols, t)] = rate
    return TaskGraph(name, rows * cols, edges)


def fork_join_app(
    workers: int, scatter_rate: float, gather_rate: float, name: str = "fork-join"
) -> TaskGraph:
    """Master scatters to ``workers`` tasks and gathers their results.

    Task 0 is the master; tasks ``1..workers`` are the workers.
    """
    if workers < 1:
        raise InvalidParameterError(f"fork-join needs >= 1 worker, got {workers}")
    edges: Dict[Tuple[int, int], float] = {}
    for w in range(1, workers + 1):
        edges[(0, w)] = scatter_rate
        edges[(w, 0)] = gather_rate
    return TaskGraph(name, workers + 1, edges)


def random_dag_app(
    num_tasks: int,
    edge_prob: float,
    rate_min: float,
    rate_max: float,
    *,
    rng: RngLike = None,
    name: str = "random-dag",
) -> TaskGraph:
    """A random layered DAG: edge ``i -> j`` (i < j) with probability ``p``."""
    if num_tasks < 2:
        raise InvalidParameterError(f"random DAG needs >= 2 tasks, got {num_tasks}")
    if not 0.0 < edge_prob <= 1.0:
        raise InvalidParameterError(f"edge_prob must lie in (0, 1], got {edge_prob}")
    gen = ensure_rng(rng)
    edges: Dict[Tuple[int, int], float] = {}
    for i in range(num_tasks):
        for j in range(i + 1, num_tasks):
            if gen.uniform() < edge_prob:
                edges[(i, j)] = float(gen.uniform(rate_min, rate_max))
    if not edges:  # guarantee at least one communication
        edges[(0, num_tasks - 1)] = float(gen.uniform(rate_min, rate_max))
    return TaskGraph(name, num_tasks, edges)


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def row_major_placement(mesh: Mesh, num_tasks: int, origin: int = 0) -> List[Coord]:
    """Place tasks on consecutive cores in row-major order from ``origin``."""
    if origin < 0 or origin + num_tasks > mesh.num_cores:
        raise InvalidParameterError(
            f"{num_tasks} tasks from origin {origin} exceed "
            f"{mesh.num_cores} cores"
        )
    return [mesh.core_coords(origin + t) for t in range(num_tasks)]


def random_placement(
    mesh: Mesh, num_tasks: int, *, rng: RngLike = None, exclude: Sequence[Coord] = ()
) -> List[Coord]:
    """Place tasks on distinct random cores (avoiding ``exclude``)."""
    gen = ensure_rng(rng)
    free = [c for c in mesh.cores() if c not in set(exclude)]
    if num_tasks > len(free):
        raise InvalidParameterError(
            f"cannot place {num_tasks} tasks on {len(free)} free cores"
        )
    idx = gen.choice(len(free), size=num_tasks, replace=False)
    return [free[int(i)] for i in idx]


def map_applications(
    apps: Sequence[TaskGraph],
    placements: Sequence[Sequence[Coord]],
    *,
    merge_parallel: bool = False,
) -> List[Communication]:
    """Flatten mapped applications into the system-level communication set.

    Parameters
    ----------
    apps, placements:
        Parallel sequences: ``placements[k][t]`` is the core of task ``t``
        of application ``k``.  Tasks of one application must sit on
        distinct cores; edges whose endpoints land on the same core are
        local and generate no traffic.
    merge_parallel:
        When True, communications sharing (src, snk) are merged by summing
        their rates (the paper routes them independently; merging is the
        natural system-level aggregation and is exposed for comparison).
    """
    if len(apps) != len(placements):
        raise InvalidParameterError(
            f"{len(apps)} apps but {len(placements)} placements"
        )
    comms: List[Communication] = []
    for app, placement in zip(apps, placements):
        if len(placement) != app.num_tasks:
            raise InvalidParameterError(
                f"application {app.name!r} has {app.num_tasks} tasks but "
                f"{len(placement)} placed cores"
            )
        if len(set(placement)) != len(placement):
            raise InvalidParameterError(
                f"application {app.name!r} maps two tasks to one core"
            )
        for (a, b), rate in sorted(app.edges.items()):
            src, snk = placement[a], placement[b]
            if src != snk:
                comms.append(Communication(src, snk, rate))
    if merge_parallel:
        merged: Dict[Tuple[Coord, Coord], float] = {}
        for c in comms:
            merged[(c.src, c.snk)] = merged.get((c.src, c.snk), 0.0) + c.rate
        comms = [
            Communication(src, snk, rate)
            for (src, snk), rate in sorted(merged.items())
        ]
    return comms
