"""Published multimedia application task graphs from the NoC literature.

The paper's setting (Section 1) is "several parallel applications
executing on the CMP, each … mapped onto a set of nodes".  The standard
concrete instances of that setting are the multimedia communication task
graphs that the NoC mapping literature has evaluated for two decades:

* :func:`vopd_app` — Video Object Plane Decoder, 12 tasks (Bertozzi &
  Benini's NoC synthesis flow; Murali & De Micheli's NMAP);
* :func:`mpeg4_app` — MPEG-4 decoder with its SDRAM hub, 12 tasks
  (Van der Tol & Jaspers' mapping study);
* :func:`mwd_app` — Multi-Window Display, 12 tasks (Hu & Marculescu's
  energy-aware mapping);
* :func:`pip_app` — Picture-In-Picture, 8 tasks.

Edge rates are the MB/s values commonly tabulated in that literature;
where circulating variants disagree in minor entries we pin one coherent
version (the structure — hub nodes, heavy pipeline spines, light control
edges — is what exercises the routing).  Rates are converted to the Mb/s
unit of :class:`~repro.core.power.PowerModel.kim_horowitz` with an
adjustable ``scale``.  The faithful bytes→bits factor is 8.0, but MPEG-4's
910 MB/s hub edge would then exceed a 3.5 Gb/s link outright (no
single-path routing could ever carry it), so the default is ``scale=2.0``:
every published edge stays within one link while several concurrent
applications still produce the constrained regimes of Section 6.  Pass
``scale=8.0`` to study the bandwidth-infeasible faithful rates (e.g. with
the multi-path solvers).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.utils.validation import InvalidParameterError, check_positive
from repro.workloads.taskgraph import TaskGraph


def _scaled(
    name: str,
    names: Tuple[str, ...],
    edges_mbps: Dict[Tuple[str, str], float],
    scale: float,
) -> TaskGraph:
    check_positive("scale", scale)
    index = {n: i for i, n in enumerate(names)}
    edges = {}
    for (a, b), mb_s in edges_mbps.items():
        if a not in index or b not in index:
            raise InvalidParameterError(f"unknown task in edge ({a}, {b})")
        edges[(index[a], index[b])] = mb_s * scale
    return TaskGraph(name, len(names), edges)


#: task names of :func:`vopd_app`, in index order
VOPD_TASKS = (
    "vld",
    "run_le_dec",
    "inv_scan",
    "ac_dc_pred",
    "stripe_mem",
    "iquant",
    "idct",
    "up_samp",
    "vop_rec",
    "pad",
    "vop_mem",
    "arm",
)

#: VOPD edge bandwidths in MB/s
VOPD_EDGES_MBPS: Dict[Tuple[str, str], float] = {
    ("vld", "run_le_dec"): 70.0,
    ("run_le_dec", "inv_scan"): 362.0,
    ("inv_scan", "ac_dc_pred"): 362.0,
    ("ac_dc_pred", "stripe_mem"): 27.0,
    ("stripe_mem", "iquant"): 27.0,
    ("ac_dc_pred", "iquant"): 357.0,
    ("iquant", "idct"): 353.0,
    ("idct", "up_samp"): 300.0,
    ("up_samp", "vop_rec"): 313.0,
    ("vop_rec", "pad"): 313.0,
    ("pad", "vop_mem"): 313.0,
    ("vop_mem", "pad"): 94.0,
    ("arm", "idct"): 16.0,
    ("vop_mem", "arm"): 16.0,
}


def vopd_app(*, scale: float = 2.0, name: str = "vopd") -> TaskGraph:
    """Video Object Plane Decoder (12 tasks, 14 edges).

    A nearly linear decoding spine (run-length decode → inverse scan →
    AC/DC prediction → dequantisation → IDCT → upsampling → VOP
    reconstruction → padding) with a stripe-memory side loop and a light
    ARM control pair — the canonical "pipeline with memory detours" CTG.
    """
    return _scaled(name, VOPD_TASKS, VOPD_EDGES_MBPS, scale)


#: task names of :func:`mpeg4_app`, in index order
MPEG4_TASKS = (
    "vu",
    "au",
    "med_cpu",
    "idct",
    "sdram",
    "sram1",
    "sram2",
    "rast",
    "up_samp",
    "bab",
    "risc",
    "adsp",
)

#: MPEG-4 decoder edge bandwidths in MB/s (SDRAM-hub structure)
MPEG4_EDGES_MBPS: Dict[Tuple[str, str], float] = {
    ("vu", "sdram"): 190.0,
    ("au", "sdram"): 0.5,
    ("med_cpu", "sdram"): 60.0,
    ("sdram", "up_samp"): 910.0,
    ("up_samp", "rast"): 500.0,
    ("sdram", "idct"): 250.0,
    ("idct", "sram2"): 0.5,
    ("sdram", "risc"): 500.0,
    ("risc", "sram1"): 25.0,
    ("risc", "sram2"): 50.0,
    ("sram2", "bab"): 0.5,
    ("bab", "sdram"): 32.0,
    ("adsp", "sdram"): 0.5,
    ("sdram", "au"): 0.5,
}


def mpeg4_app(*, scale: float = 2.0, name: str = "mpeg4") -> TaskGraph:
    """MPEG-4 decoder (12 tasks) — the classic SDRAM-hub hotspot CTG.

    Unlike VOPD's pipeline, most traffic funnels through one shared
    memory (910 MB/s to the upsampler alone), which makes the mapping
    and routing around the hub the whole game.
    """
    return _scaled(name, MPEG4_TASKS, MPEG4_EDGES_MBPS, scale)


#: task names of :func:`mwd_app`, in index order
MWD_TASKS = (
    "in",
    "nr",
    "mem1",
    "vs",
    "hs",
    "mem2",
    "hvs",
    "jug1",
    "mem3",
    "jug2",
    "se",
    "blend",
)

#: Multi-Window Display edge bandwidths in MB/s
MWD_EDGES_MBPS: Dict[Tuple[str, str], float] = {
    ("in", "nr"): 64.0,
    ("in", "hs"): 128.0,
    ("nr", "mem1"): 64.0,
    ("nr", "hvs"): 64.0,
    ("mem1", "hvs"): 64.0,
    ("hs", "vs"): 96.0,
    ("hvs", "vs"): 96.0,
    ("vs", "jug1"): 96.0,
    ("vs", "mem2"): 96.0,
    ("mem2", "jug2"): 96.0,
    ("jug1", "mem3"): 64.0,
    ("jug2", "mem3"): 64.0,
    ("mem3", "se"): 64.0,
    ("se", "blend"): 64.0,
}


def mwd_app(*, scale: float = 2.0, name: str = "mwd") -> TaskGraph:
    """Multi-Window Display (12 tasks) — two filter chains re-joining."""
    return _scaled(name, MWD_TASKS, MWD_EDGES_MBPS, scale)


#: task names of :func:`pip_app`, in index order
PIP_TASKS = (
    "inp_mem_a",
    "hs",
    "vs",
    "jug1",
    "inp_mem_b",
    "jug2",
    "mem",
    "op_disp",
)

#: Picture-In-Picture edge bandwidths in MB/s
PIP_EDGES_MBPS: Dict[Tuple[str, str], float] = {
    ("inp_mem_a", "hs"): 128.0,
    ("hs", "vs"): 64.0,
    ("vs", "jug1"): 64.0,
    ("jug1", "mem"): 64.0,
    ("inp_mem_b", "jug2"): 64.0,
    ("jug2", "mem"): 64.0,
    ("mem", "op_disp"): 64.0,
}


def pip_app(*, scale: float = 2.0, name: str = "pip") -> TaskGraph:
    """Picture-In-Picture (8 tasks) — two small chains into one memory."""
    return _scaled(name, PIP_TASKS, PIP_EDGES_MBPS, scale)


#: every published application by name
PUBLISHED_APPS = {
    "vopd": vopd_app,
    "mpeg4": mpeg4_app,
    "mwd": mwd_app,
    "pip": pip_app,
}


def published_app(name: str, *, scale: float = 2.0) -> TaskGraph:
    """Build a published application by registry name."""
    try:
        factory = PUBLISHED_APPS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown application {name!r}; available: {sorted(PUBLISHED_APPS)}"
        ) from None
    return factory(scale=scale)
