"""Random endpoint workloads (the paper's Figures 7 and 8).

"We use random source and sink nodes for the communications" — endpoints
are drawn uniformly among cores, rejecting self-pairs; rates are either
drawn uniformly from an interval (Figure 7) or pinned to a common average
weight (Figure 8; see DESIGN.md for why equal weights reproduce the
paper's sharp 1750 Mb/s breakdown).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.problem import Communication
from repro.mesh.topology import Mesh
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError, check_positive

Coord = Tuple[int, int]


def _random_pair(mesh: Mesh, rng) -> Tuple[Coord, Coord]:
    """A uniformly random ordered pair of distinct cores."""
    if mesh.num_cores < 2:
        raise InvalidParameterError(
            f"mesh {mesh.p}x{mesh.q} has fewer than 2 cores"
        )
    while True:
        s = int(rng.integers(mesh.num_cores))
        t = int(rng.integers(mesh.num_cores))
        if s != t:
            return mesh.core_coords(s), mesh.core_coords(t)


def uniform_random_workload(
    mesh: Mesh,
    n: int,
    rate_min: float,
    rate_max: float,
    *,
    rng: RngLike = None,
) -> List[Communication]:
    """``n`` communications with uniform endpoints and ``U(min, max)`` rates."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    check_positive("rate_min", rate_min)
    if rate_max < rate_min:
        raise InvalidParameterError(
            f"rate_max ({rate_max}) must be >= rate_min ({rate_min})"
        )
    gen = ensure_rng(rng)
    out = []
    for _ in range(n):
        src, snk = _random_pair(mesh, gen)
        out.append(Communication(src, snk, float(gen.uniform(rate_min, rate_max))))
    return out


def fixed_weight_workload(
    mesh: Mesh,
    n: int,
    weight: float,
    *,
    jitter: float = 0.0,
    rng: RngLike = None,
) -> List[Communication]:
    """``n`` communications of (nearly) equal weight — the Figure 8 sweep.

    ``jitter`` spreads rates uniformly over ``weight * [1-jitter, 1+jitter]``
    for sensitivity studies; the default 0 keeps them exactly equal, which
    reproduces the paper's observation that all heuristics break down
    sharply once the common weight crosses ``BW/2``.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    check_positive("weight", weight)
    if not 0.0 <= jitter < 1.0:
        raise InvalidParameterError(f"jitter must lie in [0, 1), got {jitter}")
    gen = ensure_rng(rng)
    out = []
    for _ in range(n):
        src, snk = _random_pair(mesh, gen)
        w = weight if jitter == 0.0 else float(
            gen.uniform(weight * (1 - jitter), weight * (1 + jitter))
        )
        out.append(Communication(src, snk, w))
    return out


def single_pair_workload(
    mesh: Mesh,
    n: int,
    total_rate: float,
    *,
    src: Coord = (0, 0),
    snk: Coord | None = None,
) -> List[Communication]:
    """``n`` equal communications sharing one source and one sink.

    The Theorem 1 scenario: the aggregate ``total_rate`` is divided into
    ``n`` identical communications from ``src`` to ``snk`` (the opposite
    corner by default).
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    check_positive("total_rate", total_rate)
    if snk is None:
        snk = (mesh.p - 1, mesh.q - 1)
    mesh.check_core(*src)
    mesh.check_core(*snk)
    return [Communication(src, snk, total_rate / n) for _ in range(n)]
