"""Length-targeted workloads (the paper's Figure 9).

"Now we draw only communications whose length is around the target average
length": the source is uniform over the cores, and the sink is drawn
uniformly among cores whose Manhattan distance to the source falls within
``tolerance`` of the target (defaulting to ±1, the loosest reading that
keeps every target in 2..p+q-2 satisfiable from every source on an 8×8
chip).
"""

from __future__ import annotations

from typing import List

from repro.core.problem import Communication
from repro.mesh.topology import Mesh
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import InvalidParameterError, check_positive


def max_length(mesh: Mesh) -> int:
    """Largest possible Manhattan distance on the mesh."""
    return (mesh.p - 1) + (mesh.q - 1)


def length_targeted_workload(
    mesh: Mesh,
    n: int,
    target_length: int,
    rate_min: float,
    rate_max: float,
    *,
    tolerance: int = 1,
    rng: RngLike = None,
) -> List[Communication]:
    """``n`` communications of Manhattan length ``target_length ± tolerance``.

    Raises
    ------
    InvalidParameterError
        When no pair of cores realises a length within the tolerance
        window.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    check_positive("rate_min", rate_min)
    if rate_max < rate_min:
        raise InvalidParameterError(
            f"rate_max ({rate_max}) must be >= rate_min ({rate_min})"
        )
    if tolerance < 0:
        raise InvalidParameterError(f"tolerance must be >= 0, got {tolerance}")
    lo = max(1, target_length - tolerance)
    hi = min(max_length(mesh), target_length + tolerance)
    if lo > hi:
        raise InvalidParameterError(
            f"no communication of length {target_length}±{tolerance} fits a "
            f"{mesh.p}x{mesh.q} mesh (max length {max_length(mesh)})"
        )
    gen = ensure_rng(rng)
    out: List[Communication] = []
    while len(out) < n:
        s = mesh.core_coords(int(gen.integers(mesh.num_cores)))
        candidates = [
            (u, v)
            for u in range(mesh.p)
            for v in range(mesh.q)
            if lo <= abs(u - s[0]) + abs(v - s[1]) <= hi
        ]
        if not candidates:
            continue  # this source cannot reach the window; redraw
        t = candidates[int(gen.integers(len(candidates)))]
        out.append(
            Communication(s, t, float(gen.uniform(rate_min, rate_max)))
        )
    return out
