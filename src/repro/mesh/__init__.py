"""2-D mesh substrate: topology, diagonal geometry, Manhattan paths.

This package is the platform model of the paper's Section 3.1: a ``p × q``
grid of cores with **two unidirectional links** between every pair of
neighbouring cores.  Everything above it (power model, heuristics, theory)
speaks in terms of the dense integer *link ids* defined by
:class:`repro.mesh.topology.Mesh`, so link loads can live in flat NumPy
vectors.

Coordinates are 0-indexed ``(u, v)`` with ``u`` the row (0 at the top,
growing "south") and ``v`` the column (0 at the left, growing "east").  The
paper uses 1-indexed coordinates; the mapping is ``C_{u+1, v+1}``.
"""

from repro.mesh.topology import Mesh, Orientation
from repro.mesh.diagonals import (
    direction_of,
    direction_steps,
    diag_index,
    diagonal_cores,
    band_links_full,
    band_link_count,
)
from repro.mesh.moves import (
    MOVE_H,
    MOVE_V,
    xy_moves,
    yx_moves,
    two_bend_moves,
    moves_to_cores,
    moves_to_links,
    relocate_h_after,
    relocate_v_before,
)
from repro.mesh.paths import Path, CommDag, count_paths, manhattan_path_count
from repro.mesh.kernel import (
    FlatRoutingKernel,
    links_from_vmask,
    moves_to_links_array,
    moves_to_vmask,
    stack_vmasks,
)
from repro.mesh.batch import LoadLedger, flip_corners

__all__ = [
    "Mesh",
    "Orientation",
    "direction_of",
    "direction_steps",
    "diag_index",
    "diagonal_cores",
    "band_links_full",
    "band_link_count",
    "MOVE_H",
    "MOVE_V",
    "xy_moves",
    "yx_moves",
    "two_bend_moves",
    "moves_to_cores",
    "moves_to_links",
    "relocate_h_after",
    "relocate_v_before",
    "Path",
    "CommDag",
    "count_paths",
    "manhattan_path_count",
    "FlatRoutingKernel",
    "links_from_vmask",
    "moves_to_links_array",
    "moves_to_vmask",
    "stack_vmasks",
    "LoadLedger",
    "flip_corners",
]
