"""Mesh topology with dense link ids and vectorised link metadata.

The CMP platform of the paper (Section 3.1): ``p × q`` homogeneous cores on
a rectangular grid, with a pair of unidirectional links between each pair of
vertically or horizontally adjacent cores.

Link ids are dense integers laid out orientation-major so that the load of
every link in the chip fits in one flat ``numpy`` vector:

* ``E`` links ``(u, v) -> (u, v+1)`` occupy ids ``[0, p*(q-1))``,
* ``W`` links ``(u, v) -> (u, v-1)`` occupy the next ``p*(q-1)`` ids,
* ``S`` links ``(u, v) -> (u+1, v)`` the next ``(p-1)*q`` ids,
* ``N`` links ``(u, v) -> (u-1, v)`` the last ``(p-1)*q`` ids.

All id arithmetic is O(1); the reverse mapping and per-link coordinate
arrays are precomputed once per mesh.

Beyond the paper's pristine fabric, a mesh may carry an immutable *link
profile* for the scenario engine (:mod:`repro.scenarios`):

* ``link_mask`` — per-link availability; a ``False`` entry is a faulty /
  disabled link that no routing may use (any traffic on it makes the
  routing invalid);
* ``link_scale`` — per-link power multiplier modelling heterogeneous or
  derated regions (hotspot stripes, border derating): link ``l`` dissipates
  ``link_scale[l]`` times the homogeneous model's power for its load.

Both default to ``None`` — the pristine ``(p, q)`` mesh — in which case no
arrays are allocated, equality/hash reduce to ``(p, q)`` exactly as before
and every fast path in the kernel and heuristics stays untouched.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

#: a dead link named either by id or by its (tail, head) coordinates
LinkRef = Union[int, Tuple[Coord, Coord]]


class Orientation(enum.Enum):
    """Direction a unidirectional link points to, in grid terms."""

    EAST = "E"  #: column + 1
    WEST = "W"  #: column - 1
    SOUTH = "S"  #: row + 1
    NORTH = "N"  #: row - 1

    @property
    def is_horizontal(self) -> bool:
        return self in (Orientation.EAST, Orientation.WEST)


class Mesh:
    """A ``p × q`` mesh CMP with two unidirectional links per adjacency.

    Parameters
    ----------
    p:
        Number of rows (``u`` coordinate runs over ``0..p-1``).
    q:
        Number of columns (``v`` coordinate runs over ``0..q-1``).

    link_mask:
        Optional per-link availability vector (``True`` = usable).  ``None``
        (default) means all links are available; an all-``True`` vector is
        normalised to ``None``.
    link_scale:
        Optional per-link power multiplier vector (all entries ``> 0``).
        ``None`` (default) means homogeneous; an all-ones vector is
        normalised to ``None``.

    Notes
    -----
    The mesh is immutable.  Two pristine meshes with equal ``(p, q)``
    compare equal and hash equally, so meshes can key caches; profiled
    meshes additionally compare their mask/scale vectors bit for bit.
    """

    __slots__ = (
        "p",
        "q",
        "num_cores",
        "num_links",
        "link_mask",
        "link_scale",
        "_dead_mask",
        "_hash",
        "_ne",
        "_ns",
        "_tail_u",
        "_tail_v",
        "_head_u",
        "_head_v",
        "_horizontal_mask",
    )

    def __init__(
        self,
        p: int,
        q: int,
        link_mask: Optional[np.ndarray] = None,
        link_scale: Optional[np.ndarray] = None,
    ):
        if not (isinstance(p, (int, np.integer)) and isinstance(q, (int, np.integer))):
            raise InvalidParameterError(f"p and q must be integers, got {p!r}, {q!r}")
        if p < 1 or q < 1:
            raise InvalidParameterError(f"mesh dimensions must be >= 1, got {p}x{q}")
        self.p = int(p)
        self.q = int(q)
        self.num_cores = self.p * self.q
        self._ne = self.p * (self.q - 1)  # count of E (also of W) links
        self._ns = (self.p - 1) * self.q  # count of S (also of N) links
        self.num_links = 2 * (self._ne + self._ns)
        self._build_link_arrays()
        self._init_profile(link_mask, link_scale)

    def _build_link_arrays(self) -> None:
        """Precompute tail/head coordinates and orientation per link id."""
        n = self.num_links
        tail_u = np.empty(n, dtype=np.int64)
        tail_v = np.empty(n, dtype=np.int64)
        head_u = np.empty(n, dtype=np.int64)
        head_v = np.empty(n, dtype=np.int64)
        horiz = np.zeros(n, dtype=bool)
        for lid in range(n):
            (u, v), (u2, v2) = self._endpoints_slow(lid)
            tail_u[lid], tail_v[lid] = u, v
            head_u[lid], head_v[lid] = u2, v2
            horiz[lid] = u == u2
        for arr in (tail_u, tail_v, head_u, head_v, horiz):
            arr.setflags(write=False)
        self._tail_u, self._tail_v = tail_u, tail_v
        self._head_u, self._head_v = head_u, head_v
        self._horizontal_mask = horiz

    def _init_profile(
        self,
        link_mask: Optional[np.ndarray],
        link_scale: Optional[np.ndarray],
    ) -> None:
        """Validate, normalise and freeze the optional link profile."""
        n = self.num_links
        if link_mask is not None:
            mask = np.asarray(link_mask)
            if mask.shape != (n,):
                raise InvalidParameterError(
                    f"link_mask must have shape ({n},), got {mask.shape}"
                )
            if mask.dtype != bool:
                raise InvalidParameterError(
                    f"link_mask must be boolean, got dtype {mask.dtype}"
                )
            if mask.all():
                link_mask = None  # pristine in disguise
            else:
                link_mask = mask.copy()
                link_mask.setflags(write=False)
        if link_scale is not None:
            scale = np.asarray(link_scale, dtype=np.float64)
            if scale.shape != (n,):
                raise InvalidParameterError(
                    f"link_scale must have shape ({n},), got {scale.shape}"
                )
            if not np.all(np.isfinite(scale)) or np.any(scale <= 0):
                raise InvalidParameterError(
                    "link_scale entries must be finite and > 0"
                )
            if np.all(scale == 1.0):
                link_scale = None  # homogeneous in disguise
            else:
                link_scale = scale.copy()
                link_scale.setflags(write=False)
        self.link_mask = link_mask
        self.link_scale = link_scale
        if link_mask is None:
            self._dead_mask = None
        else:
            dead = ~link_mask
            dead.setflags(write=False)
            self._dead_mask = dead
        key: Tuple = ("Mesh", self.p, self.q)
        if link_mask is not None or link_scale is not None:
            key = key + (
                None if link_mask is None else link_mask.tobytes(),
                None if link_scale is None else link_scale.tobytes(),
            )
        self._hash = hash(key)

    # ------------------------------------------------------------------
    # link profile (scenario engine)
    # ------------------------------------------------------------------
    @property
    def is_pristine(self) -> bool:
        """True when the mesh carries no fault mask and no power scaling."""
        return self.link_mask is None and self.link_scale is None

    @property
    def dead_mask(self) -> Optional[np.ndarray]:
        """Boolean vector marking faulty links, or ``None`` when none are."""
        return self._dead_mask

    def is_alive(self, lid: int) -> bool:
        """True when link ``lid`` is available for routing."""
        if not 0 <= lid < self.num_links:
            raise InvalidParameterError(
                f"link id {lid} out of range [0, {self.num_links})"
            )
        return self.link_mask is None or bool(self.link_mask[lid])

    def dead_link_ids(self) -> List[int]:
        """Sorted ids of every faulty link (empty for pristine meshes)."""
        if self._dead_mask is None:
            return []
        return [int(l) for l in np.nonzero(self._dead_mask)[0]]

    def _resolve_link(self, ref: LinkRef) -> int:
        if isinstance(ref, (int, np.integer)):
            lid = int(ref)
            if not 0 <= lid < self.num_links:
                raise InvalidParameterError(
                    f"link id {lid} out of range [0, {self.num_links})"
                )
            return lid
        tail, head = ref
        return self.link_between(tuple(tail), tuple(head))

    def with_faults(self, dead: Iterable[LinkRef]) -> "Mesh":
        """Copy of this mesh with the given links additionally disabled.

        ``dead`` entries are link ids or ``(tail, head)`` coordinate pairs
        (each names one *directed* link; disable both directions of an
        adjacency by listing both).  Existing faults and scaling are kept.
        """
        mask = (
            np.ones(self.num_links, dtype=bool)
            if self.link_mask is None
            else self.link_mask.copy()
        )
        for ref in dead:
            mask[self._resolve_link(ref)] = False
        return Mesh(self.p, self.q, mask, self.link_scale)

    def with_link_scale(self, scale) -> "Mesh":
        """Copy of this mesh with a per-link power-scale vector applied.

        ``scale`` is either a full length-``num_links`` vector (replacing
        the current one) or a ``{link ref: factor}`` mapping multiplied
        onto the current scaling.  The fault mask is kept.
        """
        if isinstance(scale, dict):
            vec = (
                np.ones(self.num_links, dtype=np.float64)
                if self.link_scale is None
                else self.link_scale.copy()
            )
            for ref, factor in scale.items():
                vec[self._resolve_link(ref)] *= float(factor)
        else:
            vec = np.asarray(scale, dtype=np.float64)
        return Mesh(self.p, self.q, self.link_mask, vec)

    # ------------------------------------------------------------------
    # core indexing
    # ------------------------------------------------------------------
    def core_index(self, u: int, v: int) -> int:
        """Dense core id (row-major)."""
        self.check_core(u, v)
        return u * self.q + v

    def core_coords(self, idx: int) -> Coord:
        """Inverse of :meth:`core_index`."""
        if not 0 <= idx < self.num_cores:
            raise InvalidParameterError(
                f"core index {idx} out of range [0, {self.num_cores})"
            )
        return divmod(idx, self.q)

    def check_core(self, u: int, v: int) -> None:
        """Raise :class:`InvalidParameterError` unless ``(u, v)`` is on-grid."""
        if not (0 <= u < self.p and 0 <= v < self.q):
            raise InvalidParameterError(
                f"core ({u}, {v}) outside {self.p}x{self.q} mesh"
            )

    def cores(self) -> Iterator[Coord]:
        """Iterate over all core coordinates in row-major order."""
        for u in range(self.p):
            for v in range(self.q):
                yield (u, v)

    def succ(self, u: int, v: int) -> List[Coord]:
        """Neighbouring cores reachable by one outgoing link (paper's succ)."""
        self.check_core(u, v)
        out: List[Coord] = []
        if v + 1 < self.q:
            out.append((u, v + 1))
        if v - 1 >= 0:
            out.append((u, v - 1))
        if u + 1 < self.p:
            out.append((u + 1, v))
        if u - 1 >= 0:
            out.append((u - 1, v))
        return out

    # ------------------------------------------------------------------
    # link indexing
    # ------------------------------------------------------------------
    def link_east(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u, v+1)``."""
        self.check_core(u, v)
        if v + 1 >= self.q:
            raise InvalidParameterError(f"no east link from ({u}, {v})")
        return u * (self.q - 1) + v

    def link_west(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u, v-1)``."""
        self.check_core(u, v)
        if v - 1 < 0:
            raise InvalidParameterError(f"no west link from ({u}, {v})")
        return self._ne + u * (self.q - 1) + (v - 1)

    def link_south(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u+1, v)``."""
        self.check_core(u, v)
        if u + 1 >= self.p:
            raise InvalidParameterError(f"no south link from ({u}, {v})")
        return 2 * self._ne + u * self.q + v

    def link_north(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u-1, v)``."""
        self.check_core(u, v)
        if u - 1 < 0:
            raise InvalidParameterError(f"no north link from ({u}, {v})")
        return 2 * self._ne + self._ns + (u - 1) * self.q + v

    def link_between(self, tail: Coord, head: Coord) -> int:
        """Id of the directed link from ``tail`` to ``head``.

        Raises
        ------
        InvalidParameterError
            If the two cores are not adjacent on the grid.
        """
        (u, v), (u2, v2) = tail, head
        du, dv = u2 - u, v2 - v
        if (du, dv) == (0, 1):
            return self.link_east(u, v)
        if (du, dv) == (0, -1):
            return self.link_west(u, v)
        if (du, dv) == (1, 0):
            return self.link_south(u, v)
        if (du, dv) == (-1, 0):
            return self.link_north(u, v)
        raise InvalidParameterError(f"cores {tail} and {head} are not adjacent")

    def _endpoints_slow(self, lid: int) -> Tuple[Coord, Coord]:
        """Decode a link id into ``(tail, head)`` without the cached arrays."""
        if not 0 <= lid < self.num_links:
            raise InvalidParameterError(
                f"link id {lid} out of range [0, {self.num_links})"
            )
        if lid < self._ne:  # E
            u, v = divmod(lid, self.q - 1)
            return (u, v), (u, v + 1)
        lid2 = lid - self._ne
        if lid2 < self._ne:  # W
            u, vm1 = divmod(lid2, self.q - 1)
            return (u, vm1 + 1), (u, vm1)
        lid3 = lid2 - self._ne
        if lid3 < self._ns:  # S
            u, v = divmod(lid3, self.q)
            return (u, v), (u + 1, v)
        lid4 = lid3 - self._ns  # N
        um1, v = divmod(lid4, self.q)
        return (um1 + 1, v), (um1, v)

    def link_endpoints(self, lid: int) -> Tuple[Coord, Coord]:
        """``(tail, head)`` coordinates of link ``lid``."""
        if not 0 <= lid < self.num_links:
            raise InvalidParameterError(
                f"link id {lid} out of range [0, {self.num_links})"
            )
        return (
            (int(self._tail_u[lid]), int(self._tail_v[lid])),
            (int(self._head_u[lid]), int(self._head_v[lid])),
        )

    def link_orientation(self, lid: int) -> Orientation:
        """Which way link ``lid`` points."""
        (u, v), (u2, v2) = self.link_endpoints(lid)
        if u2 == u:
            return Orientation.EAST if v2 > v else Orientation.WEST
        return Orientation.SOUTH if u2 > u else Orientation.NORTH

    def is_horizontal(self, lid: int) -> bool:
        """True for E/W links, False for S/N links."""
        if not 0 <= lid < self.num_links:
            raise InvalidParameterError(
                f"link id {lid} out of range [0, {self.num_links})"
            )
        return bool(self._horizontal_mask[lid])

    def opposite(self, lid: int) -> int:
        """Id of the link in the opposite direction between the same cores."""
        tail, head = self.link_endpoints(lid)
        return self.link_between(head, tail)

    def link_str(self, lid: int) -> str:
        """Human-readable rendering, e.g. ``'(0,1)->(0,2)'``."""
        (u, v), (u2, v2) = self.link_endpoints(lid)
        return f"({u},{v})->({u2},{v2})"

    def links(self) -> Iterator[int]:
        """Iterate over all link ids."""
        return iter(range(self.num_links))

    # vectorised metadata -------------------------------------------------
    @property
    def tail_u(self) -> np.ndarray:
        """Row of every link's tail core (read-only view)."""
        return self._tail_u

    @property
    def tail_v(self) -> np.ndarray:
        """Column of every link's tail core (read-only view)."""
        return self._tail_v

    @property
    def head_u(self) -> np.ndarray:
        """Row of every link's head core (read-only view)."""
        return self._head_u

    @property
    def head_v(self) -> np.ndarray:
        """Column of every link's head core (read-only view)."""
        return self._head_v

    @property
    def horizontal_mask(self) -> np.ndarray:
        """Boolean vector: True where the link is E or W."""
        return self._horizontal_mask

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - trivial
        extra = ""
        if self.link_mask is not None:
            extra += f", {int((~self.link_mask).sum())} dead links"
        if self.link_scale is not None:
            extra += ", scaled"
        return f"Mesh(p={self.p}, q={self.q}{extra})"

    @staticmethod
    def _profile_eq(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> bool:
        if a is None or b is None:
            return a is b
        return np.array_equal(a, b)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mesh)
            and (self.p, self.q) == (other.p, other.q)
            and self._profile_eq(self.link_mask, other.link_mask)
            and self._profile_eq(self.link_scale, other.link_scale)
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # rebuild from the defining quadruple so caches are re-derived and
        # the profile arrays come back frozen after unpickling
        return (Mesh, (self.p, self.q, self.link_mask, self.link_scale))
