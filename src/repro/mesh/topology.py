"""Mesh topology with dense link ids and vectorised link metadata.

The CMP platform of the paper (Section 3.1): ``p × q`` homogeneous cores on
a rectangular grid, with a pair of unidirectional links between each pair of
vertically or horizontally adjacent cores.

Link ids are dense integers laid out orientation-major so that the load of
every link in the chip fits in one flat ``numpy`` vector:

* ``E`` links ``(u, v) -> (u, v+1)`` occupy ids ``[0, p*(q-1))``,
* ``W`` links ``(u, v) -> (u, v-1)`` occupy the next ``p*(q-1)`` ids,
* ``S`` links ``(u, v) -> (u+1, v)`` the next ``(p-1)*q`` ids,
* ``N`` links ``(u, v) -> (u-1, v)`` the last ``(p-1)*q`` ids.

All id arithmetic is O(1); the reverse mapping and per-link coordinate
arrays are precomputed once per mesh.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Tuple

import numpy as np

from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]


class Orientation(enum.Enum):
    """Direction a unidirectional link points to, in grid terms."""

    EAST = "E"  #: column + 1
    WEST = "W"  #: column - 1
    SOUTH = "S"  #: row + 1
    NORTH = "N"  #: row - 1

    @property
    def is_horizontal(self) -> bool:
        return self in (Orientation.EAST, Orientation.WEST)


class Mesh:
    """A ``p × q`` mesh CMP with two unidirectional links per adjacency.

    Parameters
    ----------
    p:
        Number of rows (``u`` coordinate runs over ``0..p-1``).
    q:
        Number of columns (``v`` coordinate runs over ``0..q-1``).

    Notes
    -----
    The mesh is immutable.  Two meshes with equal ``(p, q)`` compare equal
    and hash equally, so meshes can key caches.
    """

    __slots__ = (
        "p",
        "q",
        "num_cores",
        "num_links",
        "_ne",
        "_ns",
        "_tail_u",
        "_tail_v",
        "_head_u",
        "_head_v",
        "_horizontal_mask",
    )

    def __init__(self, p: int, q: int):
        if not (isinstance(p, (int, np.integer)) and isinstance(q, (int, np.integer))):
            raise InvalidParameterError(f"p and q must be integers, got {p!r}, {q!r}")
        if p < 1 or q < 1:
            raise InvalidParameterError(f"mesh dimensions must be >= 1, got {p}x{q}")
        self.p = int(p)
        self.q = int(q)
        self.num_cores = self.p * self.q
        self._ne = self.p * (self.q - 1)  # count of E (also of W) links
        self._ns = (self.p - 1) * self.q  # count of S (also of N) links
        self.num_links = 2 * (self._ne + self._ns)
        self._build_link_arrays()

    def _build_link_arrays(self) -> None:
        """Precompute tail/head coordinates and orientation per link id."""
        n = self.num_links
        tail_u = np.empty(n, dtype=np.int64)
        tail_v = np.empty(n, dtype=np.int64)
        head_u = np.empty(n, dtype=np.int64)
        head_v = np.empty(n, dtype=np.int64)
        horiz = np.zeros(n, dtype=bool)
        for lid in range(n):
            (u, v), (u2, v2) = self._endpoints_slow(lid)
            tail_u[lid], tail_v[lid] = u, v
            head_u[lid], head_v[lid] = u2, v2
            horiz[lid] = u == u2
        for arr in (tail_u, tail_v, head_u, head_v, horiz):
            arr.setflags(write=False)
        self._tail_u, self._tail_v = tail_u, tail_v
        self._head_u, self._head_v = head_u, head_v
        self._horizontal_mask = horiz

    # ------------------------------------------------------------------
    # core indexing
    # ------------------------------------------------------------------
    def core_index(self, u: int, v: int) -> int:
        """Dense core id (row-major)."""
        self.check_core(u, v)
        return u * self.q + v

    def core_coords(self, idx: int) -> Coord:
        """Inverse of :meth:`core_index`."""
        if not 0 <= idx < self.num_cores:
            raise InvalidParameterError(
                f"core index {idx} out of range [0, {self.num_cores})"
            )
        return divmod(idx, self.q)

    def check_core(self, u: int, v: int) -> None:
        """Raise :class:`InvalidParameterError` unless ``(u, v)`` is on-grid."""
        if not (0 <= u < self.p and 0 <= v < self.q):
            raise InvalidParameterError(
                f"core ({u}, {v}) outside {self.p}x{self.q} mesh"
            )

    def cores(self) -> Iterator[Coord]:
        """Iterate over all core coordinates in row-major order."""
        for u in range(self.p):
            for v in range(self.q):
                yield (u, v)

    def succ(self, u: int, v: int) -> List[Coord]:
        """Neighbouring cores reachable by one outgoing link (paper's succ)."""
        self.check_core(u, v)
        out: List[Coord] = []
        if v + 1 < self.q:
            out.append((u, v + 1))
        if v - 1 >= 0:
            out.append((u, v - 1))
        if u + 1 < self.p:
            out.append((u + 1, v))
        if u - 1 >= 0:
            out.append((u - 1, v))
        return out

    # ------------------------------------------------------------------
    # link indexing
    # ------------------------------------------------------------------
    def link_east(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u, v+1)``."""
        self.check_core(u, v)
        if v + 1 >= self.q:
            raise InvalidParameterError(f"no east link from ({u}, {v})")
        return u * (self.q - 1) + v

    def link_west(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u, v-1)``."""
        self.check_core(u, v)
        if v - 1 < 0:
            raise InvalidParameterError(f"no west link from ({u}, {v})")
        return self._ne + u * (self.q - 1) + (v - 1)

    def link_south(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u+1, v)``."""
        self.check_core(u, v)
        if u + 1 >= self.p:
            raise InvalidParameterError(f"no south link from ({u}, {v})")
        return 2 * self._ne + u * self.q + v

    def link_north(self, u: int, v: int) -> int:
        """Id of link ``(u, v) -> (u-1, v)``."""
        self.check_core(u, v)
        if u - 1 < 0:
            raise InvalidParameterError(f"no north link from ({u}, {v})")
        return 2 * self._ne + self._ns + (u - 1) * self.q + v

    def link_between(self, tail: Coord, head: Coord) -> int:
        """Id of the directed link from ``tail`` to ``head``.

        Raises
        ------
        InvalidParameterError
            If the two cores are not adjacent on the grid.
        """
        (u, v), (u2, v2) = tail, head
        du, dv = u2 - u, v2 - v
        if (du, dv) == (0, 1):
            return self.link_east(u, v)
        if (du, dv) == (0, -1):
            return self.link_west(u, v)
        if (du, dv) == (1, 0):
            return self.link_south(u, v)
        if (du, dv) == (-1, 0):
            return self.link_north(u, v)
        raise InvalidParameterError(f"cores {tail} and {head} are not adjacent")

    def _endpoints_slow(self, lid: int) -> Tuple[Coord, Coord]:
        """Decode a link id into ``(tail, head)`` without the cached arrays."""
        if not 0 <= lid < self.num_links:
            raise InvalidParameterError(
                f"link id {lid} out of range [0, {self.num_links})"
            )
        if lid < self._ne:  # E
            u, v = divmod(lid, self.q - 1)
            return (u, v), (u, v + 1)
        lid2 = lid - self._ne
        if lid2 < self._ne:  # W
            u, vm1 = divmod(lid2, self.q - 1)
            return (u, vm1 + 1), (u, vm1)
        lid3 = lid2 - self._ne
        if lid3 < self._ns:  # S
            u, v = divmod(lid3, self.q)
            return (u, v), (u + 1, v)
        lid4 = lid3 - self._ns  # N
        um1, v = divmod(lid4, self.q)
        return (um1 + 1, v), (um1, v)

    def link_endpoints(self, lid: int) -> Tuple[Coord, Coord]:
        """``(tail, head)`` coordinates of link ``lid``."""
        if not 0 <= lid < self.num_links:
            raise InvalidParameterError(
                f"link id {lid} out of range [0, {self.num_links})"
            )
        return (
            (int(self._tail_u[lid]), int(self._tail_v[lid])),
            (int(self._head_u[lid]), int(self._head_v[lid])),
        )

    def link_orientation(self, lid: int) -> Orientation:
        """Which way link ``lid`` points."""
        (u, v), (u2, v2) = self.link_endpoints(lid)
        if u2 == u:
            return Orientation.EAST if v2 > v else Orientation.WEST
        return Orientation.SOUTH if u2 > u else Orientation.NORTH

    def is_horizontal(self, lid: int) -> bool:
        """True for E/W links, False for S/N links."""
        if not 0 <= lid < self.num_links:
            raise InvalidParameterError(
                f"link id {lid} out of range [0, {self.num_links})"
            )
        return bool(self._horizontal_mask[lid])

    def opposite(self, lid: int) -> int:
        """Id of the link in the opposite direction between the same cores."""
        tail, head = self.link_endpoints(lid)
        return self.link_between(head, tail)

    def link_str(self, lid: int) -> str:
        """Human-readable rendering, e.g. ``'(0,1)->(0,2)'``."""
        (u, v), (u2, v2) = self.link_endpoints(lid)
        return f"({u},{v})->({u2},{v2})"

    def links(self) -> Iterator[int]:
        """Iterate over all link ids."""
        return iter(range(self.num_links))

    # vectorised metadata -------------------------------------------------
    @property
    def tail_u(self) -> np.ndarray:
        """Row of every link's tail core (read-only view)."""
        return self._tail_u

    @property
    def tail_v(self) -> np.ndarray:
        """Column of every link's tail core (read-only view)."""
        return self._tail_v

    @property
    def head_u(self) -> np.ndarray:
        """Row of every link's head core (read-only view)."""
        return self._head_u

    @property
    def head_v(self) -> np.ndarray:
        """Column of every link's head core (read-only view)."""
        return self._head_v

    @property
    def horizontal_mask(self) -> np.ndarray:
        """Boolean vector: True where the link is E or W."""
        return self._horizontal_mask

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Mesh(p={self.p}, q={self.q})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mesh) and (self.p, self.q) == (other.p, other.q)

    def __hash__(self) -> int:
        return hash(("Mesh", self.p, self.q))
