"""Flat-array routing kernel: vectorised move→link conversion.

The hop-by-hop primitives of :mod:`repro.mesh.moves` rebuild every path
through Python-level :func:`~repro.mesh.topology.Mesh.link_between` calls —
fine for one path, ruinous inside heuristic inner loops that construct
thousands of them.  This module provides the batched equivalents:

* :func:`moves_to_vmask` / :func:`stack_vmasks` — move strings as ``bool``
  arrays (``True`` = vertical hop), the kernel's native representation;
* :func:`links_from_vmask` — link ids of one path, a row-batch of paths, or
  an arbitrarily-shaped move array, computed with a cumulative sum over the
  move array and O(1) link-id arithmetic (no per-hop Python);
* :func:`moves_to_links_array` — drop-in vectorised replacement for
  :func:`repro.mesh.moves.moves_to_links`, validating the move counts
  against the displacement before trusting the arithmetic;
* :class:`FlatRoutingKernel` — per-problem flattened hop metadata enabling
  *population-level* evaluation: the link ids and link loads of a whole
  batch of complete routings (one move string per communication per row) in
  a handful of NumPy operations.

Link ids follow the orientation-major layout documented in
:mod:`repro.mesh.topology`; the arithmetic below mirrors
``link_east/west/south/north`` without the bounds checks (inputs are either
validated once up front or come from trusted generators).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.mesh.diagonals import direction_of, direction_steps
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

#: byte value of the vertical move character
_ORD_V = ord("V")
_ORD_H = ord("H")


def moves_to_vmask(moves: str) -> np.ndarray:
    """Move string → boolean array (``True`` where the hop is vertical).

    Raises on characters outside ``{'H', 'V'}`` so downstream arithmetic
    never sees foreign moves.
    """
    buf = np.frombuffer(moves.encode("ascii"), dtype=np.uint8)
    vmask = buf == _ORD_V
    if not np.all(vmask | (buf == _ORD_H)):
        bad = set(moves) - {"H", "V"}
        raise InvalidParameterError(f"move string contains invalid moves {bad}")
    return vmask


def stack_vmasks(moves_list: Sequence[str]) -> np.ndarray:
    """Equal-length move strings → one boolean matrix (one row per string)."""
    if not moves_list:
        return np.zeros((0, 0), dtype=bool)
    length = len(moves_list[0])
    if any(len(m) != length for m in moves_list):
        raise InvalidParameterError(
            "stack_vmasks needs equal-length move strings"
        )
    buf = np.frombuffer("".join(moves_list).encode("ascii"), dtype=np.uint8)
    vmask = buf == _ORD_V
    if not np.all(vmask | (buf == _ORD_H)):
        bad = set("".join(moves_list)) - {"H", "V"}
        raise InvalidParameterError(f"move strings contain invalid moves {bad}")
    return vmask.reshape(len(moves_list), length)


def direction_link_bases(mesh: Mesh, su: int, sv: int) -> Tuple[int, int]:
    """Base offsets folding a direction into the dense link-id layout.

    Returns ``(vbase, hbase)`` such that, for a communication stepping
    ``(su, sv)``, the hop leaving tail core ``(u, v)`` has id

    * ``vbase + u*q + v`` when vertical (south ``2ne``; north folds the
      ``(u-1)`` shift into ``2ne + ns - q``),
    * ``hbase + u*(q-1) + v`` when horizontal (east ``0``; west folds the
      ``(v-1)`` shift into ``ne - 1``).

    This is the **single home** of the E/W/S/N id-block arithmetic of
    :class:`~repro.mesh.topology.Mesh` used by the fast paths (the kernel
    and the greedy hop loop); change the layout there and here, nowhere
    else.
    """
    ne, ns, q = mesh._ne, mesh._ns, mesh.q
    vbase = 2 * ne if su > 0 else 2 * ne + ns - q
    hbase = 0 if sv > 0 else ne - 1
    return vbase, hbase


def _link_ids_from_coords(
    mesh: Mesh,
    su: int,
    sv: int,
    u: np.ndarray,
    v: np.ndarray,
    vmask: np.ndarray,
) -> np.ndarray:
    """Link ids for hops leaving tail cores ``(u, v)`` along ``(su, sv)``.

    ``vmask`` selects vertical hops; see :func:`direction_link_bases` for
    the id arithmetic.
    """
    vbase, hbase = direction_link_bases(mesh, su, sv)
    q = mesh.q
    return np.where(vmask, vbase + u * q + v, hbase + u * (q - 1) + v)


def links_from_vmask(
    mesh: Mesh, src: Coord, su: int, sv: int, vmask: np.ndarray
) -> np.ndarray:
    """Link ids traversed by the move array ``vmask`` starting at ``src``.

    ``vmask`` may be 1-D (one path) or 2-D (a batch of same-length paths,
    one per row); the result has the same shape.  The caller guarantees the
    moves stay on the mesh (they come from a validated move string or a
    trusted generator) — there is no bounds checking here.
    """
    vm = vmask.astype(np.int64)
    # exclusive cumulative hop counts = progress coordinates of each tail
    x = np.cumsum(vm, axis=-1) - vm
    hm = 1 - vm
    y = np.cumsum(hm, axis=-1) - hm
    u = src[0] + su * x
    v = src[1] + sv * y
    return _link_ids_from_coords(mesh, su, sv, u, v, vmask)


MovesLike = Union[str, Sequence[str], np.ndarray]


def moves_to_links_array(
    mesh: Mesh, src: Coord, snk: Coord, moves: MovesLike
) -> np.ndarray:
    """Vectorised :func:`repro.mesh.moves.moves_to_links`.

    ``moves`` may be a move string, a sequence of move strings (a batch of
    candidate paths for the same ``src``/``snk`` pair), or a pre-converted
    boolean vmask array (1-D or 2-D).  Returns ``int64`` link ids with one
    row per input path.

    Move counts are validated against the displacement (the cheap part of
    :func:`~repro.mesh.moves.validate_moves`); the per-hop geometry then
    follows from arithmetic alone.
    """
    mesh.check_core(*src)
    mesh.check_core(*snk)
    du = abs(snk[0] - src[0])
    dv = abs(snk[1] - src[1])
    su, sv = direction_steps(direction_of(src, snk))
    if isinstance(moves, str):
        vmask = moves_to_vmask(moves)
    elif isinstance(moves, np.ndarray):
        vmask = moves.astype(bool, copy=False)
    else:
        vmask = stack_vmasks(moves)
    if vmask.shape[-1] != du + dv:
        raise InvalidParameterError(
            f"move array of length {vmask.shape[-1]} cannot join {src} to "
            f"{snk} (needs {du + dv} hops)"
        )
    nv = vmask.sum(axis=-1)
    if np.any(nv != du):
        raise InvalidParameterError(
            f"move array has {nv} V hops; {src} -> {snk} needs {du}"
        )
    return links_from_vmask(mesh, src, su, sv, vmask)


class FlatRoutingKernel:
    """Flattened per-hop metadata of a fixed communication set.

    One complete 1-MP routing assigns each communication a Manhattan move
    string whose length is fixed by its displacement, so a routing flattens
    into a single move array of ``total_hops = Σ lengths`` entries.  The
    kernel precomputes, per hop slot, the owning communication's source
    coordinates, direction steps and rate — after which converting any
    routing (or a whole population of routings) into link ids and link
    loads is pure NumPy.

    Parameters
    ----------
    mesh:
        The platform.
    endpoints:
        ``(src, snk)`` per communication, in problem order.
    rates:
        Communication rates, used as per-hop load weights.
    """

    __slots__ = (
        "mesh",
        "num_comms",
        "lengths",
        "total_hops",
        "starts",
        "_lengths_l",
        "_du",
        "_src_u",
        "_src_v",
        "_su",
        "_sv",
        "_south_base",
        "_west_base",
        "_hop_rates",
    )

    def __init__(
        self,
        mesh: Mesh,
        endpoints: Sequence[Tuple[Coord, Coord]],
        rates: Sequence[float],
    ):
        if len(endpoints) != len(rates):
            raise InvalidParameterError(
                f"{len(endpoints)} endpoint pairs vs {len(rates)} rates"
            )
        self.mesh = mesh
        self.num_comms = len(endpoints)
        lengths = np.empty(self.num_comms, dtype=np.int64)
        su_c = np.empty(self.num_comms, dtype=np.int64)
        sv_c = np.empty(self.num_comms, dtype=np.int64)
        src_u_c = np.empty(self.num_comms, dtype=np.int64)
        src_v_c = np.empty(self.num_comms, dtype=np.int64)
        vbase_c = np.empty(self.num_comms, dtype=np.int64)
        hbase_c = np.empty(self.num_comms, dtype=np.int64)
        du_c = np.empty(self.num_comms, dtype=np.int64)
        for i, (src, snk) in enumerate(endpoints):
            mesh.check_core(*src)
            mesh.check_core(*snk)
            su, sv = direction_steps(direction_of(src, snk))
            du_c[i] = abs(snk[0] - src[0])
            lengths[i] = du_c[i] + abs(snk[1] - src[1])
            su_c[i], sv_c[i] = su, sv
            src_u_c[i], src_v_c[i] = src
            vbase_c[i], hbase_c[i] = direction_link_bases(mesh, su, sv)
        self._du = du_c
        self.lengths = lengths
        self._lengths_l = lengths.tolist()
        self.total_hops = int(lengths.sum())
        self.starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        # broadcast per-communication metadata onto the hop axis, with the
        # direction folded into per-hop link-id bases (see
        # direction_link_bases) so the V/H arithmetic vectorises across
        # communications with different direction steps
        self._src_u = np.repeat(src_u_c, lengths)
        self._src_v = np.repeat(src_v_c, lengths)
        self._su = np.repeat(su_c, lengths)
        self._sv = np.repeat(sv_c, lengths)
        self._south_base = np.repeat(vbase_c, lengths)
        self._west_base = np.repeat(hbase_c, lengths)
        rates_arr = np.asarray(rates, dtype=np.float64)
        self._hop_rates = np.repeat(rates_arr, lengths)
        for arr in (
            self._du,
            self.lengths,
            self.starts,
            self._src_u,
            self._src_v,
            self._su,
            self._sv,
            self._south_base,
            self._west_base,
            self._hop_rates,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    def routing_vmask(self, moves_list: Sequence[str]) -> np.ndarray:
        """One routing's move strings → flat boolean hop array.

        Validates per communication — string length and vertical-hop count
        against the displacement — so a malformed genome raises here
        instead of silently yielding wrong link geometry downstream
        (:meth:`links`/:meth:`loads` have no bounds checks by design).
        """
        if len(moves_list) != self.num_comms:
            raise InvalidParameterError(
                f"expected {self.num_comms} move strings, got {len(moves_list)}"
            )
        if self.num_comms == 0:
            return np.zeros(0, dtype=bool)
        for i, m in enumerate(moves_list):
            if len(m) != self.lengths[i]:
                raise InvalidParameterError(
                    f"move string {i} has {len(m)} hops, its communication "
                    f"needs {self.lengths[i]}"
                )
        flat = "".join(moves_list)
        buf = np.frombuffer(flat.encode("ascii"), dtype=np.uint8)
        vmask = buf == _ORD_V
        if not np.all(vmask | (buf == _ORD_H)):
            bad = set(flat) - {"H", "V"}
            raise InvalidParameterError(
                f"move strings contain invalid moves {bad}"
            )
        nv = np.add.reduceat(vmask.astype(np.int64), self.starts)
        if not np.array_equal(nv, self._du):
            i = int(np.nonzero(nv != self._du)[0][0])
            raise InvalidParameterError(
                f"move string {i} has {nv[i]} V hops, its communication "
                f"needs {self._du[i]}"
            )
        return vmask

    def population_vmask(
        self, genomes: Sequence[Sequence[str]]
    ) -> np.ndarray:
        """A population of routings → ``(len(genomes), total_hops)`` matrix.

        The whole population is validated and converted in one pass: one
        string join, one ``frombuffer``, and a single ``reduceat`` for the
        per-communication V-hop counts of every genome — the per-genome
        Python loop this replaces dominated the GA's generation cost.
        Malformed genomes fall back to :meth:`routing_vmask` for its
        precise per-communication error.
        """
        if not genomes:
            return np.zeros((0, self.total_hops), dtype=bool)
        nc = self.num_comms
        lengths_l = self._lengths_l
        for g in genomes:
            if len(g) != nc:
                raise InvalidParameterError(
                    f"expected {nc} move strings, got {len(g)}"
                )
            if list(map(len, g)) != lengths_l:
                self.routing_vmask(list(g))  # raises the precise error
        flat = "".join(["".join(g) for g in genomes])
        buf = np.frombuffer(flat.encode("ascii"), dtype=np.uint8)
        vmask = buf == _ORD_V
        if not np.all(vmask | (buf == _ORD_H)):
            bad = set(flat) - {"H", "V"}
            raise InvalidParameterError(
                f"move strings contain invalid moves {bad}"
            )
        vmask = vmask.reshape(len(genomes), self.total_hops)
        if nc:
            nv = np.add.reduceat(vmask.astype(np.int64), self.starts, axis=1)
            if not np.array_equal(nv, np.broadcast_to(self._du, nv.shape)):
                row = int(np.nonzero((nv != self._du).any(axis=1))[0][0])
                self.routing_vmask(list(genomes[row]))  # precise error
        return vmask

    def links(self, vmask: np.ndarray) -> np.ndarray:
        """Link id of every hop (segmented-cumsum kernel).

        ``vmask`` is a flat hop array (``total_hops``,) or a population
        matrix (``P × total_hops``); the output has the same shape.
        """
        vm = vmask.astype(np.int64)
        cum_v = np.cumsum(vm, axis=-1)
        hm = 1 - vm
        cum_h = np.cumsum(hm, axis=-1)
        # reset the cumulative counts at each communication boundary
        starts = self.starts
        base_v = np.take(cum_v, starts, axis=-1) - np.take(vm, starts, axis=-1)
        base_h = np.take(cum_h, starts, axis=-1) - np.take(hm, starts, axis=-1)
        lengths = self.lengths
        x = cum_v - vm - np.repeat(base_v, lengths, axis=-1)
        y = cum_h - hm - np.repeat(base_h, lengths, axis=-1)
        u = self._src_u + self._su * x
        v = self._src_v + self._sv * y
        q = self.mesh.q
        vlid = self._south_base + u * q + v
        hlid = self._west_base + u * (q - 1) + v
        return np.where(vmask, vlid, hlid)

    def loads(self, vmask: np.ndarray) -> np.ndarray:
        """Link-load vector(s) of the routing(s) encoded by ``vmask``.

        Returns shape ``(num_links,)`` for a flat hop array and
        ``(P, num_links)`` for a population matrix — ready for
        :meth:`repro.core.power.PowerModel.total_power_graded_many`.
        """
        links = self.links(vmask)
        nl = self.mesh.num_links
        if links.ndim == 1:
            return np.bincount(
                links, weights=self._hop_rates, minlength=nl
            ).astype(np.float64)
        pop = links.shape[0]
        offset = (np.arange(pop, dtype=np.int64) * nl)[:, None]
        flat = (links + offset).ravel()
        weights = np.broadcast_to(self._hop_rates, links.shape).ravel()
        return np.bincount(flat, weights=weights, minlength=pop * nl).reshape(
            pop, nl
        )

    # ------------------------------------------------------------------
    # scenario threading (fault masks and power scaling)
    # ------------------------------------------------------------------
    def dead_hop_mask(self, vmask: np.ndarray) -> np.ndarray:
        """Boolean array (same shape as ``vmask``) marking hops on dead links.

        All-``False`` on pristine meshes without computing link ids.
        """
        dead = self.mesh.dead_mask
        if dead is None:
            return np.zeros(vmask.shape, dtype=bool)
        return dead[self.links(vmask)]

    def uses_dead_link(self, vmask: np.ndarray) -> np.ndarray:
        """Per-routing flag: does the routing traverse any dead link?

        Returns a scalar-shaped array for a flat hop array and a length-
        ``P`` vector for a population matrix.
        """
        return self.dead_hop_mask(vmask).any(axis=-1)

    def graded_powers(self, power, vmask: np.ndarray):
        """Graded total power of the routing(s), mesh profile threaded.

        Pristine meshes reduce to the plain
        :meth:`~repro.core.power.PowerModel.total_power_graded` /
        ``total_power_graded_many`` calls bit for bit; faulty or
        heterogeneous meshes feed the mask / scale vectors through in the
        same single NumPy pass.
        """
        loads = self.loads(vmask)
        mesh = self.mesh
        if loads.ndim == 1:
            return power.total_power_graded(
                loads, scale=mesh.link_scale, dead=mesh.dead_mask
            )
        return power.total_power_graded_many(
            loads, scale=mesh.link_scale, dead=mesh.dead_mask
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatRoutingKernel({self.num_comms} comms, "
            f"{self.total_hops} hops)"
        )
