"""Flat-array routing kernel: vectorised move→link conversion.

The hop-by-hop primitives of :mod:`repro.mesh.moves` rebuild every path
through Python-level :func:`~repro.mesh.topology.Mesh.link_between` calls —
fine for one path, ruinous inside heuristic inner loops that construct
thousands of them.  This module provides the batched equivalents:

* :func:`moves_to_vmask` / :func:`stack_vmasks` — move strings as ``bool``
  arrays (``True`` = vertical hop), the kernel's native representation;
* :func:`links_from_vmask` — link ids of one path, a row-batch of paths, or
  an arbitrarily-shaped move array, computed with a cumulative sum over the
  move array and O(1) link-id arithmetic (no per-hop Python);
* :func:`moves_to_links_array` — drop-in vectorised replacement for
  :func:`repro.mesh.moves.moves_to_links`, validating the move counts
  against the displacement before trusting the arithmetic;
* :class:`FlatRoutingKernel` — per-problem flattened hop metadata enabling
  *population-level* evaluation: the link ids and link loads of a whole
  batch of complete routings (one move string per communication per row) in
  a handful of NumPy operations.

Link ids follow the orientation-major layout documented in
:mod:`repro.mesh.topology`; the arithmetic below mirrors
``link_east/west/south/north`` without the bounds checks (inputs are either
validated once up front or come from trusted generators).
"""

from __future__ import annotations

import os

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.mesh.diagonals import direction_of, direction_steps
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

#: byte value of the vertical move character
_ORD_V = ord("V")
_ORD_H = ord("H")


def moves_to_vmask(moves: str) -> np.ndarray:
    """Move string → boolean array (``True`` where the hop is vertical).

    Raises on characters outside ``{'H', 'V'}`` so downstream arithmetic
    never sees foreign moves.
    """
    buf = np.frombuffer(moves.encode("ascii"), dtype=np.uint8)
    vmask = buf == _ORD_V
    if not np.all(vmask | (buf == _ORD_H)):
        bad = set(moves) - {"H", "V"}
        raise InvalidParameterError(f"move string contains invalid moves {bad}")
    return vmask


def stack_vmasks(moves_list: Sequence[str]) -> np.ndarray:
    """Equal-length move strings → one boolean matrix (one row per string)."""
    if not moves_list:
        return np.zeros((0, 0), dtype=bool)
    length = len(moves_list[0])
    if any(len(m) != length for m in moves_list):
        raise InvalidParameterError(
            "stack_vmasks needs equal-length move strings"
        )
    buf = np.frombuffer("".join(moves_list).encode("ascii"), dtype=np.uint8)
    vmask = buf == _ORD_V
    if not np.all(vmask | (buf == _ORD_H)):
        bad = set("".join(moves_list)) - {"H", "V"}
        raise InvalidParameterError(f"move strings contain invalid moves {bad}")
    return vmask.reshape(len(moves_list), length)


def direction_link_bases(mesh: Mesh, su: int, sv: int) -> Tuple[int, int]:
    """Base offsets folding a direction into the dense link-id layout.

    Returns ``(vbase, hbase)`` such that, for a communication stepping
    ``(su, sv)``, the hop leaving tail core ``(u, v)`` has id

    * ``vbase + u*q + v`` when vertical (south ``2ne``; north folds the
      ``(u-1)`` shift into ``2ne + ns - q``),
    * ``hbase + u*(q-1) + v`` when horizontal (east ``0``; west folds the
      ``(v-1)`` shift into ``ne - 1``).

    This is the **single home** of the E/W/S/N id-block arithmetic of
    :class:`~repro.mesh.topology.Mesh` used by the fast paths (the kernel
    and the greedy hop loop); change the layout there and here, nowhere
    else.
    """
    ne, ns, q = mesh._ne, mesh._ns, mesh.q
    vbase = 2 * ne if su > 0 else 2 * ne + ns - q
    hbase = 0 if sv > 0 else ne - 1
    return vbase, hbase


def _link_ids_from_coords(
    mesh: Mesh,
    su: int,
    sv: int,
    u: np.ndarray,
    v: np.ndarray,
    vmask: np.ndarray,
) -> np.ndarray:
    """Link ids for hops leaving tail cores ``(u, v)`` along ``(su, sv)``.

    ``vmask`` selects vertical hops; see :func:`direction_link_bases` for
    the id arithmetic.
    """
    vbase, hbase = direction_link_bases(mesh, su, sv)
    q = mesh.q
    return np.where(vmask, vbase + u * q + v, hbase + u * (q - 1) + v)


def links_from_vmask(
    mesh: Mesh, src: Coord, su: int, sv: int, vmask: np.ndarray
) -> np.ndarray:
    """Link ids traversed by the move array ``vmask`` starting at ``src``.

    ``vmask`` may be 1-D (one path) or 2-D (a batch of same-length paths,
    one per row); the result has the same shape.  The caller guarantees the
    moves stay on the mesh (they come from a validated move string or a
    trusted generator) — there is no bounds checking here.
    """
    vm = vmask.astype(np.int64)
    # exclusive cumulative hop counts = progress coordinates of each tail
    x = np.cumsum(vm, axis=-1) - vm
    hm = 1 - vm
    y = np.cumsum(hm, axis=-1) - hm
    u = src[0] + su * x
    v = src[1] + sv * y
    return _link_ids_from_coords(mesh, su, sv, u, v, vmask)


MovesLike = Union[str, Sequence[str], np.ndarray]


def moves_to_links_array(
    mesh: Mesh, src: Coord, snk: Coord, moves: MovesLike
) -> np.ndarray:
    """Vectorised :func:`repro.mesh.moves.moves_to_links`.

    ``moves`` may be a move string, a sequence of move strings (a batch of
    candidate paths for the same ``src``/``snk`` pair), or a pre-converted
    boolean vmask array (1-D or 2-D).  Returns ``int64`` link ids with one
    row per input path.

    Move counts are validated against the displacement (the cheap part of
    :func:`~repro.mesh.moves.validate_moves`); the per-hop geometry then
    follows from arithmetic alone.
    """
    mesh.check_core(*src)
    mesh.check_core(*snk)
    du = abs(snk[0] - src[0])
    dv = abs(snk[1] - src[1])
    su, sv = direction_steps(direction_of(src, snk))
    if isinstance(moves, str):
        vmask = moves_to_vmask(moves)
    elif isinstance(moves, np.ndarray):
        vmask = moves.astype(bool, copy=False)
    else:
        vmask = stack_vmasks(moves)
    if vmask.shape[-1] != du + dv:
        raise InvalidParameterError(
            f"move array of length {vmask.shape[-1]} cannot join {src} to "
            f"{snk} (needs {du + dv} hops)"
        )
    nv = vmask.sum(axis=-1)
    if np.any(nv != du):
        raise InvalidParameterError(
            f"move array has {nv} V hops; {src} -> {snk} needs {du}"
        )
    return links_from_vmask(mesh, src, su, sv, vmask)


class FlatRoutingKernel:
    """Flattened per-hop metadata of a fixed communication set.

    One complete 1-MP routing assigns each communication a Manhattan move
    string whose length is fixed by its displacement, so a routing flattens
    into a single move array of ``total_hops = Σ lengths`` entries.  The
    kernel precomputes, per hop slot, the owning communication's source
    coordinates, direction steps and rate — after which converting any
    routing (or a whole population of routings) into link ids and link
    loads is pure NumPy.

    Parameters
    ----------
    mesh:
        The platform.
    endpoints:
        ``(src, snk)`` per communication, in problem order.
    rates:
        Communication rates, used as per-hop load weights.
    """

    __slots__ = (
        "mesh",
        "num_comms",
        "lengths",
        "total_hops",
        "starts",
        "_lengths_l",
        "_du",
        "_src_u",
        "_src_v",
        "_su",
        "_sv",
        "_south_base",
        "_west_base",
        "_hop_rates",
    )

    def __init__(
        self,
        mesh: Mesh,
        endpoints: Sequence[Tuple[Coord, Coord]],
        rates: Sequence[float],
    ):
        if len(endpoints) != len(rates):
            raise InvalidParameterError(
                f"{len(endpoints)} endpoint pairs vs {len(rates)} rates"
            )
        self.mesh = mesh
        self.num_comms = len(endpoints)
        lengths = np.empty(self.num_comms, dtype=np.int64)
        su_c = np.empty(self.num_comms, dtype=np.int64)
        sv_c = np.empty(self.num_comms, dtype=np.int64)
        src_u_c = np.empty(self.num_comms, dtype=np.int64)
        src_v_c = np.empty(self.num_comms, dtype=np.int64)
        vbase_c = np.empty(self.num_comms, dtype=np.int64)
        hbase_c = np.empty(self.num_comms, dtype=np.int64)
        du_c = np.empty(self.num_comms, dtype=np.int64)
        for i, (src, snk) in enumerate(endpoints):
            mesh.check_core(*src)
            mesh.check_core(*snk)
            su, sv = direction_steps(direction_of(src, snk))
            du_c[i] = abs(snk[0] - src[0])
            lengths[i] = du_c[i] + abs(snk[1] - src[1])
            su_c[i], sv_c[i] = su, sv
            src_u_c[i], src_v_c[i] = src
            vbase_c[i], hbase_c[i] = direction_link_bases(mesh, su, sv)
        self._du = du_c
        self.lengths = lengths
        self._lengths_l = lengths.tolist()
        self.total_hops = int(lengths.sum())
        self.starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        # broadcast per-communication metadata onto the hop axis, with the
        # direction folded into per-hop link-id bases (see
        # direction_link_bases) so the V/H arithmetic vectorises across
        # communications with different direction steps
        self._src_u = np.repeat(src_u_c, lengths)
        self._src_v = np.repeat(src_v_c, lengths)
        self._su = np.repeat(su_c, lengths)
        self._sv = np.repeat(sv_c, lengths)
        self._south_base = np.repeat(vbase_c, lengths)
        self._west_base = np.repeat(hbase_c, lengths)
        rates_arr = np.asarray(rates, dtype=np.float64)
        self._hop_rates = np.repeat(rates_arr, lengths)
        for arr in (
            self._du,
            self.lengths,
            self.starts,
            self._src_u,
            self._src_v,
            self._su,
            self._sv,
            self._south_base,
            self._west_base,
            self._hop_rates,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    def routing_vmask(self, moves_list: Sequence[str]) -> np.ndarray:
        """One routing's move strings → flat boolean hop array.

        Validates per communication — string length and vertical-hop count
        against the displacement — so a malformed genome raises here
        instead of silently yielding wrong link geometry downstream
        (:meth:`links`/:meth:`loads` have no bounds checks by design).
        """
        if len(moves_list) != self.num_comms:
            raise InvalidParameterError(
                f"expected {self.num_comms} move strings, got {len(moves_list)}"
            )
        if self.num_comms == 0:
            return np.zeros(0, dtype=bool)
        for i, m in enumerate(moves_list):
            if len(m) != self.lengths[i]:
                raise InvalidParameterError(
                    f"move string {i} has {len(m)} hops, its communication "
                    f"needs {self.lengths[i]}"
                )
        flat = "".join(moves_list)
        buf = np.frombuffer(flat.encode("ascii"), dtype=np.uint8)
        vmask = buf == _ORD_V
        if not np.all(vmask | (buf == _ORD_H)):
            bad = set(flat) - {"H", "V"}
            raise InvalidParameterError(
                f"move strings contain invalid moves {bad}"
            )
        nv = np.add.reduceat(vmask.astype(np.int64), self.starts)
        if not np.array_equal(nv, self._du):
            i = int(np.nonzero(nv != self._du)[0][0])
            raise InvalidParameterError(
                f"move string {i} has {nv[i]} V hops, its communication "
                f"needs {self._du[i]}"
            )
        return vmask

    def population_vmask(
        self, genomes: Sequence[Sequence[str]]
    ) -> np.ndarray:
        """A population of routings → ``(len(genomes), total_hops)`` matrix.

        The whole population is validated and converted in one pass: one
        string join, one ``frombuffer``, and a single ``reduceat`` for the
        per-communication V-hop counts of every genome — the per-genome
        Python loop this replaces dominated the GA's generation cost.
        Malformed genomes fall back to :meth:`routing_vmask` for its
        precise per-communication error.
        """
        if not genomes:
            return np.zeros((0, self.total_hops), dtype=bool)
        nc = self.num_comms
        lengths_l = self._lengths_l
        for g in genomes:
            if len(g) != nc:
                raise InvalidParameterError(
                    f"expected {nc} move strings, got {len(g)}"
                )
            if list(map(len, g)) != lengths_l:
                self.routing_vmask(list(g))  # raises the precise error
        flat = "".join(["".join(g) for g in genomes])
        buf = np.frombuffer(flat.encode("ascii"), dtype=np.uint8)
        vmask = buf == _ORD_V
        if not np.all(vmask | (buf == _ORD_H)):
            bad = set(flat) - {"H", "V"}
            raise InvalidParameterError(
                f"move strings contain invalid moves {bad}"
            )
        vmask = vmask.reshape(len(genomes), self.total_hops)
        if nc:
            nv = np.add.reduceat(vmask.astype(np.int64), self.starts, axis=1)
            if not np.array_equal(nv, np.broadcast_to(self._du, nv.shape)):
                row = int(np.nonzero((nv != self._du).any(axis=1))[0][0])
                self.routing_vmask(list(genomes[row]))  # precise error
        return vmask

    def links(self, vmask: np.ndarray) -> np.ndarray:
        """Link id of every hop (segmented-cumsum kernel).

        ``vmask`` is a flat hop array (``total_hops``,) or a population
        matrix (``P × total_hops``); the output has the same shape.
        """
        vm = vmask.astype(np.int64)
        cum_v = np.cumsum(vm, axis=-1)
        hm = 1 - vm
        cum_h = np.cumsum(hm, axis=-1)
        # reset the cumulative counts at each communication boundary
        starts = self.starts
        base_v = np.take(cum_v, starts, axis=-1) - np.take(vm, starts, axis=-1)
        base_h = np.take(cum_h, starts, axis=-1) - np.take(hm, starts, axis=-1)
        lengths = self.lengths
        x = cum_v - vm - np.repeat(base_v, lengths, axis=-1)
        y = cum_h - hm - np.repeat(base_h, lengths, axis=-1)
        u = self._src_u + self._su * x
        v = self._src_v + self._sv * y
        q = self.mesh.q
        vlid = self._south_base + u * q + v
        hlid = self._west_base + u * (q - 1) + v
        return np.where(vmask, vlid, hlid)

    def loads(self, vmask: np.ndarray) -> np.ndarray:
        """Link-load vector(s) of the routing(s) encoded by ``vmask``.

        Returns shape ``(num_links,)`` for a flat hop array and
        ``(P, num_links)`` for a population matrix — ready for
        :meth:`repro.core.power.PowerModel.total_power_graded_many`.
        """
        links = self.links(vmask)
        nl = self.mesh.num_links
        if links.ndim == 1:
            return np.bincount(
                links, weights=self._hop_rates, minlength=nl
            ).astype(np.float64)
        pop = links.shape[0]
        offset = (np.arange(pop, dtype=np.int64) * nl)[:, None]
        flat = (links + offset).ravel()
        weights = np.broadcast_to(self._hop_rates, links.shape).ravel()
        return np.bincount(flat, weights=weights, minlength=pop * nl).reshape(
            pop, nl
        )

    # ------------------------------------------------------------------
    # scenario threading (fault masks and power scaling)
    # ------------------------------------------------------------------
    def dead_hop_mask(self, vmask: np.ndarray) -> np.ndarray:
        """Boolean array (same shape as ``vmask``) marking hops on dead links.

        All-``False`` on pristine meshes without computing link ids.
        """
        dead = self.mesh.dead_mask
        if dead is None:
            return np.zeros(vmask.shape, dtype=bool)
        return dead[self.links(vmask)]

    def uses_dead_link(self, vmask: np.ndarray) -> np.ndarray:
        """Per-routing flag: does the routing traverse any dead link?

        Returns a scalar-shaped array for a flat hop array and a length-
        ``P`` vector for a population matrix.
        """
        return self.dead_hop_mask(vmask).any(axis=-1)

    def graded_powers(self, power, vmask: np.ndarray):
        """Graded total power of the routing(s), mesh profile threaded.

        Pristine meshes reduce to the plain
        :meth:`~repro.core.power.PowerModel.total_power_graded` /
        ``total_power_graded_many`` calls bit for bit; faulty or
        heterogeneous meshes feed the mask / scale vectors through in the
        same single NumPy pass.
        """
        loads = self.loads(vmask)
        mesh = self.mesh
        if loads.ndim == 1:
            return power.total_power_graded(
                loads, scale=mesh.link_scale, dead=mesh.dead_mask
            )
        return power.total_power_graded_many(
            loads, scale=mesh.link_scale, dead=mesh.dead_mask
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatRoutingKernel({self.num_comms} comms, "
            f"{self.total_hops} hops)"
        )


# ----------------------------------------------------------------------
# multi-problem (stacked) evaluation tier
# ----------------------------------------------------------------------

_STACKED_MODES = ("auto", "0", "1")


def stacked_mode() -> str:
    """The validated ``REPRO_STACKED`` mode: ``"auto"``, ``"0"`` or ``"1"``.

    ``auto`` (default, also the empty string) and ``1`` enable the stacked
    multi-problem evaluation paths; ``0`` forces the per-instance looped
    reference paths everywhere.  The variable is re-read on every decision
    so tests (and the benches) can pin either side per call.
    """
    raw = os.environ.get("REPRO_STACKED", "")
    value = raw.strip().lower()
    if not value:
        return "auto"
    if value not in _STACKED_MODES:
        raise InvalidParameterError(
            f"REPRO_STACKED must be one of {', '.join(_STACKED_MODES)}; "
            f"got {raw!r}"
        )
    return value


def stacked_enabled() -> bool:
    """True unless ``REPRO_STACKED=0`` pins the looped reference paths."""
    return stacked_mode() != "0"


def _row_sums(flat: np.ndarray, bounds) -> np.ndarray:
    """Per-row ``np.sum`` of a flat array tiled by ``bounds``.

    ``bounds`` are ``(start, end)`` pairs covering ``flat`` contiguously in
    order.  Equal-width rows reduce through one C-contiguous
    ``(B, width).sum(axis=1)`` pass; NumPy's pairwise summation over the
    last axis of a contiguous matrix visits each row exactly like a 1-D sum
    of that row, so both branches are bit-identical to summing each
    instance's standalone vector.
    """
    n = len(bounds)
    width = bounds[0][1] - bounds[0][0]
    if all(e - s == width for s, e in bounds):
        return flat.reshape(n, width).sum(axis=1)
    return np.array([np.sum(flat[s:e]) for s, e in bounds])


class MultiProblemKernel:
    """Stacked evaluation of a batch of problem instances.

    Stacks B instances — possibly with different mesh shapes, fault masks,
    power-scale profiles and power models — into flat batch arrays: hop
    metadata is the concatenation of the per-instance
    :class:`FlatRoutingKernel` arrays with the link-id bases shifted into a
    disjoint per-instance block of the batch link-id space, and load/power
    evaluation runs one NumPy pass over the whole batch instead of a
    Python-level loop over instances.

    Mixed shapes are handled by *exact concatenation*, never zero-padding:
    every per-instance quantity lives in its own contiguous slice of the
    flat arrays, so per-instance reductions (``np.sum`` over a contiguous
    slice, boolean gathers, ``max``) reproduce the standalone per-instance
    results bit for bit — padding would change NumPy's pairwise-summation
    tree and is therefore never used.  Instances with different
    :class:`~repro.core.power.PowerModel` parameters are grouped by model
    equality and graded one pass per distinct model (one pass total in the
    common homogeneous case).

    The per-link ``scale`` / ``dead`` profiles of pristine instances are
    substituted with ones / ``False`` inside a heterogeneous batch; both
    substitutions are bit-exact (``x * 1.0`` is the identity on the finite
    powers produced here, and a ``False`` dead mask leaves every
    ``np.where`` untouched).
    """

    __slots__ = (
        "problems",
        "num_problems",
        "kernels",
        "link_counts",
        "link_offsets",
        "total_links",
        "hop_counts",
        "hop_offsets",
        "total_hops",
        "starts",
        "lengths",
        "_src_u",
        "_src_v",
        "_su",
        "_sv",
        "_south_base",
        "_west_base",
        "_q_hop",
        "_hop_rates",
        "_scales",
        "_deads",
        "_scale_flat",
        "_dead_flat",
        "_power_groups",
    )

    def __init__(self, problems: Sequence) -> None:
        if not problems:
            raise InvalidParameterError(
                "MultiProblemKernel needs at least one problem"
            )
        self.problems = list(problems)
        self.num_problems = len(self.problems)
        self.kernels = [p.kernel() for p in self.problems]
        self.link_counts = np.asarray(
            [p.mesh.num_links for p in self.problems], dtype=np.int64
        )
        self.link_offsets = np.concatenate(
            ([0], np.cumsum(self.link_counts))
        )
        self.total_links = int(self.link_offsets[-1])
        self._scales = [p.mesh.link_scale for p in self.problems]
        self._deads = [p.mesh.dead_mask for p in self.problems]
        if all(s is None for s in self._scales):
            self._scale_flat = None
        else:
            self._scale_flat = np.concatenate(
                [
                    s
                    if s is not None
                    else np.ones(int(nl), dtype=np.float64)
                    for s, nl in zip(self._scales, self.link_counts)
                ]
            )
        if all(d is None for d in self._deads):
            self._dead_flat = None
        else:
            self._dead_flat = np.concatenate(
                [
                    d if d is not None else np.zeros(int(nl), dtype=bool)
                    for d, nl in zip(self._deads, self.link_counts)
                ]
            )
        groups: dict = {}
        for b, p in enumerate(self.problems):
            groups.setdefault(p.power, []).append(b)
        self._power_groups = [
            (power, tuple(idxs)) for power, idxs in groups.items()
        ]
        for arr in (self.link_counts, self.link_offsets):
            arr.setflags(write=False)

    #: hop-metadata attributes stacked lazily by :meth:`_build_hops` —
    #: only the move-string paths (:meth:`stack_vmasks` / :meth:`links`)
    #: need them; the routing-based evaluation paths never pay for them
    _HOP_ATTRS = frozenset(
        (
            "hop_counts",
            "hop_offsets",
            "total_hops",
            "starts",
            "lengths",
            "_src_u",
            "_src_v",
            "_su",
            "_sv",
            "_south_base",
            "_west_base",
            "_q_hop",
            "_hop_rates",
        )
    )

    def __getattr__(self, name: str):
        # unset slots raise AttributeError, landing here exactly once:
        # first touch of any hop attribute stacks them all
        if name in MultiProblemKernel._HOP_ATTRS:
            self._build_hops()
            return getattr(self, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _build_hops(self) -> None:
        """Stack the per-hop kernel metadata (deferred until needed)."""
        kernels = self.kernels
        loffs = self.link_offsets
        self.hop_counts = np.asarray(
            [k.total_hops for k in kernels], dtype=np.int64
        )
        self.hop_offsets = np.concatenate(([0], np.cumsum(self.hop_counts)))
        self.total_hops = int(self.hop_offsets[-1])
        hoffs = self.hop_offsets
        self.starts = np.concatenate(
            [k.starts + hoffs[b] for b, k in enumerate(kernels)]
        )
        self.lengths = np.concatenate([k.lengths for k in kernels])
        self._src_u = np.concatenate([k._src_u for k in kernels])
        self._src_v = np.concatenate([k._src_v for k in kernels])
        self._su = np.concatenate([k._su for k in kernels])
        self._sv = np.concatenate([k._sv for k in kernels])
        # link-id bases shifted into each instance's block of batch ids
        self._south_base = np.concatenate(
            [k._south_base + loffs[b] for b, k in enumerate(kernels)]
        )
        self._west_base = np.concatenate(
            [k._west_base + loffs[b] for b, k in enumerate(kernels)]
        )
        self._q_hop = np.concatenate(
            [
                np.full(k.total_hops, k.mesh.q, dtype=np.int64)
                for k in kernels
            ]
        )
        self._hop_rates = np.concatenate([k._hop_rates for k in kernels])
        for arr in (
            self.hop_counts,
            self.hop_offsets,
            self.starts,
            self.lengths,
            self._src_u,
            self._src_v,
            self._su,
            self._sv,
            self._south_base,
            self._west_base,
            self._q_hop,
            self._hop_rates,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    def stack_vmasks(self, moves_lists: Sequence[Sequence[str]]) -> np.ndarray:
        """One routing (move strings) per instance → flat batch hop array.

        Each instance's strings are validated by its own kernel's
        :meth:`FlatRoutingKernel.routing_vmask` before concatenation.
        """
        if len(moves_lists) != self.num_problems:
            raise InvalidParameterError(
                f"expected {self.num_problems} routings, "
                f"got {len(moves_lists)}"
            )
        return np.concatenate(
            [
                k.routing_vmask(list(m))
                for k, m in zip(self.kernels, moves_lists)
            ]
        )

    def links(self, vmask: np.ndarray) -> np.ndarray:
        """Batch link id of every hop (segmented-cumsum kernel).

        Same arithmetic as :meth:`FlatRoutingKernel.links`, with per-hop
        mesh widths and the bases pre-shifted per instance, so the ids land
        directly in the batch link-id space.
        """
        vm = vmask.astype(np.int64)
        cum_v = np.cumsum(vm, axis=-1)
        hm = 1 - vm
        cum_h = np.cumsum(hm, axis=-1)
        starts = self.starts
        base_v = np.take(cum_v, starts, axis=-1) - np.take(vm, starts, axis=-1)
        base_h = np.take(cum_h, starts, axis=-1) - np.take(hm, starts, axis=-1)
        lengths = self.lengths
        x = cum_v - vm - np.repeat(base_v, lengths, axis=-1)
        y = cum_h - hm - np.repeat(base_h, lengths, axis=-1)
        u = self._src_u + self._su * x
        v = self._src_v + self._sv * y
        q = self._q_hop
        vlid = self._south_base + u * q + v
        hlid = self._west_base + u * (q - 1) + v
        return np.where(vmask, vlid, hlid)

    def loads(self, vmask: np.ndarray) -> np.ndarray:
        """Concatenated link-load vectors of the whole batch (one bincount).

        Bit-identical per instance slice to the per-instance
        :meth:`FlatRoutingKernel.loads`: batch link ids are disjoint per
        instance and ``np.bincount`` accumulates each bin in hop order,
        which concatenation preserves.
        """
        links = self.links(vmask)
        return np.bincount(
            links, weights=self._hop_rates, minlength=self.total_links
        ).astype(np.float64)

    def loads_from_routings(self, routings: Sequence) -> np.ndarray:
        """Flat batch load vector of one :class:`Routing` per instance.

        Replicates :meth:`repro.core.routing.Routing.link_loads` for every
        instance in a single ``np.bincount`` over offset link ids, and
        populates each routing's load cache with its (read-only) slice of
        the result.
        """
        if len(routings) != self.num_problems:
            raise InvalidParameterError(
                f"expected {self.num_problems} routings, got {len(routings)}"
            )
        loffs = self.link_offsets
        lid_parts: List[np.ndarray] = []
        flow_rates: List[float] = []
        flow_lens: List[int] = []
        inst_hops = np.zeros(self.num_problems, dtype=np.int64)
        for b, routing in enumerate(routings):
            if routing.problem is not self.problems[b]:
                raise InvalidParameterError(
                    f"routing {b} belongs to a different problem instance"
                )
            total = 0
            for fl in routing.flows:
                for f in fl:
                    lids = f.path.link_ids
                    lid_parts.append(lids)
                    flow_rates.append(f.rate)
                    total += lids.size
                    flow_lens.append(lids.size)
            inst_hops[b] = total
        weights = np.repeat(
            np.asarray(flow_rates, dtype=np.float64),
            np.asarray(flow_lens, dtype=np.int64),
        )
        # one offset add for the whole batch instead of one per flow;
        # integer addition, so the bincount sees the exact same ids
        ids = np.concatenate(lid_parts)
        if self.num_problems > 1:
            ids = ids + np.repeat(loffs[:-1], inst_hops)
        flat = np.bincount(
            ids,
            weights=weights,
            minlength=self.total_links,
        ).astype(np.float64)
        flat.setflags(write=False)
        for b, routing in enumerate(routings):
            if routing._loads is None:
                routing._loads = flat[loffs[b] : loffs[b + 1]]
        return flat

    # ------------------------------------------------------------------
    def _group_views(self, loads_flat: np.ndarray):
        """Per power-model group: contiguous load/profile segments + bounds.

        Yields ``(power, idxs, seg, scale_seg, dead_seg, bounds)`` where
        ``bounds[i]`` is instance ``idxs[i]``'s ``(start, end)`` slice
        inside ``seg``.  The homogeneous single-group case reuses the flat
        arrays without copying.
        """
        loffs = self.link_offsets
        single = len(self._power_groups) == 1
        for power, idxs in self._power_groups:
            if single:
                seg = loads_flat
                sc = self._scale_flat
                dd = self._dead_flat
                bounds = [
                    (int(loffs[b]), int(loffs[b + 1])) for b in idxs
                ]
            else:
                parts = [loads_flat[loffs[b] : loffs[b + 1]] for b in idxs]
                seg = np.concatenate(parts)
                sc = (
                    None
                    if self._scale_flat is None
                    else np.concatenate(
                        [
                            self._scale_flat[loffs[b] : loffs[b + 1]]
                            for b in idxs
                        ]
                    )
                )
                dd = (
                    None
                    if self._dead_flat is None
                    else np.concatenate(
                        [
                            self._dead_flat[loffs[b] : loffs[b + 1]]
                            for b in idxs
                        ]
                    )
                )
                bounds = []
                pos = 0
                for b in idxs:
                    nl = int(self.link_counts[b])
                    bounds.append((pos, pos + nl))
                    pos += nl
            yield power, idxs, seg, sc, dd, bounds

    def graded_totals(self, loads_flat: np.ndarray) -> np.ndarray:
        """Per-instance graded total power, one pass per power group.

        ``out[b]`` is bit-identical to
        ``power_b.total_power_graded(loads_b, scale=..., dead=...)``.
        """
        out = np.empty(self.num_problems, dtype=np.float64)
        for power, idxs, seg, sc, dd, bounds in self._group_views(loads_flat):
            lp = power.link_power_graded(seg, scale=sc, dead=dd)
            out[list(idxs)] = _row_sums(lp, bounds)
        return out

    def total_powers(self, loads_flat: np.ndarray) -> np.ndarray:
        """Per-instance strict total power (``inf`` on overload), batched.

        ``out[b]`` is bit-identical to ``Routing.total_power()`` of the
        instance's routing.
        """
        out = np.empty(self.num_problems, dtype=np.float64)
        for power, idxs, seg, sc, dd, bounds in self._group_views(loads_flat):
            lp = power.link_power(seg, scale=sc, dead=dd)
            out[list(idxs)] = _row_sums(lp, bounds)
        return out

    def valids(self, loads_flat: np.ndarray) -> List[bool]:
        """Per-instance paper validity, batched comparisons.

        ``out[b]`` matches ``power_b.is_feasible_load(loads_b, dead=...)``.
        """
        out: List[bool] = [False] * self.num_problems
        for power, idxs, seg, sc, dd, bounds in self._group_views(loads_flat):
            ok = seg <= power.bandwidth * (1 + 1e-9)
            dl = None if dd is None else dd & (seg > 0)
            # all()/any() are associative, so the batched reduceat rows
            # are exactly the per-instance reductions
            starts = np.fromiter(
                (s for s, _ in bounds), dtype=np.int64, count=len(bounds)
            )
            ok_rows = np.bitwise_and.reduceat(ok, starts)
            bad_rows = (
                None if dl is None else np.bitwise_or.reduceat(dl, starts)
            )
            for i, b in enumerate(idxs):
                bad_dead = False if bad_rows is None else bool(bad_rows[i])
                out[b] = (not bad_dead) and bool(ok_rows[i])
        return out

    def reports(self, loads_flat: np.ndarray) -> List:
        """Per-instance :class:`~repro.core.evaluate.RoutingReport`, batched.

        Replicates :func:`repro.core.evaluate.loads_report` field by field:
        the elementwise passes (strict link power, quantisation, dynamic
        term, scaled leakage) run once per power group over the whole
        batch; the per-instance reductions are contiguous-slice sums /
        counts / gathers, each bit-identical to the standalone computation.
        The leakage term keeps :func:`loads_report`'s branch: a count
        times ``p_leak`` for unscaled instances (an ``int * float``
        product, *not* a sum), a where/sum only for scaled ones.
        """
        from repro.core.evaluate import RoutingReport

        out = [None] * self.num_problems
        for power, idxs, seg, sc, dd, bounds in self._group_views(loads_flat):
            bw = power.bandwidth
            act = seg > 0
            ok = seg <= bw * (1 + 1e-9)
            over = seg > bw * (1 + 1e-9)
            dl = None if dd is None else dd & act
            capped = np.minimum(seg, bw)
            # dynamic_power(capped, scale=...) elementwise replica
            qf = power.quantize(capped)
            qact = qf > 0
            with np.errstate(over="ignore", invalid="ignore"):
                dyn0 = power.p0 * np.power(
                    qf / power.freq_unit, power.alpha
                )
            dyn = dyn0 if sc is None else dyn0 * sc
            dyn_term = np.where(qact, dyn, 0.0)
            # static_power(loads, scale=...) elementwise replica (only
            # consumed for instances whose own scale profile is not None)
            st_term = (
                None
                if sc is None
                else np.where(act, power.p_leak * sc, 0.0)
            )
            # strict total power: link_power(seg) rebuilt from the capped
            # pass above instead of a second full quantize/np.power —
            # capped == seg wherever seg <= bandwidth, so only the
            # over-capacity links (usually none) are re-quantised and
            # re-powered, elementwise on the same inputs the replaced
            # full pass would see
            over_cap = seg > bw
            if over_cap.any():
                oidx = np.nonzero(over_cap)[0]
                dyn_strict = dyn0.copy()
                with np.errstate(over="ignore", invalid="ignore"):
                    dyn_strict[oidx] = power.p0 * np.power(
                        power.quantize(seg[oidx]) / power.freq_unit,
                        power.alpha,
                    )
            else:
                dyn_strict = dyn0
            lp = np.where(act, power.p_leak + dyn_strict, 0.0)
            if sc is not None:
                lp = lp * sc
            if dd is not None:
                lp = np.where(dd & act, np.inf, lp)
            dyn_sums = _row_sums(dyn_term, bounds)
            lp_sums = _row_sums(lp, bounds)
            st_sums = None if st_term is None else _row_sums(st_term, bounds)
            # counts, all/any and max are associative reductions — the
            # batched reduceat rows match the per-instance calls bit for
            # bit (loads are non-negative, so the max never needs the
            # 0.0 ``initial`` the per-row call supplies)
            starts = np.fromiter(
                (s for s, _ in bounds), dtype=np.int64, count=len(bounds)
            )
            act_rows = np.add.reduceat(act.astype(np.intp), starts)
            over_rows = np.add.reduceat(over.astype(np.intp), starts)
            ok_rows = np.bitwise_and.reduceat(ok, starts)
            max_rows = np.maximum.reduceat(seg, starts)
            if dl is None:
                bad_rows = dead_over_rows = None
            else:
                bad_rows = np.bitwise_or.reduceat(dl, starts)
                dead_over_rows = np.add.reduceat(
                    (dl & ok).astype(np.intp), starts
                )
            # the active-load mean keeps its pairwise sum: one gather of
            # every active load in the batch (slice order preserved),
            # then per-row contiguous-slice sums over it
            comp = seg[act]
            comp_ends = np.cumsum(act_rows)
            for i, (b, (s, e)) in enumerate(zip(idxs, bounds)):
                n_active = int(act_rows[i])
                overload = int(over_rows[i])
                bad_dead = False
                if self._deads[b] is not None:
                    bad_dead = bool(bad_rows[i])
                    overload += int(dead_over_rows[i])
                valid = (not bad_dead) and bool(ok_rows[i])
                if self._scales[b] is None:
                    static = float(n_active * power.p_leak)
                else:
                    static = float(st_sums[i])
                total = float(lp_sums[i]) if valid else float("inf")
                if n_active:
                    cs = int(comp_ends[i]) - n_active
                    mean_active = float(
                        np.sum(comp[cs : cs + n_active]) / n_active
                    )
                else:
                    mean_active = 0.0
                out[b] = RoutingReport(
                    valid=valid,
                    total_power=total,
                    static_power=static,
                    dynamic_power=float(dyn_sums[i]),
                    active_links=n_active,
                    max_load=float(max_rows[i]),
                    mean_active_load=mean_active,
                    overloaded_links=overload,
                )
        return out

    def evaluate_routings(self, routings: Sequence) -> List:
        """One :class:`RoutingReport` per routing, in one stacked pass.

        ``out[b]`` is bit-identical to
        ``evaluate_routing(routings[b])``.
        """
        return self.reports(self.loads_from_routings(routings))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiProblemKernel({self.num_problems} problems, "
            f"{self.total_hops} hops, {self.total_links} links)"
        )
