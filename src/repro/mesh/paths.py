"""Manhattan path objects and the per-communication routing DAG.

Two central abstractions live here:

* :class:`Path` — an immutable, validated Manhattan path of one
  communication, carrying both its move string and its link-id sequence.
* :class:`CommDag` — the DAG of *all* Manhattan paths between a source and
  a sink: a ``(Δu+1) × (Δv+1)`` progress grid whose edges are the mesh links
  a shortest path may use.  Edges are grouped into *bands* (the links
  between consecutive diagonals ``D(d)_t → D(d)_{t+1}`` restricted to the
  communication's bounding rectangle); the IG pre-routing, the PR heuristic
  and the Frank–Wolfe relaxation all operate band-wise on this DAG.

Lemma 1 of the paper — there are ``C(p+q-2, p-1)`` Manhattan paths corner
to corner — generalises to ``C(Δu+Δv, Δu)`` paths per communication; see
:func:`count_paths` / :func:`manhattan_path_count`.
"""

from __future__ import annotations

from math import comb
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.mesh.diagonals import direction_of, direction_steps
from repro.mesh.moves import (
    MOVE_H,
    MOVE_V,
    moves_to_cores,
    moves_to_links,
    validate_moves,
    xy_moves,
    yx_moves,
)
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

#: sentinel for "live reachability not computed yet" (None is a valid result)
_UNSET = object()


def count_paths(du: int, dv: int) -> int:
    """Number of Manhattan paths over a ``du × dv`` displacement.

    ``C(du+dv, du)`` — the generalisation of Lemma 1 to an arbitrary
    source/sink pair.
    """
    if du < 0 or dv < 0:
        raise InvalidParameterError(f"displacements must be >= 0, got {du}, {dv}")
    return comb(du + dv, du)


def manhattan_path_count(p: int, q: int) -> int:
    """Lemma 1: number of Manhattan paths from ``C_{1,1}`` to ``C_{p,q}``."""
    if p < 1 or q < 1:
        raise InvalidParameterError(f"mesh dimensions must be >= 1, got {p}x{q}")
    return comb(p + q - 2, p - 1)


def band_reachability(
    du: int,
    dv: int,
    xs_l: Sequence[np.ndarray],
    ys_l: Sequence[np.ndarray],
    kv_l: Sequence[np.ndarray],
    ok_l: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Progress-node reachability over the permitted edges of a band DAG.

    ``xs_l / ys_l / kv_l`` are a :meth:`CommDag.band_arrays`-shaped
    geometry (per band: tail progress coordinates and a vertical-edge
    mask) and ``ok_l[t]`` marks the edges of band ``t`` that may be used.
    Returns writable ``(Δu+1) × (Δv+1)`` boolean grids ``(fwd, bwd)``:
    ``fwd[x, y]`` marks nodes reachable from ``(0, 0)`` and ``bwd[x, y]``
    nodes from which ``(Δu, Δv)`` is reachable, both through permitted
    edges only.  This is the single sweep behind
    :meth:`CommDag.live_reachability` (mesh fault masks) and the PR
    heuristic's path-cleaning cascade (per-communication allowed masks).
    """
    fwd = np.zeros((du + 1, dv + 1), dtype=bool)
    fwd[0, 0] = True
    for t in range(len(ok_l)):
        xs, ys, kv = xs_l[t], ys_l[t], kv_l[t]
        ok = ok_l[t] & fwd[xs, ys]
        hx = np.where(kv, xs + 1, xs)
        hy = np.where(kv, ys, ys + 1)
        fwd[hx[ok], hy[ok]] = True
    bwd = np.zeros((du + 1, dv + 1), dtype=bool)
    bwd[du, dv] = True
    for t in range(len(ok_l) - 1, -1, -1):
        xs, ys, kv = xs_l[t], ys_l[t], kv_l[t]
        hx = np.where(kv, xs + 1, xs)
        hy = np.where(kv, ys, ys + 1)
        ok = ok_l[t] & bwd[hx, hy]
        bwd[xs[ok], ys[ok]] = True
    return fwd, bwd


class Path:
    """An immutable Manhattan path of a single communication.

    Construct through :meth:`from_moves`, :meth:`xy` or :meth:`yx`; the
    constructor validates that the move string joins ``src`` to ``snk``.

    Attributes
    ----------
    src, snk:
        Endpoint core coordinates.
    moves:
        Move string over ``{'H', 'V'}``; see :mod:`repro.mesh.moves`.
    link_ids:
        ``numpy`` int array of the traversed link ids, in order.
    """

    __slots__ = ("mesh", "src", "snk", "moves", "link_ids")

    def __init__(self, mesh: Mesh, src: Coord, snk: Coord, moves: str):
        mesh.check_core(*src)
        mesh.check_core(*snk)
        if src == snk:
            raise InvalidParameterError(f"path endpoints coincide at {src}")
        validate_moves(src, snk, moves)
        self.mesh = mesh
        self.src = (int(src[0]), int(src[1]))
        self.snk = (int(snk[0]), int(snk[1]))
        self.moves = moves
        self.link_ids = np.asarray(
            moves_to_links(mesh, self.src, self.snk, moves), dtype=np.int64
        )
        self.link_ids.setflags(write=False)

    # constructors ------------------------------------------------------
    @classmethod
    def from_moves(cls, mesh: Mesh, src: Coord, snk: Coord, moves: str) -> "Path":
        """Build a path from an explicit move string."""
        return cls(mesh, src, snk, moves)

    @classmethod
    def xy(cls, mesh: Mesh, src: Coord, snk: Coord) -> "Path":
        """The XY route (horizontal first, then vertical)."""
        return cls(mesh, src, snk, xy_moves(src, snk))

    @classmethod
    def yx(cls, mesh: Mesh, src: Coord, snk: Coord) -> "Path":
        """The YX route (vertical first, then horizontal)."""
        return cls(mesh, src, snk, yx_moves(src, snk))

    @classmethod
    def from_validated(
        cls,
        mesh: Mesh,
        src: Coord,
        snk: Coord,
        moves: str,
        link_ids: Sequence[int] | np.ndarray | None = None,
    ) -> "Path":
        """Trusted fast constructor for internally generated move strings.

        Skips endpoint and move-string re-validation — the caller warrants
        that ``moves`` is a Manhattan move string joining ``src`` to ``snk``
        (greedy/two-bend/XYI inner loops construct thousands of already
        valid paths).  When ``link_ids`` is omitted it is computed with the
        vectorised kernel; when given, ownership transfers to the path
        (the array is frozen in place).
        """
        from repro.mesh.kernel import links_from_vmask, moves_to_vmask

        self = object.__new__(cls)
        self.mesh = mesh
        self.src = (int(src[0]), int(src[1]))
        self.snk = (int(snk[0]), int(snk[1]))
        self.moves = moves
        if link_ids is None:
            su, sv = direction_steps(direction_of(src, snk))
            arr = links_from_vmask(mesh, self.src, su, sv, moves_to_vmask(moves))
        else:
            arr = np.asarray(link_ids, dtype=np.int64)
        if arr.flags.writeable:
            arr.setflags(write=False)
        self.link_ids = arr
        return self

    @classmethod
    def from_links(
        cls, mesh: Mesh, src: Coord, snk: Coord, link_ids: Sequence[int]
    ) -> "Path":
        """Build a path from a link-id sequence, recovering the move string."""
        moves = []
        cur = src
        for lid in link_ids:
            tail, head = mesh.link_endpoints(int(lid))
            if tail != cur:
                raise InvalidParameterError(
                    f"link {mesh.link_str(int(lid))} does not start at {cur}"
                )
            moves.append(MOVE_V if tail[1] == head[1] else MOVE_H)
            cur = head
        if cur != snk:
            raise InvalidParameterError(f"link sequence ends at {cur}, expected {snk}")
        return cls(mesh, src, snk, "".join(moves))

    # accessors ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.moves)

    @property
    def length(self) -> int:
        """Number of hops (= the Manhattan distance src→snk)."""
        return len(self.moves)

    def cores(self) -> List[Coord]:
        """Sequence of visited cores, endpoints included."""
        return moves_to_cores(self.src, self.snk, self.moves)

    def uses_link(self, lid: int) -> bool:
        """True when the path traverses link ``lid``."""
        return bool(np.any(self.link_ids == lid))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Path)
            and self.mesh == other.mesh
            and self.src == other.src
            and self.snk == other.snk
            and self.moves == other.moves
        )

    def __hash__(self) -> int:
        return hash((self.mesh, self.src, self.snk, self.moves))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Path({self.src}->{self.snk}, {self.moves!r})"


class CommDag:
    """The DAG of all Manhattan paths from ``src`` to ``snk``.

    Nodes are *progress* coordinates ``(x, y)`` with ``0 <= x <= Δu`` and
    ``0 <= y <= Δv``: the number of vertical / horizontal hops already
    taken.  The node ``(x, y)`` corresponds to the physical core
    ``(src_u + su*x, src_v + sv*y)``.  Edges advance one band: node
    ``(x, y)`` at band ``t = x + y`` connects to ``(x+1, y)`` via a vertical
    mesh link and to ``(x, y+1)`` via a horizontal one.

    ``band(t)`` lists the links crossing from diagonal ``t`` to ``t + 1``
    *inside the communication's rectangle* — the per-communication
    restriction of :func:`repro.mesh.diagonals.band_links_full`.
    """

    __slots__ = (
        "mesh",
        "src",
        "snk",
        "direction",
        "du",
        "dv",
        "su",
        "sv",
        "length",
        "_bands",
        "_edge_info",
        "_band_arrays",
        "_live",
    )

    def __init__(self, mesh: Mesh, src: Coord, snk: Coord):
        mesh.check_core(*src)
        mesh.check_core(*snk)
        if src == snk:
            raise InvalidParameterError(f"communication endpoints coincide at {src}")
        self.mesh = mesh
        self.src = src
        self.snk = snk
        self.direction = direction_of(src, snk)
        self.su, self.sv = direction_steps(self.direction)
        self.du = abs(snk[0] - src[0])
        self.dv = abs(snk[1] - src[1])
        self.length = self.du + self.dv
        self._bands: List[List[int]] = []
        self._edge_info = {}  # lid -> (x, y, kind) of its tail node
        for t in range(self.length):
            band: List[int] = []
            for x in range(max(0, t - self.dv), min(t, self.du) + 1):
                y = t - x
                if x < self.du:
                    lid = self._link_of(x, y, MOVE_V)
                    band.append(lid)
                    self._edge_info[lid] = (x, y, MOVE_V)
                if y < self.dv:
                    lid = self._link_of(x, y, MOVE_H)
                    band.append(lid)
                    self._edge_info[lid] = (x, y, MOVE_H)
            self._bands.append(band)
        self._band_arrays = None
        self._live = _UNSET

    # geometry -----------------------------------------------------------
    def node_core(self, x: int, y: int) -> Coord:
        """Physical core of progress node ``(x, y)``."""
        if not (0 <= x <= self.du and 0 <= y <= self.dv):
            raise InvalidParameterError(
                f"progress node ({x}, {y}) outside [0,{self.du}]x[0,{self.dv}]"
            )
        return (self.src[0] + self.su * x, self.src[1] + self.sv * y)

    def _link_of(self, x: int, y: int, kind: str) -> int:
        tail = self.node_core(x, y)
        head = self.node_core(x + 1, y) if kind == MOVE_V else self.node_core(x, y + 1)
        return self.mesh.link_between(tail, head)

    def edge(self, x: int, y: int, kind: str) -> int:
        """Mesh link id of the DAG edge leaving node ``(x, y)``.

        ``kind`` is ``'V'`` (toward ``(x+1, y)``) or ``'H'`` (toward
        ``(x, y+1)``); raises when the edge would leave the rectangle.
        """
        if kind == MOVE_V:
            if x >= self.du:
                raise InvalidParameterError(
                    f"no vertical edge from progress node ({x}, {y})"
                )
        elif kind == MOVE_H:
            if y >= self.dv:
                raise InvalidParameterError(
                    f"no horizontal edge from progress node ({x}, {y})"
                )
        else:
            raise InvalidParameterError(f"kind must be 'H' or 'V', got {kind!r}")
        return self._link_of(x, y, kind)

    def band(self, t: int) -> List[int]:
        """Link ids crossing band ``t`` (``0 <= t < length``)."""
        if not 0 <= t < self.length:
            raise InvalidParameterError(
                f"band index {t} out of range [0, {self.length})"
            )
        return self._bands[t]

    def bands(self) -> List[List[int]]:
        """All bands, in order (list of lists of link ids)."""
        return self._bands

    def band_arrays(
        self,
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        """Vectorised band metadata ``(lids, tails_x, tails_y, vertical)``.

        Four parallel lists (one entry per band) of read-only arrays: the
        band's link ids, the progress coordinates of each edge's tail node
        and a boolean mask marking vertical edges.  Built once per DAG and
        cached — the PR spread state and the IG band index both consume
        this instead of re-walking :meth:`edge_tail` per link, and the
        displacement-keyed DAG pool of
        :class:`repro.core.problem.RoutingProblem` makes the cache shared
        across communications with equal endpoints.
        """
        if self._band_arrays is None:
            lids_l: List[np.ndarray] = []
            xs_l: List[np.ndarray] = []
            ys_l: List[np.ndarray] = []
            kv_l: List[np.ndarray] = []
            for band in self._bands:
                lids = np.asarray(band, dtype=np.int64)
                xs = np.empty(len(band), dtype=np.int64)
                ys = np.empty(len(band), dtype=np.int64)
                kv = np.empty(len(band), dtype=bool)
                for j, lid in enumerate(band):
                    x, y, kind = self._edge_info[lid]
                    xs[j], ys[j], kv[j] = x, y, kind == MOVE_V
                for arr in (lids, xs, ys, kv):
                    arr.setflags(write=False)
                lids_l.append(lids)
                xs_l.append(xs)
                ys_l.append(ys)
                kv_l.append(kv)
            pos = {
                int(lid): (t, j)
                for t, lids in enumerate(lids_l)
                for j, lid in enumerate(lids)
            }
            self._band_arrays = (lids_l, xs_l, ys_l, kv_l, pos)
        return self._band_arrays[:4]

    def band_pos(self) -> dict:
        """``{link id: (band index, index within band)}`` (cached, shared).

        The inverse of :meth:`band_arrays`' link-id lists; consumers must
        treat it as read-only (it is shared across every communication
        pooled onto this DAG).
        """
        self.band_arrays()
        return self._band_arrays[4]

    def edge_tail(self, lid: int) -> Tuple[int, int, str]:
        """``(x, y, kind)`` of the DAG edge using mesh link ``lid``.

        ``kind`` is ``'V'`` or ``'H'``; raises if the link is not an edge of
        this DAG.
        """
        try:
            return self._edge_info[lid]
        except KeyError:
            raise InvalidParameterError(
                f"link {self.mesh.link_str(lid)} is not on any Manhattan path "
                f"{self.src}->{self.snk}"
            ) from None

    def all_link_ids(self) -> List[int]:
        """Every mesh link usable by some Manhattan path of this pair."""
        return [lid for band in self._bands for lid in band]

    def path_count(self) -> int:
        """Number of distinct Manhattan paths (``C(Δu+Δv, Δu)``)."""
        return count_paths(self.du, self.dv)

    # fault-aware reachability -------------------------------------------
    def live_reachability(
        self,
    ) -> Tuple[np.ndarray, np.ndarray] | None:
        """Progress-node reachability over *alive* links, or ``None``.

        Returns ``None`` on pristine meshes (every node trivially live).
        Otherwise a pair of read-only ``(Δu+1) × (Δv+1)`` boolean grids
        ``(fwd, bwd)``: ``fwd[x, y]`` marks nodes reachable from the source
        and ``bwd[x, y]`` nodes from which the sink is reachable, both
        using only links the mesh's fault mask allows.  Cached per DAG (and
        therefore shared through the problem's DAG pool).
        """
        if self._live is _UNSET:
            alive = self.mesh.link_mask
            if alive is None:
                self._live = None
            else:
                lids_l, xs_l, ys_l, kv_l = self.band_arrays()
                fwd, bwd = band_reachability(
                    self.du,
                    self.dv,
                    xs_l,
                    ys_l,
                    kv_l,
                    [alive[lids] for lids in lids_l],
                )
                fwd.setflags(write=False)
                bwd.setflags(write=False)
                self._live = (fwd, bwd)
        return self._live

    def has_live_path(self) -> bool:
        """True when at least one Manhattan path avoids every dead link."""
        live = self.live_reachability()
        return live is None or bool(live[0][self.du, self.dv])

    # path enumeration ---------------------------------------------------
    def enumerate_moves(
        self, limit: int | None = None, *, alive_only: bool = False
    ) -> Iterator[str]:
        """Yield all move strings, lexicographically ('H' < 'V').

        Parameters
        ----------
        limit:
            Optional hard cap; raises :class:`InvalidParameterError` if the
            total count exceeds it (protects exhaustive solvers from
            combinatorial blow-up).
        alive_only:
            Restrict the enumeration to paths avoiding every dead link of
            the mesh's fault mask.  Yields nothing when no live path
            exists; a no-op on pristine meshes.
        """
        total = self.path_count()
        if limit is not None and total > limit:
            raise InvalidParameterError(
                f"{total} Manhattan paths exceed the requested limit {limit}"
            )
        live = self.live_reachability() if alive_only else None
        if alive_only and live is not None and not live[0][self.du, self.dv]:
            return iter(())
        alive = self.mesh.link_mask if live is not None else None

        def usable(x: int, y: int, kind: str, x2: int, y2: int) -> bool:
            if alive is None:
                return True
            return bool(alive[self._link_of(x, y, kind)]) and bool(
                live[1][x2, y2]
            )

        def rec(x: int, y: int, prefix: List[str]) -> Iterator[str]:
            if x == self.du and y == self.dv:
                yield "".join(prefix)
                return
            if y < self.dv and usable(x, y, MOVE_H, x, y + 1):
                prefix.append(MOVE_H)
                yield from rec(x, y + 1, prefix)
                prefix.pop()
            if x < self.du and usable(x, y, MOVE_V, x + 1, y):
                prefix.append(MOVE_V)
                yield from rec(x + 1, y, prefix)
                prefix.pop()

        return rec(0, 0, [])

    def enumerate_paths(
        self, limit: int | None = None, *, alive_only: bool = False
    ) -> Iterator[Path]:
        """Yield all Manhattan paths as :class:`Path` objects.

        :meth:`enumerate_moves` walks the rectangle's DAG, so its move
        strings are legal by construction and the trusted constructor
        skips re-validation (the exhaustive optimum enumerates *every*
        path of an instance through this).
        """
        for moves in self.enumerate_moves(limit=limit, alive_only=alive_only):
            yield Path.from_validated(self.mesh, self.src, self.snk, moves)

    def random_moves(
        self, rng: np.random.Generator, *, alive_only: bool = False
    ) -> str:
        """Draw a random Manhattan move string.

        The default draws uniformly over all ``C(Δu+Δv, Δu)`` paths.  With
        ``alive_only`` (and a faulty mesh with a surviving path) the draw
        walks the live DAG, choosing uniformly among the viable hops of
        each node — every live path has positive probability, though not
        necessarily uniform.  Falls back to the unconstrained draw when no
        live path exists.
        """
        if alive_only and self.mesh.link_mask is not None and self.has_live_path():
            alive = self.mesh.link_mask
            _, bwd = self.live_reachability()
            x = y = 0
            out: List[str] = []
            while (x, y) != (self.du, self.dv):
                viable = []
                if x < self.du and alive[self._link_of(x, y, MOVE_V)] and bwd[x + 1, y]:
                    viable.append((MOVE_V, x + 1, y))
                if y < self.dv and alive[self._link_of(x, y, MOVE_H)] and bwd[x, y + 1]:
                    viable.append((MOVE_H, x, y + 1))
                mv, x, y = viable[int(rng.integers(len(viable)))]
                out.append(mv)
            return "".join(out)
        slots = [MOVE_V] * self.du + [MOVE_H] * self.dv
        rng.shuffle(slots)
        return "".join(slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommDag({self.src}->{self.snk}, d={self.direction}, "
            f"{self.du}x{self.dv})"
        )
