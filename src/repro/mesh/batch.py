"""Batched metaheuristic engine: the incremental load ledger.

The constructive heuristics run on :class:`repro.mesh.kernel.
FlatRoutingKernel` — whole candidate *batches* evaluated in single NumPy
passes.  The stochastic searchers (SA chains, TABU neighbourhoods, GA
mutation walks) instead live on *incremental* state: thousands of tiny
proposals, each touching a handful of links.  For them the per-call
overhead of NumPy is the bottleneck, not the arithmetic.

:class:`LoadLedger` is the shared engine for that regime.  It owns a
complete 1-MP routing (one move string per communication), the per-link
load vector, and the graded total power, and keeps all three consistent
under the two elementary moves of the local-search metaheuristics:

* **corner flip** — swap two adjacent distinct moves; the ledger resolves
  the two changed link ids in O(1) integer arithmetic (via the
  direction-folded bases of :func:`repro.mesh.kernel.
  direction_link_bases` and a maintained prefix-count array, no
  ``link_between`` / path walking), and grades the 4-link delta through a
  **scalar fast path** that replicates
  :meth:`repro.core.power.PowerModel.link_power_graded` float for float;
* **path resample** — replace a whole move string; an O(path-length)
  delta against the maintained link lists.

Three grading tiers, all **bit-identical** to
:func:`repro.heuristics.base.graded_power_delta` on the same delta:

* :meth:`LoadLedger.flip_dcost` — pure-Python scalar math (discrete
  frequency models only; continuous models use vectorised ``pow`` whose
  SIMD rounding a Python scalar cannot replicate, so they fall through to
  the NumPy path).  Valid because NumPy sums of fewer than 8 elements are
  sequential, which scalar accumulation reproduces exactly.
* :meth:`LoadLedger.flip_dcost_batch` — a whole candidate neighbourhood
  (the TABU per-iteration candidate set, a lockstep SA chain front) in
  one ``link_power_graded`` call over a ``(C, 8)`` matrix with per-row
  segment sums.
* :meth:`LoadLedger.resample_eval` — O(path-length) diff through
  :func:`~repro.heuristics.base.path_swap_deltas`, graded through the
  scalar path when the diff stays under NumPy's sequential-sum threshold
  and through ``graded_power_delta`` otherwise.

``tests/test_batch_ledger.py`` asserts the tier equivalences property-by-
property and ``tests/test_meta_probes.py`` pins the end-to-end GA/SA/TABU
routings recorded from the pre-ledger scalar implementations.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.mesh.kernel import FlatRoutingKernel, direction_link_bases
from repro.mesh.moves import MOVE_H, MOVE_V
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

#: largest element count for which :func:`_pairwise_sum` replicates
#: ``np.sum`` exactly (NumPy's single-block pairwise regime)
_PW_BLOCK = 128


def _pairwise_sum(a: Sequence[float]) -> float:
    """``np.sum`` of up to 128 floats, bit for bit, in pure Python.

    Replicates NumPy's ``pairwise_sum``: sequential accumulation below 8
    elements, the 8-accumulator unrolled block (with its fixed reduction
    tree and sequential remainder) up to the 128-element block size.
    ``tests/test_batch_ledger.py`` fuzzes the equivalence.
    """
    n = len(a)
    if n < 8:
        if n == 0:
            return 0.0
        r = a[0]
        for i in range(1, n):
            r += a[i]
        return r
    r0, r1, r2, r3, r4, r5, r6, r7 = a[:8]
    i = 8
    stop = n - (n % 8)
    while i < stop:
        r0 += a[i]
        r1 += a[i + 1]
        r2 += a[i + 2]
        r3 += a[i + 3]
        r4 += a[i + 4]
        r5 += a[i + 5]
        r6 += a[i + 6]
        r7 += a[i + 7]
        i += 8
    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        res += a[i]
        i += 1
    return res

# repro.heuristics.base helpers, bound on first ledger construction — a
# module-level import would cycle through the heuristics package while it
# is itself importing this module
_path_swap_deltas = None
_graded_power_delta = None


def _bind_heuristic_helpers() -> None:
    global _path_swap_deltas, _graded_power_delta
    if _path_swap_deltas is None:
        from repro.heuristics.base import graded_power_delta, path_swap_deltas

        _path_swap_deltas = path_swap_deltas
        _graded_power_delta = graded_power_delta


def flip_corners(moves: Sequence[str]) -> List[int]:
    """Indices ``j`` where ``moves[j] != moves[j+1]`` (flippable corners).

    Works on any character sequence (string or list of moves); ascending.
    """
    return [j for j in range(len(moves) - 1) if moves[j] != moves[j + 1]]


class LoadLedger:
    """A complete 1-MP routing under incremental local-move mutation.

    Parameters
    ----------
    mesh:
        The platform.
    power:
        The (duck-typed) power model grading link loads.
    endpoints:
        ``(src, snk)`` per communication, in problem order.
    rates:
        Communication rates (per-hop load weights).
    moves_list:
        Initial move string per communication; validated on entry.
    kernel:
        Optional pre-built :class:`FlatRoutingKernel` for the same
        communication set (shared through
        :meth:`repro.core.problem.RoutingProblem.kernel`); built on demand
        otherwise.

    Attributes
    ----------
    moves / links:
        Current move characters and link ids per communication (lists, in
        problem order) — the mutable mirror of the routing.
    loads:
        Link-load vector (Mb/s per link id), consistent with ``links``.
    cost:
        Graded total power of ``loads``, maintained incrementally with
        float math identical to the from-scratch evaluation order of the
        scalar reference implementation.
    """

    __slots__ = (
        "tier",
        "mesh",
        "power",
        "scale",
        "dead",
        "kernel",
        "moves",
        "links",
        "loads",
        "cost",
        "_mstr",
        "_pos",
        "_cumv",
        "_loads_l",
        "_rates_l",
        "_src_u",
        "_src_v",
        "_su",
        "_sv",
        "_vbase",
        "_hbase",
        "_du",
        "_dv",
        "_q",
        "_scalar",
        "_freqs_l",
        "_lvl_l",
        "_pen0",
        "_bw",
        "_thresh",
        "_scale_l",
        "_dead_l",
        "_plist",
        "_link_comms",
        "_fstash",
    )

    def __init__(
        self,
        mesh: Mesh,
        power,
        endpoints: Sequence[Tuple[Coord, Coord]],
        rates: Sequence[float],
        moves_list: Sequence[str],
        *,
        kernel: FlatRoutingKernel | None = None,
    ):
        _bind_heuristic_helpers()
        if kernel is None:
            kernel = FlatRoutingKernel(mesh, endpoints, rates)
        if len(moves_list) != kernel.num_comms:
            raise InvalidParameterError(
                f"expected {kernel.num_comms} move strings, "
                f"got {len(moves_list)}"
            )
        self.mesh = mesh
        self.power = power
        self.kernel = kernel
        self.scale = mesh.link_scale
        self.dead = mesh.dead_mask
        self._q = mesh.q
        self._rates_l = [float(r) for r in rates]
        src_u: List[int] = []
        src_v: List[int] = []
        su_l: List[int] = []
        sv_l: List[int] = []
        vb_l: List[int] = []
        hb_l: List[int] = []
        du_l: List[int] = []
        dv_l: List[int] = []
        for (src, snk) in endpoints:
            du = snk[0] - src[0]
            dv = snk[1] - src[1]
            su = 1 if du >= 0 else -1
            sv = 1 if dv >= 0 else -1
            vb, hb = direction_link_bases(mesh, su, sv)
            src_u.append(src[0])
            src_v.append(src[1])
            su_l.append(su)
            sv_l.append(sv)
            vb_l.append(vb)
            hb_l.append(hb)
            du_l.append(abs(du))
            dv_l.append(abs(dv))
        self._src_u, self._src_v = src_u, src_v
        self._su, self._sv = su_l, sv_l
        self._vbase, self._hbase = vb_l, hb_l
        self._du, self._dv = du_l, dv_l
        self._init_grading()
        self._load(moves_list)

    # ------------------------------------------------------------------
    # construction internals
    # ------------------------------------------------------------------
    def _init_grading(self) -> None:
        """Extract the scalar fast-path coefficients from the power model.

        The discrete graded tables are read straight off the model's
        cached arrays so the per-level powers are the *same floats* the
        NumPy path looks up; continuous models (vectorised ``pow``) and
        models without the graded-table protocol disable the scalar path.
        """
        # local import: repro.core.power sits above repro.mesh in the
        # layering, but only its OVERLOAD constant is needed here
        from repro.core.power import OVERLOAD

        tables = getattr(self.power, "_graded_tables", None)
        freqs = level_powers = None
        if tables is not None:
            freqs, level_powers, max_power = tables
        if freqs is None:
            self._scalar = False
            self._freqs_l = self._lvl_l = None
            self._pen0 = 0.0
        else:
            self._scalar = True
            self._freqs_l = freqs.tolist()
            self._lvl_l = level_powers.tolist()
            self._pen0 = max_power * OVERLOAD
        self._bw = float(self.power.bandwidth)
        self._thresh = self._bw * (1 + 1e-12)
        self._scale_l = None if self.scale is None else self.scale.tolist()
        self._dead_l = None if self.dead is None else self.dead.tolist()
        # observable fast-path tier (REPRO_NATIVE): the native kernels
        # mirror the *scalar* grading contract, so continuous models stay
        # on the Python tier even when the extension is available
        if self._scalar:
            from repro.native import native_kernels

            self.tier = "python" if native_kernels() is None else "native"
        else:
            self.tier = "python"

    def _load(self, moves_list: Sequence[str]) -> None:
        """(Re)build every maintained structure from a routing snapshot."""
        kernel = self.kernel
        vmask = kernel.routing_vmask([str(m) for m in moves_list])
        flat_links = kernel.links(vmask)
        # bincount accumulates in hop order — communication by
        # communication, hop by hop — the exact float-addition order of
        # the scalar reference loop
        self.loads = kernel.loads(vmask)
        self._loads_l = self.loads.tolist()
        self._fstash = None
        self.moves = []
        self.links = []
        self._mstr = []
        self._pos = []
        self._cumv = []
        self._link_comms = [set() for _ in range(self.mesh.num_links)]
        link_comms = self._link_comms
        starts = kernel.starts
        lengths = kernel.lengths
        for i in range(kernel.num_comms):
            lo = int(starts[i])
            n = int(lengths[i])
            mv = str(moves_list[i])
            lids = flat_links[lo : lo + n].tolist()
            self.moves.append(list(mv))
            self.links.append(lids)
            for lid in lids:
                link_comms[lid].add(i)
            self._mstr.append(mv)
            self._pos.append(flip_corners(mv))
            cum = [0] * (n + 1)
            acc = 0
            for k, ch in enumerate(mv):
                if ch == MOVE_V:
                    acc += 1
                cum[k + 1] = acc
            self._cumv.append(cum)
        if self._scalar:
            lp = self._link_power_scalar
            self._plist = [lp(x, lid) for lid, x in enumerate(self._loads_l)]
        else:
            self._plist = None
        self.cost = self.power.total_power_graded(
            self.loads, scale=self.scale, dead=self.dead
        )

    # ------------------------------------------------------------------
    # scalar graded power (bit-identical replica of link_power_graded)
    # ------------------------------------------------------------------
    def _link_power_scalar(self, load: float, lid: int) -> float:
        """One link's graded power — same floats as the NumPy element."""
        if not load > 0.0:
            return 0.0
        if self._dead_l is not None and self._dead_l[lid]:
            return self._pen0 * (1.0 + load / self._bw)
        if load > self._thresh:
            return self._pen0 * (1.0 + (load - self._bw) / self._bw)
        # loads in (bw, bw*(1+1e-12)] are tolerated, not overloaded — cap
        # before the level scan exactly like the NumPy path's minimum()
        capped = load if load < self._bw else self._bw
        freqs = self._freqs_l
        k = 0
        while freqs[k] < capped:
            k += 1
        base = self._lvl_l[k]
        if self._scale_l is not None:
            base = base * self._scale_l[lid]
        return base

    def _graded_delta_scalar(self, lids, dls) -> float:
        """Scalar ``graded_power_delta``: old sums then new sums, in order.

        The old-side powers come from the maintained per-link power cache
        (``_plist[lid]`` always equals ``_link_power_scalar`` of the
        current load) — only the hypothetical new loads are evaluated.
        """
        loads_l = self._loads_l
        plist = self._plist
        lp = self._link_power_scalar
        olds_p: List[float] = []
        news_p: List[float] = []
        for lid, d in zip(lids, dls):
            new = loads_l[lid] + d
            if new < -1e-9:
                raise InvalidParameterError(
                    "load delta would drive a link negative"
                )
            if new < 0.0:
                new = 0.0
            olds_p.append(plist[lid])
            news_p.append(lp(new, lid))
        return _pairwise_sum(news_p) - _pairwise_sum(olds_p)

    def _graded_delta(self, deltas: Dict[int, float]) -> float:
        """Graded-cost change of a per-link load diff (either tier)."""
        if self._scalar and len(deltas) <= _PW_BLOCK:
            return self._graded_delta_scalar(deltas.keys(), deltas.values())
        return _graded_power_delta(
            self.power, self.loads, deltas, scale=self.scale, dead=self.dead
        )

    # ------------------------------------------------------------------
    # corner-flip geometry (O(1))
    # ------------------------------------------------------------------
    def _flip_new_links(self, ci: int, j: int) -> Tuple[int, int]:
        """Link ids of the flipped corner's two replacement hops."""
        mv = self.moves[ci]
        a, b = mv[j], mv[j + 1]
        cv = self._cumv[ci][j]
        su, sv = self._su[ci], self._sv[ci]
        u = self._src_u[ci] + su * cv
        v = self._src_v[ci] + sv * (j - cv)
        q = self._q
        if b == MOVE_V:
            n1 = self._vbase[ci] + u * q + v
            u += su
        else:
            n1 = self._hbase[ci] + u * (q - 1) + v
            v += sv
        if a == MOVE_V:
            n2 = self._vbase[ci] + u * q + v
        else:
            n2 = self._hbase[ci] + u * (q - 1) + v
        return n1, n2

    def flip_links(
        self, ci: int, j: int
    ) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Old and new link pairs for the corner flip ``(ci, j)``.

        Returns ``((old_j, old_j1), (new_j, new_j1))``.  Raises when the
        two moves are equal (nothing to flip).
        """
        mv = self.moves[ci]
        if not 0 <= j < len(mv) - 1:
            raise InvalidParameterError(
                f"flip position {j} out of range for a {len(mv)}-hop path"
            )
        if mv[j] == mv[j + 1]:
            raise InvalidParameterError(
                f"moves {j} and {j + 1} of communication {ci} are both "
                f"{mv[j]!r}; corner flips need distinct moves"
            )
        n1, n2 = self._flip_new_links(ci, j)
        lks = self.links[ci]
        return (lks[j], lks[j + 1]), (n1, n2)

    # ------------------------------------------------------------------
    # corner-flip grading
    # ------------------------------------------------------------------
    def flip_dcost(self, ci: int, j: int) -> float:
        """Graded-cost change of corner flip ``(ci, j)`` (score only).

        The caller warrants ``(ci, j)`` is a legal corner (taken from
        :meth:`flip_pos`); no deltas dict is materialised — commit with
        :meth:`commit_flip` on acceptance.
        """
        lks = self.links[ci]
        o1, o2 = lks[j], lks[j + 1]
        n1, n2 = self._flip_new_links(ci, j)
        r = self._rates_l[ci]
        if not self._scalar:
            return _graded_power_delta(
                self.power,
                self.loads,
                {o1: -r, o2: -r, n1: r, n2: r},
                scale=self.scale,
                dead=self.dead,
            )
        # unrolled scalar tier: old powers summed in delta order (from the
        # per-link power cache), then new powers in the same order — the
        # sequential accumulation NumPy applies to sums of fewer than 8
        # elements
        loads_l = self._loads_l
        w1 = loads_l[o1] - r
        w2 = loads_l[o2] - r
        if w1 < -1e-9 or w2 < -1e-9:
            raise InvalidParameterError(
                "load delta would drive a link negative"
            )
        if w1 < 0.0:
            w1 = 0.0
        if w2 < 0.0:
            w2 = 0.0
        w3 = loads_l[n1] + r
        w4 = loads_l[n2] + r
        lp = self._link_power_scalar
        p1 = lp(w1, o1)
        p2 = lp(w2, o2)
        p3 = lp(w3, n1)
        p4 = lp(w4, n2)
        # stash the evaluation so an immediately following commit_flip of
        # the same corner reuses the geometry, loads and powers verbatim
        self._fstash = (ci, j, n1, n2, w1, w2, w3, w4, p1, p2, p3, p4)
        plist = self._plist
        return (p1 + p2 + p3 + p4) - (
            plist[o1] + plist[o2] + plist[n1] + plist[n2]
        )

    def flip_delta(self, ci: int, j: int) -> Tuple[Dict[int, float], float]:
        """Load deltas and graded-cost change of corner flip ``(ci, j)``."""
        (o1, o2), (n1, n2) = self.flip_links(ci, j)
        r = self._rates_l[ci]
        deltas = {o1: -r, o2: -r, n1: r, n2: r}
        return deltas, self._graded_delta(deltas)

    def _flip_rows(
        self, cands: Sequence[Tuple[int, int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(C, 4)`` old/new link ids and ``(C,)`` rates of legal flips.

        Row ``k`` of the id matrix is ``(old_j, old_j1, new_j, new_j1)``
        for candidate ``cands[k]`` — the O(1) corner geometry of
        :meth:`_flip_new_links` unrolled over the candidate set.
        """
        links = self.links
        moves = self.moves
        rates = self._rates_l
        cumv = self._cumv
        src_u, src_v = self._src_u, self._src_v
        su_l, sv_l = self._su, self._sv
        vb_l, hb_l = self._vbase, self._hbase
        q = self._q
        qm1 = q - 1
        rows = []
        rrow = []
        rows_append = rows.append
        rrow_append = rrow.append
        for ci, j in cands:
            lks = links[ci]
            mv = moves[ci]
            cv = cumv[ci][j]
            su = su_l[ci]
            u = src_u[ci] + su * cv
            v = src_v[ci] + sv_l[ci] * (j - cv)
            if mv[j + 1] == MOVE_V:
                n1 = vb_l[ci] + u * q + v
                u += su
            else:
                n1 = hb_l[ci] + u * qm1 + v
                v += sv_l[ci]
            if mv[j] == MOVE_V:
                n2 = vb_l[ci] + u * q + v
            else:
                n2 = hb_l[ci] + u * qm1 + v
            rows_append((lks[j], lks[j + 1], n1, n2))
            rrow_append(rates[ci])
        lids = np.array(rows, dtype=np.int64).reshape(len(cands), 4)
        return lids, np.array(rrow, dtype=np.float64)

    def flip_dcost_batch(self, cands: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Graded-cost change of every candidate flip, one NumPy pass.

        ``cands`` is a sequence of legal ``(ci, j)`` corners (a TABU
        neighbourhood, a lockstep chain front).  Equivalent to calling
        :meth:`flip_dcost` per candidate — each row's old/new powers are
        graded elementwise and summed over the same 4-element segments in
        the same order — but with one ``link_power_graded`` call for the
        whole candidate set instead of ``len(cands)`` Python evaluations.
        """
        lids, rrow = self._flip_rows(cands)
        dls = np.multiply.outer(
            rrow,
            np.array([-1.0, -1.0, 1.0, 1.0]),
        )
        old = self.loads[lids]
        new = old + dls
        if len(cands) and new.min() < -1e-9:
            raise InvalidParameterError(
                "load delta would drive a link negative"
            )
        new = np.maximum(new, 0.0)
        both = np.concatenate([old, new], axis=1)
        sc = dd = None
        if self.scale is not None:
            s = self.scale[lids]
            sc = np.concatenate([s, s], axis=1)
        if self.dead is not None:
            d = self.dead[lids]
            dd = np.concatenate([d, d], axis=1)
        graded = self.power.link_power_graded(both, scale=sc, dead=dd)
        return graded[:, 4:].sum(axis=1) - graded[:, :4].sum(axis=1)

    # ------------------------------------------------------------------
    # commits
    # ------------------------------------------------------------------
    def _bump(self, lid: int, d: float) -> None:
        """Apply one link's load change to both load mirrors, clamped,
        and refresh the link's cached graded power."""
        val = self._loads_l[lid] + d
        if val < 0:
            val = 0.0
        self._loads_l[lid] = val
        self.loads[lid] = val
        if self._plist is not None:
            self._plist[lid] = self._link_power_scalar(val, lid)

    def _toggle_corner(self, ci: int, k: int) -> None:
        """Resync corner ``k``'s membership in the flip-position index."""
        mv = self.moves[ci]
        pos = self._pos[ci]
        if mv[k] != mv[k + 1]:
            if k not in pos:
                insort(pos, k)
        elif k in pos:
            pos.remove(k)

    def commit_flip(self, ci: int, j: int, dcost: float) -> None:
        """Commit corner flip ``(ci, j)`` whose cost change is ``dcost``."""
        st = self._fstash
        self._fstash = None  # any commit invalidates a pending evaluation
        if st is not None and st[0] == ci and st[1] == j:
            # reuse the immediately preceding flip_dcost evaluation: same
            # new-link geometry, clamped loads and graded powers verbatim
            n1, n2 = st[2], st[3]
        else:
            n1, n2 = self._flip_new_links(ci, j)
            st = None
        mv = self.moves[ci]
        lks = self.links[ci]
        o1, o2 = lks[j], lks[j + 1]
        mv[j], mv[j + 1] = mv[j + 1], mv[j]
        lks[j] = n1
        lks[j + 1] = n2
        link_comms = self._link_comms
        link_comms[o1].discard(ci)
        link_comms[o2].discard(ci)
        link_comms[n1].add(ci)
        link_comms[n2].add(ci)
        self._cumv[ci][j + 1] = self._cumv[ci][j] + (1 if mv[j] == MOVE_V else 0)
        s = self._mstr[ci]
        self._mstr[ci] = s[:j] + s[j + 1] + s[j] + s[j + 2 :]
        if j > 0:
            self._toggle_corner(ci, j - 1)
        if j + 2 < len(mv):
            self._toggle_corner(ci, j + 1)
        if st is not None:
            loads_l = self._loads_l
            loads = self.loads
            plist = self._plist
            w1, w2, w3, w4 = st[4], st[5], st[6], st[7]
            loads_l[o1] = w1
            loads_l[o2] = w2
            loads_l[n1] = w3
            loads_l[n2] = w4
            loads[o1] = w1
            loads[o2] = w2
            loads[n1] = w3
            loads[n2] = w4
            plist[o1] = st[8]
            plist[o2] = st[9]
            plist[n1] = st[10]
            plist[n2] = st[11]
        else:
            r = self._rates_l[ci]
            self._bump(o1, -r)
            self._bump(o2, -r)
            self._bump(n1, r)
            self._bump(n2, r)
        self.cost += dcost

    def apply_flip(
        self, ci: int, j: int, deltas: Dict[int, float], dcost: float
    ) -> None:
        """Commit a corner flip whose delta dict was already evaluated."""
        self._fstash = None
        n1, n2 = self._flip_new_links(ci, j)
        mv = self.moves[ci]
        lks = self.links[ci]
        o1, o2 = lks[j], lks[j + 1]
        mv[j], mv[j + 1] = mv[j + 1], mv[j]
        lks[j] = n1
        lks[j + 1] = n2
        link_comms = self._link_comms
        link_comms[o1].discard(ci)
        link_comms[o2].discard(ci)
        link_comms[n1].add(ci)
        link_comms[n2].add(ci)
        self._cumv[ci][j + 1] = self._cumv[ci][j] + (1 if mv[j] == MOVE_V else 0)
        s = self._mstr[ci]
        self._mstr[ci] = s[:j] + s[j + 1] + s[j] + s[j + 2 :]
        if j > 0:
            self._toggle_corner(ci, j - 1)
        if j + 2 < len(mv):
            self._toggle_corner(ci, j + 1)
        for lid, d in deltas.items():
            self._bump(lid, d)
        self.cost += dcost

    # ------------------------------------------------------------------
    # full-path resamples
    # ------------------------------------------------------------------
    def _trusted_links(self, ci: int, moves: str) -> List[int]:
        """Link ids of a trusted move string, scalar incremental walk."""
        u = self._src_u[ci]
        v = self._src_v[ci]
        su, sv = self._su[ci], self._sv[ci]
        vb, hb = self._vbase[ci], self._hbase[ci]
        q = self._q
        out: List[int] = []
        append = out.append
        for ch in moves:
            if ch == MOVE_V:
                append(vb + u * q + v)
                u += su
            else:
                append(hb + u * (q - 1) + v)
                v += sv
        return out

    def resample_eval(
        self, ci: int, new_moves: str
    ) -> Tuple[List[int], Dict[int, float], float]:
        """Deltas and cost change if ``ci`` switched to ``new_moves``.

        Trusted-path variant: ``new_moves`` comes from a generator that is
        legal by construction (:meth:`repro.mesh.paths.CommDag.
        random_moves`, a snapshot), so the move string is converted
        without re-validation.
        """
        new_links = self._trusted_links(ci, new_moves)
        deltas = _path_swap_deltas(
            self.links[ci], new_links, self._rates_l[ci]
        )
        return new_links, deltas, self._graded_delta(deltas)

    def commit_resample(
        self,
        ci: int,
        new_moves: str,
        new_links: List[int],
        deltas: Dict[int, float],
        dcost: float,
    ) -> None:
        """Commit a path resample whose delta was already evaluated."""
        self._fstash = None
        link_comms = self._link_comms
        for lid in self.links[ci]:
            link_comms[lid].discard(ci)
        for lid in new_links:
            link_comms[lid].add(ci)
        self.moves[ci] = list(new_moves)
        self.links[ci] = list(new_links)
        self._mstr[ci] = str(new_moves)
        self._pos[ci] = flip_corners(new_moves)
        cum = self._cumv[ci]
        acc = 0
        for k, ch in enumerate(new_moves):
            if ch == MOVE_V:
                acc += 1
            cum[k + 1] = acc
        for lid, d in deltas.items():
            self._bump(lid, d)
        self.cost += dcost

    # ------------------------------------------------------------------
    # snapshots and queries
    # ------------------------------------------------------------------
    def snapshot(self) -> List[str]:
        """Current move strings (copy), one per communication."""
        return list(self._mstr)

    def restore(self, snapshot: Sequence[str]) -> None:
        """Reset to a previously captured snapshot (full rebuild)."""
        self._load(snapshot)

    def move_str(self, ci: int) -> str:
        """Current move string of communication ``ci`` (maintained)."""
        return self._mstr[ci]

    def flip_pos(self, ci: int) -> List[int]:
        """Flippable corner positions of ``ci``, ascending (maintained).

        The returned list is the live index — treat it as read-only.
        """
        return self._pos[ci]

    def recompute_cost(self) -> float:
        """From-scratch graded cost (drift check; also resyncs ``cost``)."""
        self.cost = self.power.total_power_graded(
            self.loads, scale=self.scale, dead=self.dead
        )
        return self.cost

    def mutable_comms(self) -> List[int]:
        """Communications with more than one Manhattan path (flippable)."""
        return [
            i
            for i in range(len(self.moves))
            if self._du[i] > 0 and self._dv[i] > 0
        ]

    def comms_using(self, lid: int) -> List[int]:
        """Communications whose current path crosses link ``lid``.

        Served from the maintained link→communications index (Manhattan
        paths are monotone, so each path crosses a link at most once and
        set semantics are exact); ascending, like the list-scan it
        replaces.
        """
        return sorted(self._link_comms[lid])

    # ------------------------------------------------------------------
    # greedy re-insertion (warm-start repair)
    # ------------------------------------------------------------------
    def greedy_moves(self, ci: int, *, bwd=None) -> str:
        """Least-loaded greedy move string for ``ci`` on the current loads.

        Replicates SG's walk (:mod:`repro.heuristics.greedy`): among the at
        most two Manhattan-feasible next hops take the lighter link,
        breaking ties toward the straight src→snk diagonal, a residual tie
        toward the horizontal hop.  ``ci``'s **own** current contribution
        is subtracted from every link it crosses, so the walk scores the
        mesh as if the communication were being freshly re-inserted.
        ``bwd`` optionally constrains the walk to hops whose head can
        still reach the sink over alive links (the backward table of
        :meth:`repro.mesh.paths.CommDag.live_reachability`), exactly like
        SG's fault-aware mode.
        """
        loads_l = self._loads_l
        rate = self._rates_l[ci]
        own = set(self.links[ci])
        q = self._q
        su, sv = self._su[ci], self._sv[ci]
        vb, hb = self._vbase[ci], self._hbase[ci]
        src_u, src_v = self._src_u[ci], self._src_v[ci]
        snk_u = src_u + su * self._du[ci]
        snk_v = src_v + sv * self._dv[ci]
        alive = None if bwd is None else self.mesh.link_mask
        ddu = snk_u - src_u
        ddv = snk_v - src_v
        u, v = src_u, src_v
        x = y = 0  # progress coordinates (only consulted when bwd set)
        out: List[str] = []
        append = out.append
        while u != snk_u or v != snk_v:
            if u == snk_u:
                move, lid = MOVE_H, hb + u * (q - 1) + v
            elif v == snk_v:
                move, lid = MOVE_V, vb + u * q + v
            else:
                lv = vb + u * q + v
                lh = hb + u * (q - 1) + v
                forced = None
                if bwd is not None:
                    viab_v = alive[lv] and bwd[x + 1, y]
                    viab_h = alive[lh] and bwd[x, y + 1]
                    if viab_v != viab_h:
                        forced = (MOVE_V, lv) if viab_v else (MOVE_H, lh)
                if forced is not None:
                    move, lid = forced
                else:
                    load_v = loads_l[lv] - rate if lv in own else loads_l[lv]
                    load_h = loads_l[lh] - rate if lh in own else loads_l[lh]
                    if load_v < load_h:
                        move, lid = MOVE_V, lv
                    elif load_h < load_v:
                        move, lid = MOVE_H, lh
                    else:
                        # tie: head core closest to the src→snk diagonal
                        # (|cross product|, as SG's diagonal_offset), a
                        # residual tie prefers the horizontal hop
                        dv_off = abs(
                            ddu * (v - src_v) - ddv * (u + su - src_u)
                        )
                        dh_off = abs(
                            ddu * (v + sv - src_v) - ddv * (u - src_u)
                        )
                        if dv_off < dh_off:
                            move, lid = MOVE_V, lv
                        else:
                            move, lid = MOVE_H, lh
            append(move)
            if move == MOVE_V:
                u += su
                x += 1
            else:
                v += sv
                y += 1
        return "".join(out)

    def greedy_reroute(
        self, ci: int, *, bwd=None
    ) -> Tuple[str, List[int], Dict[int, float], float]:
        """Greedy re-insertion proposal for ``ci``.

        The :meth:`greedy_moves` path with its resample delta against the
        current state — ``(new_moves, new_links, deltas, dcost)``, ready
        for :meth:`commit_resample`.
        """
        new_moves = self.greedy_moves(ci, bwd=bwd)
        new_links, deltas, dcost = self.resample_eval(ci, new_moves)
        return new_moves, new_links, deltas, dcost

    def most_loaded_links(self, k: int = 1) -> List[int]:
        """The ``k`` most loaded link ids, heaviest first (ties arbitrary)."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        k = min(k, int(np.count_nonzero(self.loads)))
        if k == 0:
            return []
        idx = np.argpartition(self.loads, -k)[-k:]
        return [int(i) for i in idx[np.argsort(self.loads[idx])[::-1]]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({len(self.moves)} comms, "
            f"cost={self.cost:.6g})"
        )


class MultiLedger:
    """Batched corner-flip grading across a batch of :class:`LoadLedger`.

    Wraps B ledgers (one per problem instance, independent meshes / power
    models / routing states) and grades a *cross-instance* candidate set —
    ``(b, ci, j)`` triples naming corner ``j`` of communication ``ci`` on
    instance ``b`` — with the per-call overhead amortised over the whole
    batch instead of per instance:

    * **python tier** — every instance's ``(C_b, 8)`` old/new graded-power
      rows are concatenated and graded through **one**
      ``link_power_graded`` call per distinct power model (one call total
      for a homogeneous batch), exactly the :meth:`LoadLedger.
      flip_dcost_batch` row recipe;
    * **native tier** (all models scalar-graded and the compiled extension
      present) — zero-copy :class:`~repro.native.ledger.NativeLedger`
      mirrors are built once and a single ``repro_flip_dcost_many`` C call
      loops the proven ``repro_flip_dcost`` kernel over them.

    Either way candidate ``k``'s graded delta is bit-identical to
    ``ledgers[b].flip_dcost(ci, j)`` evaluated on that instance alone.
    Commits must go through :meth:`commit_flip` so the Python ledgers and
    the native mirrors stay in lockstep; mutating a wrapped ledger behind
    the MultiLedger's back desynchronises the mirrors.
    """

    __slots__ = (
        "ledgers",
        "num_ledgers",
        "tier",
        "_power_groups",
        "_mirrors",
        "_lib",
        "_ffi",
        "_c_arr",
    )

    def __init__(self, ledgers: Sequence[LoadLedger]):
        if not ledgers:
            raise InvalidParameterError(
                "MultiLedger needs at least one ledger"
            )
        self.ledgers = list(ledgers)
        self.num_ledgers = len(self.ledgers)
        groups: Dict = {}
        for b, led in enumerate(self.ledgers):
            groups.setdefault(led.power, []).append(b)
        self._power_groups = [
            (power, tuple(idxs)) for power, idxs in groups.items()
        ]
        self._mirrors = None
        self._lib = self._ffi = self._c_arr = None
        module = None
        if all(led._scalar for led in self.ledgers):
            from repro.native import native_kernels

            module = native_kernels()
        if module is not None and hasattr(
            module.lib, "repro_flip_dcost_many"
        ):
            from repro.native.ledger import NativeLedger

            self._mirrors = [NativeLedger(led) for led in self.ledgers]
            self._ffi = module.ffi
            self._lib = module.lib
            self._c_arr = self._ffi.new(
                "rledger *[]", [m._c for m in self._mirrors]
            )
            self.tier = "native"
        else:
            self.tier = "python"

    # ------------------------------------------------------------------
    def flip_dcost_many(
        self, cands: Sequence[Tuple[int, int, int]]
    ) -> np.ndarray:
        """Graded-cost change of every ``(b, ci, j)`` candidate, one pass.

        The caller warrants each ``(ci, j)`` is a legal corner of instance
        ``b`` (taken from that ledger's :meth:`LoadLedger.flip_pos`).
        """
        n = len(cands)
        out = np.empty(n, dtype=np.float64)
        if n == 0:
            return out
        if self.tier == "native":
            li = np.ascontiguousarray(
                [b for b, _, _ in cands], dtype=np.int64
            )
            ci = np.ascontiguousarray(
                [c for _, c, _ in cands], dtype=np.int64
            )
            cj = np.ascontiguousarray(
                [j for _, _, j in cands], dtype=np.int64
            )
            ffi = self._ffi
            bad = self._lib.repro_flip_dcost_many(
                self._c_arr,
                ffi.cast("const int64_t *", li.ctypes.data),
                ffi.cast("const int64_t *", ci.ctypes.data),
                ffi.cast("const int64_t *", cj.ctypes.data),
                n,
                ffi.cast("double *", out.ctypes.data),
            )
            if bad >= 0:
                self._mirrors[int(li[bad])].raise_err()
            return out
        per: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(self.num_ledgers)
        ]
        for k, (b, ci, j) in enumerate(cands):
            per[b].append((k, ci, j))
        sign = np.array([-1.0, -1.0, 1.0, 1.0])
        for power, idxs in self._power_groups:
            both_parts: List[np.ndarray] = []
            sc_parts: List[np.ndarray] = []
            dd_parts: List[np.ndarray] = []
            out_idx: List[int] = []
            need_scale = any(
                self.ledgers[b].scale is not None for b in idxs
            )
            need_dead = any(self.ledgers[b].dead is not None for b in idxs)
            for b in idxs:
                entries = per[b]
                if not entries:
                    continue
                led = self.ledgers[b]
                lids, rrow = led._flip_rows(
                    [(ci, j) for _, ci, j in entries]
                )
                dls = np.multiply.outer(rrow, sign)
                old = led.loads[lids]
                new = old + dls
                if new.min() < -1e-9:
                    raise InvalidParameterError(
                        "load delta would drive a link negative"
                    )
                new = np.maximum(new, 0.0)
                both_parts.append(np.concatenate([old, new], axis=1))
                if need_scale:
                    s = (
                        led.scale[lids]
                        if led.scale is not None
                        else np.ones(lids.shape, dtype=np.float64)
                    )
                    sc_parts.append(np.concatenate([s, s], axis=1))
                if need_dead:
                    d = (
                        led.dead[lids]
                        if led.dead is not None
                        else np.zeros(lids.shape, dtype=bool)
                    )
                    dd_parts.append(np.concatenate([d, d], axis=1))
                out_idx.extend(k for k, _, _ in entries)
            if not both_parts:
                continue
            both = (
                both_parts[0]
                if len(both_parts) == 1
                else np.concatenate(both_parts)
            )
            sc = (
                (
                    sc_parts[0]
                    if len(sc_parts) == 1
                    else np.concatenate(sc_parts)
                )
                if need_scale
                else None
            )
            dd = (
                (
                    dd_parts[0]
                    if len(dd_parts) == 1
                    else np.concatenate(dd_parts)
                )
                if need_dead
                else None
            )
            graded = power.link_power_graded(both, scale=sc, dead=dd)
            out[out_idx] = graded[:, 4:].sum(axis=1) - graded[:, :4].sum(
                axis=1
            )
        return out

    def commit_flip(self, b: int, ci: int, j: int, dcost: float) -> None:
        """Commit flip ``(ci, j)`` on instance ``b`` (both tiers updated)."""
        self.ledgers[b].commit_flip(ci, j, dcost)
        if self._mirrors is not None:
            self._mirrors[b].commit_flip(ci, j, dcost)

    def costs(self) -> np.ndarray:
        """Current graded cost per instance (Python-ledger view)."""
        return np.array(
            [led.cost for led in self.ledgers], dtype=np.float64
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiLedger({self.num_ledgers} ledgers, tier={self.tier})"
        )
