"""Diagonal geometry of Section 3.3.

The paper indexes, for each of the four movement *directions* ``d``, a family
of anti-diagonals ``D(d)_k`` such that every Manhattan path of a
communication with direction ``d`` crosses exactly one link from ``D(d)_k``
to ``D(d)_{k+1}`` per hop.  This module provides the direction of a
communication, the (0-indexed) diagonal index of a core, the cores of a
diagonal, and the *band* of mesh links between two consecutive diagonals —
the load-balancing unit used by the IG and PR heuristics and by the
theoretical lower bounds.

Direction numbering follows the paper:

====  =================================  ==========
``d``  source/sink relation               unit steps
====  =================================  ==========
1      ``u_src <= u_snk, v_src <= v_snk``  ``(+1, +1)``
2      ``u_src <= u_snk, v_src >  v_snk``  ``(+1, -1)``
3      ``u_src >  u_snk, v_src >  v_snk``  ``(-1, -1)``
4      ``u_src >  u_snk, v_src <= v_snk``  ``(-1, +1)``
====  =================================  ==========

Diagonal indices are 0-based here: core ``(u, v)`` lies on ``D(d)_k`` with
``k = a + b`` where ``(a, b)`` are the distances already travelled along the
direction's axes.  The paper's 1-based index is ``k + 1``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

#: unit steps (su, sv) per paper direction d
_STEPS = {1: (1, 1), 2: (1, -1), 3: (-1, -1), 4: (-1, 1)}


def direction_steps(d: int) -> Tuple[int, int]:
    """Vertical/horizontal unit steps ``(su, sv)`` of direction ``d``."""
    try:
        return _STEPS[d]
    except KeyError:
        raise InvalidParameterError(f"direction must be 1..4, got {d!r}") from None


def direction_of(src: Coord, snk: Coord) -> int:
    """Paper direction ``d`` of a communication from ``src`` to ``snk``.

    Ties follow the paper's conventions: a non-decreasing coordinate counts
    as moving in the positive direction (so a purely horizontal eastward
    communication has ``d = 1``).

    Raises
    ------
    InvalidParameterError
        If ``src == snk`` (a communication must move).
    """
    (us, vs), (ud, vd) = src, snk
    if src == snk:
        raise InvalidParameterError(f"src and snk coincide at {src}")
    if us <= ud:
        return 1 if vs <= vd else 2
    return 4 if vs <= vd else 3


def diag_index(mesh: Mesh, d: int, u: int, v: int) -> int:
    """0-based index ``k`` of the diagonal ``D(d)_k`` containing ``(u, v)``.

    Ranges over ``0 .. p + q - 2``; the paper's 1-based ``k`` is this plus 1.
    """
    mesh.check_core(u, v)
    su, sv = direction_steps(d)
    a = u if su > 0 else mesh.p - 1 - u
    b = v if sv > 0 else mesh.q - 1 - v
    return a + b


def diagonal_cores(mesh: Mesh, d: int, k: int) -> List[Coord]:
    """All cores on diagonal ``D(d)_k`` (0-based ``k``)."""
    if not 0 <= k <= mesh.p + mesh.q - 2:
        raise InvalidParameterError(
            f"diagonal index {k} out of range [0, {mesh.p + mesh.q - 2}]"
        )
    su, sv = direction_steps(d)
    out: List[Coord] = []
    for a in range(min(k, mesh.p - 1) + 1):
        b = k - a
        if b < 0 or b > mesh.q - 1:
            continue
        u = a if su > 0 else mesh.p - 1 - a
        v = b if sv > 0 else mesh.q - 1 - b
        out.append((u, v))
    return out


def band_links_full(mesh: Mesh, d: int, k: int) -> List[int]:
    """Ids of every mesh link from ``D(d)_k`` to ``D(d)_{k+1}``.

    This is the *whole-chip* band used by the theoretical lower bound
    (Theorems 1 and 2): the ideal load-balancing would spread the traffic
    crossing diagonal ``k`` over all these links.  Per-communication bands
    (restricted to the communication's rectangle) live on
    :class:`repro.mesh.paths.CommDag`.
    """
    su, sv = direction_steps(d)
    out: List[int] = []
    for (u, v) in diagonal_cores(mesh, d, k):
        u2 = u + su
        if 0 <= u2 < mesh.p:
            out.append(mesh.link_between((u, v), (u2, v)))
        v2 = v + sv
        if 0 <= v2 < mesh.q:
            out.append(mesh.link_between((u, v), (u, v2)))
    return out


def band_link_count(mesh: Mesh, d: int, k: int) -> int:
    """Number of links from ``D(d)_k`` to ``D(d)_{k+1}`` (fast count).

    Equals ``len(band_links_full(mesh, d, k))`` but computed in O(diagonal)
    without materialising link ids.
    """
    su, sv = direction_steps(d)
    n = 0
    for (u, v) in diagonal_cores(mesh, d, k):
        if 0 <= u + su < mesh.p:
            n += 1
        if 0 <= v + sv < mesh.q:
            n += 1
    return n
