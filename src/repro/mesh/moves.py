"""Move-sequence representation of Manhattan paths.

A Manhattan path of a communication is fully described by the order in which
it interleaves its ``Δv`` horizontal hops and ``Δu`` vertical hops: a string
over ``{'H', 'V'}`` of length ``Δu + Δv``.  The actual grid direction of the
hops (east/west, south/north) is fixed by the communication's direction
``d`` (see :mod:`repro.mesh.diagonals`), so the move string is
direction-agnostic — which makes path surgery (the XYI corner relocations)
pure string manipulation.

This module provides conversions between move strings, core sequences and
link-id sequences, the XY / YX / two-bend move generators, and the two
corner-relocation operations used by the XY-improver heuristic (Section
5.4 of the paper).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.mesh.diagonals import direction_of, direction_steps
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

Coord = Tuple[int, int]

MOVE_H = "H"  #: one horizontal hop (toward the sink's column)
MOVE_V = "V"  #: one vertical hop (toward the sink's row)


def _deltas(src: Coord, snk: Coord) -> Tuple[int, int]:
    """(Δu, Δv): number of vertical and horizontal hops required."""
    return abs(snk[0] - src[0]), abs(snk[1] - src[1])


def validate_moves(src: Coord, snk: Coord, moves: str) -> None:
    """Check that ``moves`` is a Manhattan move string from ``src`` to ``snk``.

    Raises
    ------
    InvalidParameterError
        If the counts of H and V moves do not match the displacement, or the
        string contains foreign characters.
    """
    du, dv = _deltas(src, snk)
    if len(moves) != du + dv:
        raise InvalidParameterError(
            f"move string of length {len(moves)} cannot join {src} to {snk} "
            f"(needs {du + dv} hops)"
        )
    nv = moves.count(MOVE_V)
    nh = moves.count(MOVE_H)
    if nv + nh != len(moves):
        bad = set(moves) - {MOVE_H, MOVE_V}
        raise InvalidParameterError(f"move string contains invalid moves {bad}")
    if nv != du or nh != dv:
        raise InvalidParameterError(
            f"move string {moves!r} has {nv} V / {nh} H hops; "
            f"{src} -> {snk} needs {du} V / {dv} H"
        )


def xy_moves(src: Coord, snk: Coord) -> str:
    """The XY route: all horizontal hops first, then all vertical hops."""
    du, dv = _deltas(src, snk)
    return MOVE_H * dv + MOVE_V * du


def yx_moves(src: Coord, snk: Coord) -> str:
    """The YX route: all vertical hops first, then all horizontal hops."""
    du, dv = _deltas(src, snk)
    return MOVE_V * du + MOVE_H * dv


def two_bend_moves(src: Coord, snk: Coord) -> List[str]:
    """All distinct move strings with at most two bends (Section 5.3).

    These are the H–V–H shapes (turn column anywhere between the endpoints)
    plus the V–H–V shapes (turn row anywhere), deduplicated; the two L-shaped
    one-bend routes (XY, YX) occur in both families.  When both
    displacements are non-zero there are exactly ``Δu + Δv`` of them, the
    bound stated in the paper.
    """
    du, dv = _deltas(src, snk)
    if du == 0 or dv == 0:
        return [MOVE_V * du + MOVE_H * dv]
    seen = set()
    out: List[str] = []
    for c in range(dv + 1):  # H^c V^du H^(dv-c)
        m = MOVE_H * c + MOVE_V * du + MOVE_H * (dv - c)
        if m not in seen:
            seen.add(m)
            out.append(m)
    for r in range(du + 1):  # V^r H^dv V^(du-r)
        m = MOVE_V * r + MOVE_H * dv + MOVE_V * (du - r)
        if m not in seen:
            seen.add(m)
            out.append(m)
    return out


def moves_to_cores(src: Coord, snk: Coord, moves: str) -> List[Coord]:
    """Core sequence visited by ``moves`` (length ``len(moves) + 1``)."""
    validate_moves(src, snk, moves)
    d = direction_of(src, snk)
    su, sv = direction_steps(d)
    u, v = src
    out = [(u, v)]
    for m in moves:
        if m == MOVE_V:
            u += su
        else:
            v += sv
        out.append((u, v))
    if out[-1] != snk:
        raise InvalidParameterError(
            f"moves {moves!r} end at {out[-1]}, expected {snk}"
        )
    return out


def moves_to_links(mesh: Mesh, src: Coord, snk: Coord, moves: str) -> List[int]:
    """Link-id sequence traversed by ``moves``."""
    cores = moves_to_cores(src, snk, moves)
    return [mesh.link_between(a, b) for a, b in zip(cores, cores[1:])]


def _as_list(moves: str) -> List[str]:
    return list(moves)


def relocate_h_after(moves: str, v_pos: int) -> str | None:
    """XYI move for a *vertical* target link (Section 5.4).

    The vertical hop at index ``v_pos`` is pushed one column toward the
    source by relocating the nearest *preceding* horizontal move to just
    after it.  Geometrically the whole vertical run between that horizontal
    hop and ``v_pos`` shifts one column toward the source, and the path
    re-enters the target link's head core through "the horizontal link going
    to the same core, from the core that is the closest to the source core".

    Returns the new move string, or ``None`` when no horizontal move
    precedes ``v_pos`` (the communication "cannot be moved without violating
    the Manhattan path constraint").
    """
    if not 0 <= v_pos < len(moves) or moves[v_pos] != MOVE_V:
        raise InvalidParameterError(
            f"v_pos={v_pos} does not index a V move in {moves!r}"
        )
    h_pos = moves.rfind(MOVE_H, 0, v_pos)
    if h_pos < 0:
        return None
    seq = _as_list(moves)
    h = seq.pop(h_pos)
    seq.insert(v_pos, h)  # after popping, index v_pos is *after* the V hop
    return "".join(seq)


def relocate_v_before(moves: str, h_pos: int) -> str | None:
    """XYI move for a *horizontal* target link (Section 5.4).

    The horizontal hop at index ``h_pos`` is pushed one row toward the sink
    by relocating the nearest *following* vertical move to just before it:
    the path leaves the target link's tail core through "the vertical link
    going from the same core, and going to the core that is closest to the
    sink core".

    Returns the new move string, or ``None`` when no vertical move follows
    ``h_pos``.
    """
    if not 0 <= h_pos < len(moves) or moves[h_pos] != MOVE_H:
        raise InvalidParameterError(
            f"h_pos={h_pos} does not index an H move in {moves!r}"
        )
    v_pos = moves.find(MOVE_V, h_pos + 1)
    if v_pos < 0:
        return None
    seq = _as_list(moves)
    v = seq.pop(v_pos)
    seq.insert(h_pos, v)
    return "".join(seq)


def bends(moves: str) -> int:
    """Number of direction changes along the move string."""
    return sum(1 for a, b in zip(moves, moves[1:]) if a != b)


def segment_between(moves: str, lo: int, hi: int) -> str:
    """Sub-string of moves in positions ``[lo, hi)`` with bounds checking."""
    if not (0 <= lo <= hi <= len(moves)):
        raise InvalidParameterError(
            f"segment [{lo}, {hi}) out of bounds for {len(moves)} moves"
        )
    return moves[lo:hi]
