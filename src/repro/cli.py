"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``generate``   draw a workload (random / length-targeted / pattern) to CSV
``route``      route a workload with one heuristic (or BEST/ALL) and report
``figures``    regenerate paper figure panels (fig7a..fig9c, summary)
``scenarios``  list or run registered scenarios (faulty / derated / ...)
``theory``     print the Theorem 1 / Lemma 2 separation tables
``simulate``   run a saved routing on the flit-level NoC simulator
``noc sweep``  load–latency curve of a saved routing or a registry
               scenario on the array flit engine (``--jobs``/``--engine``)

Every command is a thin shell over the library API; ``main(argv)`` returns
a process exit code so the CLI is unit-testable.  User errors (unknown
scenario or panel names, out-of-domain ``--jobs`` values, malformed
inputs) exit with code 2 and a one-line ``error:`` message — never a
traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import Mesh, PowerModel, RoutingProblem
from repro.utils.validation import ReproError


def _parse_mesh(text: str) -> Mesh:
    try:
        p, q = text.lower().split("x")
        return Mesh(int(p), int(q))
    except (ValueError, AttributeError):
        raise ReproError(f"mesh must look like '8x8', got {text!r}") from None


def _parse_model(name: str) -> PowerModel:
    models = {
        "kim-horowitz": PowerModel.kim_horowitz,
        "continuous": PowerModel.continuous_kim_horowitz,
        "fig2": PowerModel.fig2_example,
    }
    if name not in models:
        raise ReproError(
            f"unknown power model {name!r}; choose from {sorted(models)}"
        )
    return models[name]()


# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.io import workload_to_csv
    from repro.workloads import (
        hotspot_pattern,
        length_targeted_workload,
        transpose_pattern,
        uniform_random_workload,
    )

    mesh = _parse_mesh(args.mesh)
    if args.kind == "random":
        comms = uniform_random_workload(
            mesh, args.n, args.rate_min, args.rate_max, rng=args.seed
        )
    elif args.kind == "length":
        comms = length_targeted_workload(
            mesh, args.n, args.length, args.rate_min, args.rate_max,
            rng=args.seed,
        )
    elif args.kind == "transpose":
        comms = transpose_pattern(mesh, args.rate_max)
    elif args.kind == "hotspot":
        comms = hotspot_pattern(mesh, args.rate_max, rng=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown workload kind {args.kind!r}")
    text = workload_to_csv(comms, args.out)
    if args.out:
        print(f"wrote {len(comms)} communications to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.heuristics import PAPER_HEURISTICS, BestOf, get_heuristic
    from repro.io import save_routing, workload_from_csv
    from repro.utils.tables import format_table

    mesh = _parse_mesh(args.mesh)
    power = _parse_model(args.model)
    comms = workload_from_csv(args.workload)
    problem = RoutingProblem(mesh, power, comms)

    names: Sequence[str]
    if args.heuristic == "ALL":
        names = PAPER_HEURISTICS
    elif args.heuristic == "BEST":
        names = ()
    else:
        names = (args.heuristic,)

    rows = []
    best_result = None
    if args.heuristic == "BEST":
        best_result = BestOf().solve(problem)
        rows.append(
            [
                "BEST",
                "yes" if best_result.valid else "NO",
                f"{best_result.power:.2f}" if best_result.valid else "-",
                f"{best_result.runtime_s * 1e3:.1f}",
            ]
        )
    else:
        for name in names:
            res = get_heuristic(name).solve(problem)
            rows.append(
                [
                    name,
                    "yes" if res.valid else "NO",
                    f"{res.power:.2f}" if res.valid else "-",
                    f"{res.runtime_s * 1e3:.1f}",
                ]
            )
            if best_result is None or (
                res.valid
                and (not best_result.valid or res.power < best_result.power)
            ):
                best_result = res
    print(format_table(["heuristic", "valid", "power", "ms"], rows))

    assert best_result is not None
    if args.show_map:
        from repro.viz import load_legend, render_loads

        print()
        print(render_loads(mesh, best_result.routing.link_loads(), power=power))
        print(load_legend())
    if args.out:
        save_routing(best_result.routing, args.out)
        print(f"routing saved to {args.out}")
    if args.svg:
        from repro.viz import mesh_heatmap_svg, save_svg

        save_svg(
            args.svg,
            mesh_heatmap_svg(
                mesh,
                best_result.routing.link_loads(),
                power,
                title=f"{best_result.name} link loads",
            ),
        )
        print(f"heat map saved to {args.svg}")
    return 0 if best_result.valid else 1


def _check_jobs(jobs: int) -> None:
    if jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {jobs}")


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures, sweep_to_text

    _check_jobs(args.jobs)
    if args.panel != "summary" and args.panel not in figures.PANELS:
        raise ReproError(
            f"unknown panel {args.panel!r}; choose from "
            f"{', '.join(figures.PANELS)} or 'summary'"
        )
    # pass trials explicitly rather than through REPRO_TRIALS — mutating
    # os.environ would leak into everything else running in this process
    kw = {}
    if args.trials:
        kw["trials"] = args.trials
    if args.panel == "summary":
        if args.trials:
            # historical CLI semantics: summary always sampled 10x the
            # per-point trial budget (it averages over ~100 instance
            # families, so it needs the larger pool)
            kw["trials"] = 10 * args.trials
        s = figures.summary_statistics(jobs=args.jobs, **kw)
        for name, ratio in s.success_ratio.items():
            print(f"success {name:>5s}: {ratio:.2f}")
        print(f"static fraction: {s.static_fraction:.3f}")
        return 0
    sweep = getattr(figures, args.panel)(jobs=args.jobs, **kw)
    print(sweep_to_text(sweep))
    if args.svg_dir:
        import pathlib

        from repro.viz import save_svg, sweep_to_svg

        out_dir = pathlib.Path(args.svg_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for metric in ("norm_power_inverse", "failure_ratio"):
            path = out_dir / f"{args.panel}_{metric}.svg"
            save_svg(path, sweep_to_svg(sweep, metric))
            print(f"chart saved to {path}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import available_scenarios, get_scenario, run_scenario

    if args.action == "list":
        for name in available_scenarios():
            sc = get_scenario(name)
            print(f"{name:>16}  [{sc.mesh.describe()}]  {sc.description}")
        return 0
    # run
    _check_jobs(args.jobs)
    if args.trials is not None and args.trials < 1:
        raise ReproError(f"--trials must be >= 1, got {args.trials}")
    result = run_scenario(
        args.name, jobs=args.jobs, trials=args.trials, seed=args.seed
    )
    print(result.to_text())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_jsonable(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"snapshot saved to {args.json}")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro.theory import lemma2_powers, theorem1_powers
    from repro.utils.tables import format_table

    sizes = args.sizes or [4, 8, 16, 32]
    rows1 = []
    rows2 = []
    for p in sizes:
        if p % 2 == 0:
            r = theorem1_powers(p)
            rows1.append([p, f"{r['p_xy']:.1f}", f"{r['p_manhattan']:.3f}",
                          f"{r['ratio']:.2f}"])
        r = lemma2_powers(p)
        rows2.append([p, f"{r['p_xy']:.0f}", f"{r['p_yx']:.0f}",
                      f"{r['ratio']:.1f}"])
    print("Theorem 1 (single pair, max-MP construction):")
    print(format_table(["p", "P_XY", "P_maxMP", "ratio"], rows1))
    print("\nLemma 2 (staircase, YX vs XY):")
    print(format_table(["p", "P_XY", "P_YX", "ratio"], rows2))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.io import load_routing
    from repro.noc import latency_sweep, saturation_fraction
    from repro.utils.tables import format_table

    routing = load_routing(args.routing)
    fractions = [float(f) for f in args.fractions.split(",")]
    points = latency_sweep(
        routing,
        fractions,
        cycles=args.cycles,
        warmup=args.cycles // 5,
        injection=args.injection,
        seed=args.seed,
    )
    rows = [
        [
            f"{pt.fraction:.2f}",
            f"{pt.mean_latency:.1f}" if pt.mean_latency < 1e12 else "-",
            f"{pt.delivered_ratio:.2f}",
            f"{pt.max_link_utilization:.2f}",
            "DEADLOCK" if pt.deadlocked else ("ok" if pt.stable else "sat"),
        ]
        for pt in points
    ]
    print(
        format_table(
            ["fraction", "latency", "delivered", "max util", "state"], rows
        )
    )
    sat = saturation_fraction(points)
    print(f"saturation fraction: {sat:.2f}" if sat != float("inf")
          else "no saturation inside the sweep")
    return 0


def _parse_fractions(text: str) -> List[float]:
    try:
        fractions = [float(f) for f in text.split(",") if f.strip()]
    except ValueError:
        raise ReproError(
            f"--fractions must be comma-separated numbers, got {text!r}"
        ) from None
    if not fractions:
        raise ReproError("--fractions must name at least one fraction")
    return fractions


def _cmd_noc_sweep(args: argparse.Namespace) -> int:
    from repro.noc import latency_sweep, points_table, saturation_fraction

    _check_jobs(args.jobs)
    if args.cycles < 1:
        raise ReproError(f"--cycles must be >= 1, got {args.cycles}")
    fractions = _parse_fractions(args.fractions)
    if bool(args.routing) == bool(args.scenario):
        raise ReproError(
            "pass exactly one input: a routing JSON path or --scenario NAME"
        )
    if args.scenario:
        from repro.scenarios import scenario_latency_curve

        result = scenario_latency_curve(
            args.scenario,
            heuristic=args.heuristic,
            fractions=fractions,
            cycles=args.cycles,
            warmup=args.cycles // 5,
            injection=args.injection,
            seed=args.seed,
            jobs=args.jobs,
            engine=args.engine,
        )
        print(result.to_text())
        doc = result.to_jsonable()
    else:
        from repro.io import load_routing

        routing = load_routing(args.routing)
        points = latency_sweep(
            routing,
            fractions,
            cycles=args.cycles,
            warmup=args.cycles // 5,
            injection=args.injection,
            seed=args.seed if args.seed is not None else 0,
            jobs=args.jobs,
            engine=args.engine,
        )
        print(points_table(points))
        sat = saturation_fraction(points)
        print(
            f"saturation fraction: {sat:.2f}"
            if sat != float("inf")
            else "no saturation inside the sweep"
        )
        doc = {
            "routing": args.routing,
            "engine": args.engine,
            "injection": args.injection,
            "cycles": args.cycles,
            "seed": args.seed if args.seed is not None else 0,
            "points": [pt.to_jsonable() for pt in points],
        }
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"latency curve saved to {args.json}")
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    from repro.heuristics import PAPER_HEURISTICS, get_heuristic
    from repro.utils.tables import format_table
    from repro.workloads import (
        annealed_placement,
        bandwidth_aware_placement,
        map_applications,
        published_app,
        region_split,
    )

    mesh = _parse_mesh(args.mesh)
    power = _parse_model(args.model)
    apps = [published_app(n, scale=args.scale) for n in args.apps.split(",")]
    regions = region_split(mesh, [a.num_tasks for a in apps])
    placements = []
    for app, region in zip(apps, regions):
        if args.mapping == "annealed":
            placements.append(
                annealed_placement(
                    mesh, app, region=region, iterations=2000, seed=args.seed
                )
            )
        elif args.mapping == "greedy":
            placements.append(
                bandwidth_aware_placement(
                    mesh, app, region=region, rng=args.seed
                )
            )
        else:  # row-major
            placements.append(list(region[: app.num_tasks]))
    comms = map_applications(apps, placements)
    problem = RoutingProblem(mesh, power, comms)
    print(
        f"{', '.join(a.name for a in apps)}: {len(comms)} communications, "
        f"total {problem.total_rate:.0f} Mb/s ({args.mapping} mapping)"
    )
    rows = []
    for name in PAPER_HEURISTICS:
        res = get_heuristic(name).solve(problem)
        rows.append(
            [
                name,
                "yes" if res.valid else "NO",
                f"{res.power:.1f}" if res.valid else "-",
                f"{res.runtime_s * 1e3:.1f}",
            ]
        )
    print(format_table(["heuristic", "valid", "power mW", "ms"], rows))
    return 0


def _cmd_open_problem(args: argparse.Namespace) -> int:
    from repro.core.problem import Communication
    from repro.optimal import same_endpoint_gap
    from repro.utils.tables import format_table

    mesh = _parse_mesh(args.mesh)
    power = PowerModel.dynamic_only(alpha=args.alpha, bandwidth=float("inf"))
    rates = [float(r) for r in args.rates.split(",")]
    problem = RoutingProblem(
        mesh,
        power,
        [
            Communication((0, 0), (mesh.p - 1, mesh.q - 1), r)
            for r in rates
        ],
    )
    gap = same_endpoint_gap(problem)
    rows = [
        ["XY", f"{gap.xy_power:.4g}"],
        ["optimal 1-MP (exact DP)", f"{gap.single_path_power:.4g}"],
        ["max-MP upper (flow LP)", f"{gap.flow_upper:.4g}"],
        ["max-MP lower (certified)", f"{gap.flow_lower:.4g}"],
        ["ideal-spread bound", f"{gap.ideal_bound:.4g}"],
    ]
    print(
        f"shared-endpoint ladder on {mesh.p}x{mesh.q}, rates {rates}, "
        f"alpha={args.alpha} (dynamic power only)"
    )
    print(format_table(["routing", "power"], rows))
    print(
        f"XY / optimal-1MP = {gap.xy_vs_single:.2f};  "
        f"optimal-1MP / maxMP = {gap.single_vs_multi:.3f}"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io import load_routing
    from repro.noc import FlitSimulator, direction_class_vc, is_deadlock_free

    routing = load_routing(args.routing)
    free = is_deadlock_free(routing, direction_class_vc)
    print(f"deadlock-free under direction-class VCs: {free}")
    sim = FlitSimulator(
        routing,
        num_vcs=4,
        buffer_flits=args.buffer_flits,
        packet_flits=args.packet_flits,
    )
    rep = sim.run(args.cycles, warmup=args.cycles // 10)
    ach = [f.achieved_fraction for f in rep.flows]
    print(
        f"delivered {rep.total_delivered_flits} flits over {args.cycles} "
        f"cycles; throughput achieved: min {min(ach):.2f} mean "
        f"{sum(ach) / len(ach):.2f}"
    )
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Power-aware Manhattan routing on chip multiprocessors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="draw a workload to CSV")
    g.add_argument("--mesh", default="8x8")
    g.add_argument(
        "--kind", choices=("random", "length", "transpose", "hotspot"),
        default="random",
    )
    g.add_argument("--n", type=int, default=20)
    g.add_argument("--length", type=int, default=6)
    g.add_argument("--rate-min", type=float, default=100.0)
    g.add_argument("--rate-max", type=float, default=2500.0)
    g.add_argument("--seed", type=int, default=None)
    g.add_argument("--out", default=None)
    g.set_defaults(func=_cmd_generate)

    r = sub.add_parser("route", help="route a CSV workload")
    r.add_argument("workload", help="workload CSV path")
    r.add_argument("--mesh", default="8x8")
    r.add_argument("--model", default="kim-horowitz")
    r.add_argument("--heuristic", default="ALL",
                   help="XY|SG|IG|TB|XYI|PR|YX|BEST|ALL")
    r.add_argument("--out", default=None, help="save best routing JSON here")
    r.add_argument("--show-map", action="store_true")
    r.add_argument(
        "--svg", default=None, help="save an SVG link-load heat map here"
    )
    r.set_defaults(func=_cmd_route)

    sc = sub.add_parser(
        "scenarios", help="list or run registered scenarios"
    )
    sc_sub = sc.add_subparsers(dest="action", required=True)
    sc_list = sc_sub.add_parser("list", help="show every registered scenario")
    sc_list.set_defaults(func=_cmd_scenarios)
    sc_run = sc_sub.add_parser("run", help="run one scenario and report")
    sc_run.add_argument("name", help="registry name (see 'scenarios list')")
    sc_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo trials (default: serial)",
    )
    sc_run.add_argument(
        "--trials", type=int, default=None,
        help="override the scenario's default trial count",
    )
    sc_run.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's default seed",
    )
    sc_run.add_argument(
        "--json", default=None,
        help="also save the exact (hex-float) snapshot to this path",
    )
    sc_run.set_defaults(func=_cmd_scenarios)

    f = sub.add_parser("figures", help="regenerate paper figures")
    f.add_argument("panel", help="fig7a..fig9c or 'summary'")
    f.add_argument("--trials", type=int, default=None)
    f.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo sweep (default: serial)",
    )
    f.add_argument(
        "--svg-dir",
        default=None,
        help="also render the sweep to SVG charts in this directory",
    )
    f.set_defaults(func=_cmd_figures)

    t = sub.add_parser("theory", help="Theorem 1 / Lemma 2 tables")
    t.add_argument("--sizes", type=int, nargs="*", default=None)
    t.set_defaults(func=_cmd_theory)

    s = sub.add_parser("simulate", help="flit-simulate a saved routing")
    s.add_argument("routing", help="routing JSON path")
    s.add_argument("--cycles", type=int, default=20000)
    s.add_argument("--buffer-flits", type=int, default=4)
    s.add_argument("--packet-flits", type=int, default=8)
    s.set_defaults(func=_cmd_simulate)

    n = sub.add_parser(
        "noc", help="flit-engine NoC evaluation (load-latency sweeps)"
    )
    n_sub = n.add_subparsers(dest="action", required=True)
    n_sweep = n_sub.add_parser(
        "sweep",
        help="load-latency curve of a saved routing or a registry scenario",
    )
    n_sweep.add_argument(
        "routing", nargs="?", default=None,
        help="routing JSON path (omit when using --scenario)",
    )
    n_sweep.add_argument(
        "--scenario", default=None,
        help="sweep a registry scenario's trial-0 instance instead "
        "(see 'scenarios list')",
    )
    n_sweep.add_argument(
        "--heuristic", default="BEST",
        help="heuristic deployed for --scenario (default: BEST)",
    )
    n_sweep.add_argument("--fractions", default="0.2,0.5,0.8,1.0,1.5,2.0")
    n_sweep.add_argument("--cycles", type=int, default=4000)
    n_sweep.add_argument(
        "--injection",
        choices=("deterministic", "bernoulli", "burst"),
        default="bernoulli",
    )
    n_sweep.add_argument("--seed", type=int, default=None)
    n_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes, one sweep point each (default: serial)",
    )
    n_sweep.add_argument(
        "--engine", choices=("array", "reference"), default="array",
        help="flit engine (the cycle-exact 'reference' oracle is slower)",
    )
    n_sweep.add_argument(
        "--json", default=None,
        help="also save the exact (hex-float) latency curve to this path",
    )
    n_sweep.set_defaults(func=_cmd_noc_sweep)

    l = sub.add_parser(
        "latency", help="load-latency sweep of a saved routing"
    )
    l.add_argument("routing", help="routing JSON path")
    l.add_argument("--fractions", default="0.2,0.5,0.8,1.0,1.5,2.0")
    l.add_argument("--cycles", type=int, default=4000)
    l.add_argument(
        "--injection",
        choices=("deterministic", "bernoulli", "burst"),
        default="bernoulli",
    )
    l.add_argument("--seed", type=int, default=0)
    l.set_defaults(func=_cmd_latency)

    a = sub.add_parser(
        "apps", help="route the published multimedia task graphs"
    )
    a.add_argument("--apps", default="vopd,mpeg4,mwd,pip",
                   help="comma-separated: vopd,mpeg4,mwd,pip")
    a.add_argument("--mesh", default="8x8")
    a.add_argument("--model", default="kim-horowitz")
    a.add_argument("--scale", type=float, default=3.0,
                   help="Mb/s per published MB/s")
    a.add_argument(
        "--mapping",
        choices=("annealed", "greedy", "row-major"),
        default="annealed",
    )
    a.add_argument("--seed", type=int, default=0)
    a.set_defaults(func=_cmd_apps)

    o = sub.add_parser(
        "open-problem",
        help="shared-endpoint ladder: XY vs exact 1-MP vs max-MP",
    )
    o.add_argument("--mesh", default="8x8")
    o.add_argument("--rates", default="500,500,500,500",
                   help="comma-separated Mb/s, all corner-to-corner")
    o.add_argument("--alpha", type=float, default=2.95)
    o.set_defaults(func=_cmd_open_problem)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # unwritable --out/--json/--svg paths, unreadable inputs, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
