"""Exact solvers for the shared source/destination case — the paper's
open problem.

The conclusion of the paper leaves two questions open for workloads in
which *all communications share one source and one destination* (the
Theorem 1 scenario):

1. "estimate how much can be gained by a single-path Manhattan routing
   when all communications share the same source and destination nodes";
2. "establish a bound on the optimal solution … or even compute the
   optimal solution for small problem instances".

Both reduce dramatically in the shared-endpoint case:

* the **max-MP optimum** of the dynamic-power relaxation is a
  *single-commodity* convex min-cost flow on the communication's routing
  DAG (the coupling between communications disappears because any split
  of the aggregate flow into per-communication shares is feasible).
  :func:`same_endpoint_flow` solves it by piecewise-linearising the convex
  edge cost and calling SciPy's HiGHS LP — chord slopes give an
  implementable routing and an upper bound, left-derivative slopes give a
  certified lower bound, so the continuous optimum is *sandwiched*;
* the **1-MP optimum** admits a band-by-band dynamic program whose state
  is the multiset of (rate, diagonal-position) pairs —
  :func:`optimal_same_endpoint_single_path` computes the exact optimal
  single-path routing (leakage and discrete frequencies included) on
  instances far beyond the reach of the general branch-and-bound of
  :mod:`repro.optimal.exhaustive`.

:func:`same_endpoint_gap` bundles XY, the DP 1-MP optimum, the flow
sandwich and the ideal-spread bound into one record — the quantitative
answer to open question 1 (the ``open_problem`` campaign experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.power import PowerModel
from repro.core.problem import RoutingProblem
from repro.core.routing import RoutedFlow, Routing
from repro.mesh.moves import MOVE_H, MOVE_V
from repro.mesh.paths import CommDag, Path
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError, check_positive

Coord = Tuple[int, int]


def _require_shared_endpoints(problem: RoutingProblem) -> Tuple[Coord, Coord]:
    """The (src, snk) every communication of ``problem`` must share."""
    if problem.num_comms == 0:
        raise InvalidParameterError("empty communication set")
    src = problem.comms[0].src
    snk = problem.comms[0].snk
    for c in problem.comms:
        if c.src != src or c.snk != snk:
            raise InvalidParameterError(
                "same-endpoint solvers need every communication to share one "
                f"source and destination; found {c.src}->{c.snk} next to "
                f"{src}->{snk}"
            )
    return src, snk


# ======================================================================
# max-MP: single-commodity convex flow, LP-sandwiched
# ======================================================================
@dataclass(frozen=True)
class SameEndpointFlowResult:
    """Sandwich of the shared-endpoint max-MP dynamic-power optimum.

    Attributes
    ----------
    loads:
        Optimal link loads (per mesh link id) of the chord LP — a feasible
        max-MP flow.
    upper_bound:
        Dynamic power of ``loads`` under the *true* convex cost (any
        feasible point upper-bounds the optimum).
    lower_bound:
        Optimal value of the tangent (left-derivative) LP — a certified
        lower bound on the continuous optimum.
    segments:
        Piecewise-linear segments per link used in both LPs.
    feasible:
        False when the total rate cannot cross some diagonal band within
        the bandwidth (then no max-MP routing exists at all).
    """

    loads: np.ndarray
    upper_bound: float
    lower_bound: float
    segments: int
    feasible: bool

    @property
    def gap(self) -> float:
        """Relative width of the sandwich (0 = solved to LP precision)."""
        if not self.feasible or self.upper_bound == 0:
            return 0.0
        return (self.upper_bound - self.lower_bound) / self.upper_bound


def _dag_lp(
    dag: CommDag,
    power: PowerModel,
    total_rate: float,
    segments: int,
    slope_rule: str,
) -> Tuple[Optional[np.ndarray], float]:
    """One piecewise-linear flow LP; returns (loads per mesh link, value).

    ``slope_rule`` is ``"chord"`` (over-estimator → feasible loads and an
    upper bound) or ``"tangent"`` (left-derivative under-estimator → a
    certified lower bound).  Returns ``(None, inf)`` when infeasible.
    """
    edges = dag.all_link_ids()
    n_edges = len(edges)
    cap = min(power.bandwidth, total_rate)
    breaks = np.linspace(0.0, cap, segments + 1)
    widths = np.diff(breaks)

    unit = power.freq_unit
    p0, alpha = power.p0, power.alpha

    def cost(x: np.ndarray) -> np.ndarray:
        return p0 * (x / unit) ** alpha

    def dcost(x: np.ndarray) -> np.ndarray:
        return p0 * alpha * (x / unit) ** (alpha - 1) / unit

    if slope_rule == "chord":
        slopes = np.diff(cost(breaks)) / widths
    elif slope_rule == "tangent":
        slopes = dcost(breaks[:-1])
    else:  # pragma: no cover - internal
        raise InvalidParameterError(f"unknown slope rule {slope_rule!r}")

    # variables: y[e, m] = flow of edge e inside segment m
    c_vec = np.tile(slopes, n_edges)
    ub = np.tile(widths, n_edges)

    # conservation rows: one per progress node except the sink
    node_id: Dict[Coord, int] = {}
    for x in range(dag.du + 1):
        for y in range(dag.dv + 1):
            if (x, y) != (dag.du, dag.dv):
                node_id[(x, y)] = len(node_id)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for e, lid in enumerate(edges):
        x, y, kind = dag.edge_tail(lid)
        head = (x + 1, y) if kind == MOVE_V else (x, y + 1)
        for m in range(segments):
            col = e * segments + m
            rows.append(node_id[(x, y)])
            cols.append(col)
            vals.append(1.0)  # outflow of the tail
            if head in node_id:
                rows.append(node_id[head])
                cols.append(col)
                vals.append(-1.0)  # inflow of the head (sink row dropped)
    a_eq = csr_matrix(
        (vals, (rows, cols)), shape=(len(node_id), n_edges * segments)
    )
    b_eq = np.zeros(len(node_id))
    b_eq[node_id[(0, 0)]] = total_rate

    res = linprog(
        c_vec,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=np.column_stack([np.zeros_like(ub), ub]),
        method="highs",
    )
    if res.status == 2:  # infeasible: some band cannot carry the rate
        return None, float("inf")
    if not res.success:  # pragma: no cover - solver hiccup
        raise InvalidParameterError(f"LP solver failed: {res.message}")
    y = res.x.reshape(n_edges, segments)
    edge_loads = y.sum(axis=1)
    loads = np.zeros(dag.mesh.num_links, dtype=np.float64)
    for e, lid in enumerate(edges):
        loads[lid] = edge_loads[e]
    return loads, float(res.fun)


def same_endpoint_flow(
    mesh: Mesh,
    src: Coord,
    snk: Coord,
    total_rate: float,
    power: PowerModel,
    *,
    segments: int = 32,
) -> SameEndpointFlowResult:
    """Sandwich the shared-endpoint max-MP dynamic-power optimum.

    Solves two piecewise-linear LPs on the routing DAG of ``src → snk``
    (see module docstring).  The sandwich certifies the *continuous
    dynamic-power relaxation* — the Section 4 model (``P_leak = 0``,
    continuous frequencies); leakage and frequency quantisation of a
    concrete routing can be evaluated afterwards on the returned loads.
    """
    check_positive("total_rate", total_rate)
    if segments < 2:
        raise InvalidParameterError(f"segments must be >= 2, got {segments}")
    dag = CommDag(mesh, src, snk)
    loads, _ = _dag_lp(dag, power, total_rate, segments, "chord")
    if loads is None:
        return SameEndpointFlowResult(
            loads=np.zeros(mesh.num_links),
            upper_bound=float("inf"),
            lower_bound=float("inf"),
            segments=segments,
            feasible=False,
        )
    # LP solutions can carry tiny negative dust on unused edges; a negative
    # base under a fractional exponent is NaN, so clamp before powering
    loads = np.maximum(loads, 0.0)
    upper = float(power.p0 * np.sum((loads / power.freq_unit) ** power.alpha))
    _, lower = _dag_lp(dag, power, total_rate, segments, "tangent")
    # numerical guard: the sandwich must be ordered
    lower = min(lower, upper)
    return SameEndpointFlowResult(
        loads=loads,
        upper_bound=upper,
        lower_bound=lower,
        segments=segments,
        feasible=True,
    )


def flow_to_routing(
    problem: RoutingProblem, loads: np.ndarray
) -> Routing:
    """Materialise shared-endpoint link loads as a max-MP :class:`Routing`.

    Decomposes the flow into at most ``#edges`` source→sink paths, then
    deals path capacity out to the communications first-fit (any split is
    feasible because every communication shares the endpoints).
    """
    src, snk = _require_shared_endpoints(problem)
    mesh = problem.mesh
    dag = CommDag(mesh, src, snk)
    residual = {lid: float(loads[lid]) for lid in dag.all_link_ids()}
    total = float(sum(c.rate for c in problem.comms))
    eps = 1e-9 * max(total, 1.0)

    # flow decomposition on the DAG
    pieces: List[Tuple[Path, float]] = []
    remaining = total
    while remaining > eps:
        moves: List[str] = []
        lids: List[int] = []
        x = y = 0
        bottleneck = remaining
        while (x, y) != (dag.du, dag.dv):
            picked = None
            for kind in (MOVE_V, MOVE_H):
                if (kind == MOVE_V and x < dag.du) or (
                    kind == MOVE_H and y < dag.dv
                ):
                    lid = dag.edge(x, y, kind)
                    if residual.get(lid, 0.0) > eps:
                        picked = (kind, lid)
                        break
            if picked is None:  # pragma: no cover - conservation guarantees
                raise InvalidParameterError(
                    "flow decomposition stuck: loads violate conservation"
                )
            kind, lid = picked
            moves.append(kind)
            lids.append(lid)
            bottleneck = min(bottleneck, residual[lid])
            x, y = (x + 1, y) if kind == MOVE_V else (x, y + 1)
        for lid in lids:
            residual[lid] -= bottleneck
        pieces.append((Path(mesh, src, snk, "".join(moves)), bottleneck))
        remaining -= bottleneck

    # first-fit allocation of path capacity to communications
    flows: List[List[RoutedFlow]] = []
    k = 0
    path, avail = pieces[0]
    for comm in problem.comms:
        need = comm.rate
        mine: List[RoutedFlow] = []
        while need > eps:
            take = min(need, avail)
            if take > eps:
                mine.append(RoutedFlow(path=path, rate=take))
                need -= take
                avail -= take
            if avail <= eps and k + 1 < len(pieces):
                k += 1
                path, avail = pieces[k]
            elif avail <= eps:
                break
        if need > eps:
            # rounding dust: pin the remainder on the last used path
            mine.append(RoutedFlow(path=path, rate=need))
        flows.append(mine)
    return Routing(problem, flows)


# ======================================================================
# 1-MP: exact band DP over (rate, position) multisets
# ======================================================================
@dataclass(frozen=True)
class SameEndpointDpResult:
    """Exact shared-endpoint 1-MP optimum."""

    routing: Routing
    power: float
    explored_states: int

    @property
    def feasible(self) -> bool:
        return np.isfinite(self.power)


#: a DP state: sorted tuple of ((rate, x), count) group entries
_State = Tuple[Tuple[Tuple[float, int], int], ...]


def _group_choices(
    count: int, can_v: bool, can_h: bool
) -> List[int]:
    """How many of ``count`` identical communications may move vertically."""
    if can_v and can_h:
        return list(range(count + 1))
    if can_v:
        return [count]
    if can_h:
        return [0]
    return []  # pragma: no cover - unreachable inside the rectangle


def optimal_same_endpoint_single_path(
    problem: RoutingProblem,
    *,
    max_states: int = 500_000,
) -> SameEndpointDpResult:
    """Exact optimal 1-MP routing when all communications share endpoints.

    Dynamic program over the diagonals of the routing DAG: after ``t``
    hops every communication sits on diagonal ``t``; the state is the
    multiset of ``(rate, position)`` pairs (communications of equal rate
    are interchangeable, which collapses the state space), and a
    transition chooses, per group, how many members advance vertically.
    Band powers are exact under the full model — leakage and discrete
    frequencies included — because distinct bands use distinct links.

    Parameters
    ----------
    max_states:
        Safety cap on the total number of expanded states; raises
        :class:`InvalidParameterError` beyond it (the instance is too
        large for the DP — fall back to heuristics).
    """
    src, snk = _require_shared_endpoints(problem)
    mesh = problem.mesh
    power = problem.power
    dag = CommDag(mesh, src, snk)
    du, dv = dag.du, dag.dv
    length = dag.length

    rates = sorted((c.rate for c in problem.comms), reverse=True)
    start: _State = tuple(
        ((rate, 0), sum(1 for r in rates if r == rate))
        for rate in sorted(set(rates), reverse=True)
    )

    # forward DP with parent pointers
    frontier: Dict[_State, float] = {start: 0.0}
    parents: List[Dict[_State, Tuple[_State, Dict[Tuple[float, int], int]]]] = []
    explored = 0
    for t in range(length):
        nxt: Dict[_State, float] = {}
        back: Dict[_State, Tuple[_State, Dict[Tuple[float, int], int]]] = {}
        for state, acc in frontier.items():
            explored += 1
            if explored > max_states:
                raise InvalidParameterError(
                    f"same-endpoint DP exceeded {max_states} states; "
                    "reduce the instance or raise max_states"
                )
            groups = list(state)
            per_group: List[List[int]] = []
            for (rate, x), count in groups:
                y = t - x
                per_group.append(
                    _group_choices(count, can_v=x < du, can_h=y < dv)
                )

            def expand(
                gi: int,
                decision: Dict[Tuple[float, int], int],
                loads: Dict[Tuple[int, str], float],
            ) -> None:
                if gi == len(groups):
                    band_loads = np.fromiter(
                        loads.values(), dtype=np.float64, count=len(loads)
                    )
                    band_power = float(np.sum(power.link_power(band_loads)))
                    new_groups: Dict[Tuple[float, int], int] = {}
                    for (rate, x), count in groups:
                        j = decision[(rate, x)]
                        if j:
                            key = (rate, x + 1)
                            new_groups[key] = new_groups.get(key, 0) + j
                        if count - j:
                            key = (rate, x)
                            new_groups[key] = new_groups.get(key, 0) + (count - j)
                    new_state: _State = tuple(
                        sorted(new_groups.items(), reverse=True)
                    )
                    total = acc + band_power
                    # keep inf-cost states too (infeasible instances still
                    # need a reconstructable witness routing)
                    if new_state not in nxt or total < nxt[new_state]:
                        nxt[new_state] = total
                        back[new_state] = (state, dict(decision))
                    return
                (rate, x), count = groups[gi]
                for j in per_group[gi]:
                    decision[(rate, x)] = j
                    added: List[Tuple[Tuple[int, str], float]] = []
                    if j:
                        key = (x, MOVE_V)
                        loads[key] = loads.get(key, 0.0) + j * rate
                        added.append((key, j * rate))
                    if count - j:
                        key = (x, MOVE_H)
                        loads[key] = loads.get(key, 0.0) + (count - j) * rate
                        added.append((key, (count - j) * rate))
                    expand(gi + 1, decision, loads)
                    for key, amount in added:
                        loads[key] -= amount
                        if loads[key] <= 0:
                            del loads[key]
                del decision[(rate, x)]

            expand(0, {}, {})
        parents.append(back)
        frontier = nxt

    final_state: _State = tuple(
        ((rate, du), sum(1 for r in rates if r == rate))
        for rate in sorted(set(rates), reverse=True)
    )
    if final_state not in frontier:  # pragma: no cover - conservation
        raise InvalidParameterError("DP lost the final state")
    best_power = frontier[final_state]

    # ------------------------------------------------------------------
    # reconstruct per-communication move strings
    # ------------------------------------------------------------------
    # comm slots sorted by decreasing rate (group members interchangeable)
    order = sorted(range(problem.num_comms), key=lambda i: -problem.comms[i].rate)
    moves: List[List[str]] = [[] for _ in range(problem.num_comms)]
    pos: List[int] = [0] * problem.num_comms  # x of each sorted slot

    state = final_state
    chain: List[Dict[Tuple[float, int], int]] = []
    for t in range(length - 1, -1, -1):
        prev, decision = parents[t][state]
        chain.append(decision)
        state = prev
    chain.reverse()

    for t, decision in enumerate(chain):
        # within each (rate, x) group, the first `j` sorted slots go V
        taken: Dict[Tuple[float, int], int] = {}
        for slot_rank, ci in enumerate(order):
            rate = problem.comms[ci].rate
            key = (rate, pos[slot_rank])
            j = decision.get(key, 0)
            used = taken.get(key, 0)
            if used < j:
                moves[ci].append(MOVE_V)
                taken[key] = used + 1
                pos[slot_rank] += 1
            else:
                moves[ci].append(MOVE_H)

    paths = [
        Path(mesh, src, snk, "".join(moves[i])) for i in range(problem.num_comms)
    ]
    routing = Routing.single_path(problem, paths)
    actual = routing.total_power()
    if np.isfinite(actual) and not np.isclose(
        actual, best_power, rtol=1e-9, atol=1e-6
    ):  # pragma: no cover - internal consistency
        raise InvalidParameterError(
            f"DP power {best_power} disagrees with routing power {actual}"
        )
    return SameEndpointDpResult(
        routing=routing, power=best_power, explored_states=explored
    )


# ======================================================================
# the open-problem record
# ======================================================================
@dataclass(frozen=True)
class SameEndpointGap:
    """XY vs optimal 1-MP vs max-MP sandwich on one shared-endpoint instance."""

    xy_power: float
    single_path_power: float  #: exact DP optimum (full model)
    single_path_dynamic: float  #: dynamic-only power of the DP optimum
    flow_upper: float  #: feasible max-MP dynamic power
    flow_lower: float  #: certified max-MP lower bound
    ideal_bound: float  #: per-band ideal-spread bound (may be unreachable)

    @property
    def single_vs_multi(self) -> float:
        """How much multi-path saves over the best single-path routing.

        The open question's quantity: ``>= 1``; 1 means single-path is as
        good as unbounded splitting (on the dynamic relaxation).
        """
        if self.flow_upper == 0:
            return 1.0
        return self.single_path_dynamic / self.flow_upper

    @property
    def xy_vs_single(self) -> float:
        """Gain of the optimal 1-MP over XY (dynamic + static model)."""
        if self.single_path_power == 0:
            return 1.0
        return self.xy_power / self.single_path_power


def same_endpoint_gap(
    problem: RoutingProblem, *, segments: int = 48
) -> SameEndpointGap:
    """Quantify the paper's open problem on one shared-endpoint instance."""
    src, snk = _require_shared_endpoints(problem)
    power = problem.power
    total = float(sum(c.rate for c in problem.comms))

    xy = Routing.xy(problem)
    dp = optimal_same_endpoint_single_path(problem)
    flow = same_endpoint_flow(
        problem.mesh, src, snk, total, power, segments=segments
    )
    dp_loads = dp.routing.link_loads()
    dyn = float(
        power.p0 * np.sum((dp_loads / power.freq_unit) ** power.alpha)
    )

    from repro.theory.bounds import diagonal_lower_bound

    return SameEndpointGap(
        xy_power=xy.total_power(),
        single_path_power=dp.power,
        single_path_dynamic=dyn,
        flow_upper=flow.upper_bound,
        flow_lower=flow.lower_bound,
        ideal_bound=diagonal_lower_bound(problem),
    )
