"""Frank–Wolfe on the continuous max-MP dynamic-power relaxation.

Relax the routing problem three ways: allow unbounded splitting (max-MP),
continuous link frequencies, and drop the static term.  What remains is a
convex multicommodity min-cost flow on the per-communication Manhattan
DAGs:

.. math:: \\min f(x) = \\sum_\\ell P_0 (x_\\ell / f_{unit})^\\alpha

over the polytope of flows.  Frank–Wolfe fits perfectly: the linearised
subproblem decomposes into one shortest-path computation per communication
on its DAG (topological DP, exact and fast), and the duality gap
``⟨∇f(x), x - y⟩`` certifies a **lower bound** ``f(x) - gap`` on the
relaxation's optimum — hence on the dynamic power of *every* routing of
the instance under continuous frequencies (discretisation and leakage only
add power).

The iterate is maintained as an explicit convex combination of single-path
assignments, so the result can be exported as a genuine s-MP
:class:`~repro.core.routing.Routing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from repro.core.problem import RoutingProblem
from repro.core.routing import RoutedFlow, Routing
from repro.mesh.moves import MOVE_H, MOVE_V
from repro.mesh.paths import CommDag, Path
from repro.utils.validation import InvalidParameterError, check_positive


@dataclass(frozen=True)
class FrankWolfeResult:
    """Converged relaxation state."""

    problem: RoutingProblem
    loads: np.ndarray
    objective: float  #: dynamic power of the final (fractional) flow
    lower_bound: float  #: certified bound: objective - final duality gap
    iterations: int
    path_weights: Tuple[Dict[str, float], ...]  #: per comm: moves -> share

    def as_routing(
        self, max_paths: Optional[int] = None, min_share: float = 1e-6
    ) -> Routing:
        """Export the fractional flow as an s-MP routing.

        Keeps each communication's ``max_paths`` largest shares (all of
        them by default), drops shares below ``min_share`` of the rate, and
        renormalises so rates sum exactly.
        """
        flows: List[List[RoutedFlow]] = []
        for i, weights in enumerate(self.path_weights):
            comm = self.problem.comms[i]
            items = sorted(weights.items(), key=lambda kv: -kv[1])
            if max_paths is not None:
                if max_paths < 1:
                    raise InvalidParameterError(
                        f"max_paths must be >= 1, got {max_paths}"
                    )
                items = items[:max_paths]
            items = [(m, w) for m, w in items if w >= min_share] or items[:1]
            total = sum(w for _, w in items)
            flows.append(
                [
                    RoutedFlow(
                        Path(self.problem.mesh, comm.src, comm.snk, m),
                        comm.rate * w / total,
                    )
                    for m, w in items
                ]
            )
        return Routing(self.problem, flows)


def _shortest_moves(dag: CommDag, costs: np.ndarray) -> Tuple[str, float]:
    """Min-cost move string through the DAG under per-link ``costs``."""
    du, dv = dag.du, dag.dv
    dist = np.full((du + 1, dv + 1), np.inf)
    dist[0, 0] = 0.0
    choice = np.empty((du + 1, dv + 1), dtype="U1")
    for t in range(dag.length):
        for x in range(max(0, t - dv), min(t, du) + 1):
            y = t - x
            d0 = dist[x, y]
            if not np.isfinite(d0):
                continue
            if x < du:
                c = d0 + costs[dag.edge(x, y, MOVE_V)]
                if c < dist[x + 1, y]:
                    dist[x + 1, y] = c
                    choice[x + 1, y] = MOVE_V
            if y < dv:
                c = d0 + costs[dag.edge(x, y, MOVE_H)]
                if c < dist[x, y + 1]:
                    dist[x, y + 1] = c
                    choice[x, y + 1] = MOVE_H
    if not np.isfinite(dist[du, dv]):
        raise InvalidParameterError(
            "no Manhattan path of finite cost exists (every path crosses an "
            "infinite-cost link)"
        )
    # backtrack
    moves: List[str] = []
    x, y = du, dv
    while (x, y) != (0, 0):
        m = choice[x, y]
        moves.append(m)
        if m == MOVE_V:
            x -= 1
        else:
            y -= 1
    return "".join(reversed(moves)), float(dist[du, dv])


def frank_wolfe_relaxation(
    problem: RoutingProblem,
    *,
    max_iter: int = 300,
    rel_tol: float = 1e-7,
) -> FrankWolfeResult:
    """Solve the continuous max-MP dynamic-power relaxation.

    Parameters
    ----------
    max_iter:
        Iteration cap (each iteration costs one shortest path per
        communication plus a 1-D line search).
    rel_tol:
        Stop when the duality gap falls below ``rel_tol * objective``.
    """
    check_positive("max_iter", max_iter)
    power = problem.power
    mesh = problem.mesh
    n = problem.num_comms
    if n == 0:
        raise InvalidParameterError("cannot relax an empty communication set")

    unit = power.freq_unit
    p0 = power.p0
    alpha = power.alpha

    def objective(x: np.ndarray) -> float:
        return float(p0 * np.sum((x / unit) ** alpha))

    def gradient(x: np.ndarray) -> np.ndarray:
        return p0 * alpha * (x / unit) ** (alpha - 1) / unit

    # start from the XY vertex of the flow polytope
    weights: List[Dict[str, float]] = []
    loads = np.zeros(mesh.num_links, dtype=np.float64)
    for i, comm in enumerate(problem.comms):
        p = Path.xy(mesh, comm.src, comm.snk)
        weights.append({p.moves: 1.0})
        loads[p.link_ids] += comm.rate

    best_lb = 0.0
    iterations = 0
    for it in range(max_iter):
        iterations = it + 1
        grad = gradient(loads)
        target = np.zeros_like(loads)
        chosen: List[str] = []
        for i, comm in enumerate(problem.comms):
            moves, _cost = _shortest_moves(problem.dag(i), grad)
            chosen.append(moves)
            lids = Path(mesh, comm.src, comm.snk, moves).link_ids
            target[lids] += comm.rate
        gap = float(grad @ (loads - target))
        obj = objective(loads)
        best_lb = max(best_lb, obj - gap)
        if gap <= rel_tol * max(obj, 1e-300):
            break
        direction = target - loads

        def phi(gamma: float) -> float:
            return objective(loads + gamma * direction)

        res = minimize_scalar(phi, bounds=(0.0, 1.0), method="bounded")
        gamma = float(np.clip(res.x, 0.0, 1.0))
        if gamma <= 0.0:
            break
        loads = loads + gamma * direction
        np.maximum(loads, 0.0, out=loads)
        for i in range(n):
            w = weights[i]
            for m in list(w):
                w[m] *= 1.0 - gamma
                if w[m] < 1e-15:
                    del w[m]
            w[chosen[i]] = w.get(chosen[i], 0.0) + gamma

    return FrankWolfeResult(
        problem=problem,
        loads=loads,
        objective=objective(loads),
        lower_bound=best_lb,
        iterations=iterations,
        path_weights=tuple(weights),
    )
