"""Exact and relaxation solvers — the paper's "future work" baselines.

The paper leaves open "a bound on the optimal solution for single-path
Manhattan routings (or even compute the optimal solution for small problem
instances)".  This package provides exactly that:

* :mod:`repro.optimal.exhaustive` — branch-and-bound over the full
  single-path search space (exact 1-MP optimum on small instances);
* :mod:`repro.optimal.milp` — mixed-integer formulation of 1-MP with
  discrete frequencies, solved by SciPy's HiGHS backend;
* :mod:`repro.optimal.frank_wolfe` — Frank–Wolfe on the continuous
  max-MP dynamic-power relaxation, with a certified duality-gap lower
  bound valid for *every* routing rule;
* :mod:`repro.optimal.same_endpoint` — exact solvers for the
  shared-source/destination case the conclusion singles out: a band DP
  for the true 1-MP optimum and an LP-sandwiched convex flow for the
  max-MP optimum.
"""

from repro.optimal.exhaustive import OptimalResult, optimal_single_path
from repro.optimal.frank_wolfe import FrankWolfeResult, frank_wolfe_relaxation
from repro.optimal.milp import milp_single_path
from repro.optimal.same_endpoint import (
    SameEndpointDpResult,
    SameEndpointFlowResult,
    SameEndpointGap,
    flow_to_routing,
    optimal_same_endpoint_single_path,
    same_endpoint_flow,
    same_endpoint_gap,
)

__all__ = [
    "OptimalResult",
    "optimal_single_path",
    "FrankWolfeResult",
    "frank_wolfe_relaxation",
    "milp_single_path",
    "SameEndpointDpResult",
    "SameEndpointFlowResult",
    "SameEndpointGap",
    "flow_to_routing",
    "optimal_same_endpoint_single_path",
    "same_endpoint_flow",
    "same_endpoint_gap",
]
