"""Exact 1-MP with discrete frequencies as a mixed-integer program.

With a discrete frequency set the per-link power is a step function of its
load, which linearises exactly: binary ``z[i,j]`` selects path ``j`` for
communication ``i``; binary ``y[ℓ,m]`` enables frequency level ``m`` on
link ``ℓ``; the load on ``ℓ`` must fit under the enabled level, and the
objective charges each enabled level its full (static + dynamic) power.

Solved with :func:`scipy.optimize.milp` (HiGHS).  Path sets are enumerated
explicitly, so the formulation is for small instances — the same regime as
the exhaustive solver, against which the tests cross-validate it.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.mesh.paths import Path
from repro.optimal.exhaustive import OptimalResult
from repro.utils.validation import InvalidParameterError

#: default cap on the number of path-selection variables
DEFAULT_MAX_PATH_VARS = 50_000


def milp_single_path(
    problem: RoutingProblem,
    *,
    max_path_vars: int = DEFAULT_MAX_PATH_VARS,
    time_limit: float | None = None,
) -> OptimalResult:
    """Exact minimum-power 1-MP routing via MILP (discrete frequencies only).

    Raises
    ------
    InvalidParameterError
        For continuous-frequency models (the step-function linearisation
        needs discrete levels) or when path enumeration would exceed
        ``max_path_vars``.
    """
    power = problem.power
    if not power.is_discrete:
        raise InvalidParameterError(
            "milp_single_path needs a discrete frequency set; use "
            "frank_wolfe_relaxation or optimal_single_path for continuous "
            "models"
        )
    n_path_vars = sum(c.path_count() for c in problem.comms)
    if n_path_vars > max_path_vars:
        raise InvalidParameterError(
            f"{n_path_vars} path variables exceed max_path_vars="
            f"{max_path_vars}; the MILP formulation targets small instances"
        )

    mesh = problem.mesh
    freqs = np.asarray(power.frequencies, dtype=np.float64)
    n_levels = freqs.size
    level_cost = power.p_leak + power.p0 * (freqs / power.freq_unit) ** power.alpha

    # enumerate paths; record which links occur at all
    paths: List[Tuple[int, Path]] = []  # (comm index, path)
    for i in range(problem.num_comms):
        for p in problem.dag(i).enumerate_paths():
            paths.append((i, p))
    used_links = sorted({int(l) for _, p in paths for l in p.link_ids})
    link_col = {lid: k for k, lid in enumerate(used_links)}
    n_links = len(used_links)

    n_z = len(paths)
    n_y = n_links * n_levels
    n_vars = n_z + n_y

    def yvar(link_k: int, m: int) -> int:
        return n_z + link_k * n_levels + m

    c = np.zeros(n_vars)
    for k in range(n_links):
        for m in range(n_levels):
            c[yvar(k, m)] = level_cost[m]

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lo: List[float] = []
    hi: List[float] = []
    row = 0

    # one path per communication
    for i in range(problem.num_comms):
        for j, (ci, _p) in enumerate(paths):
            if ci == i:
                rows.append(row)
                cols.append(j)
                vals.append(1.0)
        lo.append(1.0)
        hi.append(1.0)
        row += 1

    # link load fits under the enabled level
    for k, lid in enumerate(used_links):
        for j, (ci, p) in enumerate(paths):
            if lid in set(int(x) for x in p.link_ids):
                rows.append(row)
                cols.append(j)
                vals.append(problem.comms[ci].rate)
        for m in range(n_levels):
            rows.append(row)
            cols.append(yvar(k, m))
            vals.append(-float(freqs[m]))
        lo.append(-np.inf)
        hi.append(0.0)
        row += 1

    # at most one level per link
    for k in range(n_links):
        for m in range(n_levels):
            rows.append(row)
            cols.append(yvar(k, m))
            vals.append(1.0)
        lo.append(-np.inf)
        hi.append(1.0)
        row += 1

    A = sparse.csc_matrix((vals, (rows, cols)), shape=(row, n_vars))
    constraints = LinearConstraint(A, np.asarray(lo), np.asarray(hi))
    bounds = Bounds(np.zeros(n_vars), np.ones(n_vars))
    integrality = np.ones(n_vars)

    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    res = milp(
        c,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
        options=options,
    )

    if res.status != 0 or res.x is None:
        # HiGHS status 2 = infeasible; anything else without a solution is
        # reported as infeasible-for-this-search as well
        return OptimalResult(
            routing=None,
            power=float("inf"),
            nodes_explored=0,
            proven_infeasible=(res.status == 2),
        )

    z = res.x[:n_z]
    chosen: List[Path | None] = [None] * problem.num_comms
    for j, (ci, p) in enumerate(paths):
        if z[j] > 0.5:
            chosen[ci] = p
    if any(p is None for p in chosen):
        raise AssertionError("MILP returned without selecting a path per comm")
    routing = Routing.single_path(problem, chosen)  # type: ignore[arg-type]
    return OptimalResult(
        routing=routing,
        power=routing.total_power(),
        nodes_explored=0,
        proven_infeasible=False,
    )
