"""Exact 1-MP optimum by branch-and-bound over path choices.

The search assigns one Manhattan path per communication (largest rate
first), maintaining the link-load vector and the exact partial power
incrementally.  Two prunings keep it tractable on small instances:

* *feasibility*: a branch whose partial loads already exceed ``BW``
  cannot recover (loads only grow);
* *monotonicity*: link power is non-decreasing in load and in the set of
  active links, so the partial power lower-bounds every completion — a
  branch at or above the incumbent is cut.

The search space is ``Π C(Δuᵢ+Δvᵢ, Δuᵢ)``; the solver refuses instances
whose space exceeds ``max_nodes`` up front rather than running forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.core.routing import Routing
from repro.mesh.paths import Path
from repro.utils.validation import InvalidParameterError

#: default cap on the size of the explored path-assignment space
DEFAULT_MAX_NODES = 5_000_000


@dataclass(frozen=True)
class OptimalResult:
    """Outcome of an exact search.

    ``routing`` is ``None`` when the instance is proven infeasible for the
    searched rule (no assignment keeps every link within ``BW``).
    """

    routing: Optional[Routing]
    power: float
    nodes_explored: int
    proven_infeasible: bool

    @property
    def feasible(self) -> bool:
        return self.routing is not None


def optimal_single_path(
    problem: RoutingProblem,
    *,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> OptimalResult:
    """Exact minimum-power 1-MP routing of ``problem``.

    Raises
    ------
    InvalidParameterError
        If the path-assignment space exceeds ``max_nodes`` (use the
        heuristics or :func:`repro.optimal.milp.milp_single_path` instead).
    """
    space = 1
    for c in problem.comms:
        space *= c.path_count()
        if space > max_nodes:
            raise InvalidParameterError(
                f"1-MP search space exceeds max_nodes={max_nodes}; "
                "the exhaustive solver is meant for small instances"
            )

    power = problem.power
    order = problem.order_by("weight")
    per_comm: List[List[Tuple[str, np.ndarray]]] = []
    for i in order:
        dag = problem.dag(i)
        cand = [
            (p.moves, p.link_ids) for p in dag.enumerate_paths()
        ]
        per_comm.append(cand)
    rates = [problem.comms[i].rate for i in order]

    loads = np.zeros(problem.mesh.num_links, dtype=np.float64)
    best_power = np.inf
    best_assign: Optional[List[str]] = None
    assign: List[Optional[str]] = [None] * len(order)
    nodes = 0
    bw = power.bandwidth

    def link_power_sum(vals: np.ndarray) -> float:
        return float(np.sum(power.link_power(vals)))

    def dfs(depth: int, partial_power: float) -> None:
        nonlocal best_power, best_assign, nodes
        if partial_power >= best_power:
            return
        if depth == len(order):
            best_power = partial_power
            best_assign = [m for m in assign]  # type: ignore[misc]
            return
        rate = rates[depth]
        for moves, lids in per_comm[depth]:
            nodes += 1
            before = loads[lids]
            after = before + rate
            if np.any(after > bw * (1 + 1e-12)):
                continue
            delta = link_power_sum(after) - link_power_sum(before)
            if partial_power + delta >= best_power:
                continue
            loads[lids] = after
            assign[depth] = moves
            dfs(depth + 1, partial_power + delta)
            loads[lids] = before
        assign[depth] = None

    dfs(0, 0.0)

    if best_assign is None:
        return OptimalResult(
            routing=None,
            power=float("inf"),
            nodes_explored=nodes,
            proven_infeasible=True,
        )
    # map the assignment (in processing order) back to problem order
    moves_by_comm: List[Optional[str]] = [None] * problem.num_comms
    for pos, i in enumerate(order):
        moves_by_comm[i] = best_assign[pos]
    paths = [
        Path(problem.mesh, c.src, c.snk, m)  # type: ignore[arg-type]
        for c, m in zip(problem.comms, moves_by_comm)
    ]
    routing = Routing.single_path(problem, paths)
    return OptimalResult(
        routing=routing,
        power=routing.total_power(),
        nodes_explored=nodes,
        proven_infeasible=False,
    )
