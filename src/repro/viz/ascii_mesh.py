"""ASCII renderings of the mesh: link-load heat maps and path overlays.

Cores draw as ``o``; each adjacent pair shows its two unidirectional links
as a single glyph per direction pair — horizontal neighbours render the
east/west loads as two characters ``>`` ``<`` (shaded by load), vertical
neighbours the south/north loads stacked.  Loads map onto a five-level
shade ramp relative to the bandwidth:

====== =================
glyph  utilisation
====== =================
``.``  0 (inactive)
``1``  (0, 25%]
``2``  (25%, 50%]
``3``  (50%, 75%]
``4``  (75%, 100%]
``!``  above bandwidth
====== =================
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.power import PowerModel
from repro.mesh.paths import Path
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

_RAMP = ".1234"


def _glyph(load: float, bandwidth: float) -> str:
    if load <= 0:
        return _RAMP[0]
    if load > bandwidth * (1 + 1e-12):
        return "!"
    frac = load / bandwidth
    level = min(4, int(np.ceil(frac * 4)))
    return _RAMP[level]


def load_legend() -> str:
    """One-line legend for the load glyphs."""
    return ". idle | 1 <=25% | 2 <=50% | 3 <=75% | 4 <=100% | ! overloaded"


def render_loads(
    mesh: Mesh,
    loads: np.ndarray,
    *,
    bandwidth: Optional[float] = None,
    power: Optional[PowerModel] = None,
) -> str:
    """Render per-link loads as a text heat map.

    Provide either ``bandwidth`` or a ``power`` model (whose bandwidth is
    used).  Horizontal cells show ``E`` then ``W`` loads; vertical cells
    show ``S`` then ``N`` loads side by side.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (mesh.num_links,):
        raise InvalidParameterError(
            f"loads must have shape ({mesh.num_links},), got {loads.shape}"
        )
    if bandwidth is None:
        if power is None:
            raise InvalidParameterError("provide bandwidth or a power model")
        bandwidth = power.bandwidth
    if bandwidth <= 0:
        raise InvalidParameterError(f"bandwidth must be > 0, got {bandwidth}")

    lines = []
    for u in range(mesh.p):
        row = []
        for v in range(mesh.q):
            row.append("o")
            if v + 1 < mesh.q:
                e = _glyph(loads[mesh.link_east(u, v)], bandwidth)
                w = _glyph(loads[mesh.link_west(u, v + 1)], bandwidth)
                row.append(f"{e}{w}")
        lines.append(" ".join(row))
        if u + 1 < mesh.p:
            vrow = []
            for v in range(mesh.q):
                s = _glyph(loads[mesh.link_south(u, v)], bandwidth)
                n = _glyph(loads[mesh.link_north(u + 1, v)], bandwidth)
                vrow.append(f"{s}{n}")
                if v + 1 < mesh.q:
                    vrow.append("  ")
            lines.append(" ".join(vrow).rstrip())
    return "\n".join(lines)


def render_path(path: Path) -> str:
    """Render a single path on its mesh: visited cores as ``#``."""
    mesh = path.mesh
    on_path = set(path.cores())
    lines = []
    for u in range(mesh.p):
        cells = []
        for v in range(mesh.q):
            if (u, v) == path.src:
                cells.append("S")
            elif (u, v) == path.snk:
                cells.append("D")
            elif (u, v) in on_path:
                cells.append("#")
            else:
                cells.append(".")
        lines.append(" ".join(cells))
    return "\n".join(lines)
