"""Dependency-free SVG rendering: link-load heat maps and figure charts.

No plotting library ships in the evaluation environment, so this module
emits SVG directly (SVG is plain XML).  Two renderers:

* :func:`mesh_heatmap_svg` — the chip as a grid of cores with every
  directed link drawn as an arrowed segment coloured by utilisation
  (green → red ramp; overloaded links magenta and thick), optionally
  overlaying one or more routing paths;
* :func:`line_chart_svg` — multi-series line chart with axes, ticks and a
  legend, used by :func:`sweep_to_svg` to render the Figure 7/8/9 sweeps
  (normalised power inverse and failure ratio) into viewable artefacts.

All functions return the SVG document as a string;
:func:`save_svg` writes it with the correct header.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

import numpy as np

from repro.core.power import PowerModel
from repro.mesh.paths import Path
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError

#: distinguishable series colours (Okabe–Ito palette)
PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)


class _Canvas:
    """Minimal SVG element accumulator."""

    def __init__(self, width: float, height: float):
        self.width = width
        self.height = height
        self.parts: List[str] = []

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str,
        width: float = 1.5,
        opacity: float = 1.0,
        marker: Optional[str] = None,
        dash: Optional[str] = None,
    ) -> None:
        attrs = (
            f'x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width:.2f}" '
            f'stroke-opacity="{opacity:.2f}"'
        )
        if marker:
            attrs += f' marker-end="url(#{marker})"'
        if dash:
            attrs += f' stroke-dasharray="{dash}"'
        self.parts.append(f"<line {attrs}/>")

    def circle(
        self, cx: float, cy: float, r: float, *, fill: str, stroke: str = "none"
    ) -> None:
        self.parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r:.1f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        *,
        fill: str,
        stroke: str = "none",
    ) -> None:
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: float = 11,
        anchor: str = "start",
        fill: str = "#222222",
    ) -> None:
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size:.0f}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}">{escape(content)}</text>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        *,
        stroke: str,
        width: float = 2.0,
    ) -> None:
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:.2f}"/>'
        )

    def render(self, defs: str = "") -> str:
        body = "\n".join(self.parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n'
            f"{defs}\n{body}\n</svg>\n"
        )


def utilization_color(frac: float) -> str:
    """Green→yellow→red ramp for a load fraction; magenta when above 1."""
    if frac < 0:
        raise InvalidParameterError(f"load fraction must be >= 0, got {frac}")
    if frac > 1.0 + 1e-12:
        return "#d014d0"  # overload: magenta
    if frac <= 0:
        return "#d9d9d9"
    # interpolate green (120deg) to red (0deg) in HSV-ish space
    hue = 120.0 * (1.0 - frac)
    c = 1.0
    x = c * (1 - abs((hue / 60.0) % 2 - 1))
    r, g = (c, x) if hue < 60 else (x, c)
    return f"#{int(220 * r):02x}{int(200 * g):02x}30"


def mesh_heatmap_svg(
    mesh: Mesh,
    loads: np.ndarray,
    power: PowerModel,
    *,
    paths: Sequence[Path] = (),
    cell: float = 56.0,
    title: str = "",
) -> str:
    """Render per-link loads on the chip as a coloured SVG heat map.

    Cores are circles at grid positions (row u grows downward, column v
    rightward, matching the paper's C_{u,v} layout); the two unidirectional
    links of each neighbour pair draw as two offset arrows.  ``paths``
    overlay as dashed blue lines.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (mesh.num_links,):
        raise InvalidParameterError(
            f"loads must have shape ({mesh.num_links},), got {loads.shape}"
        )
    margin = 48.0
    width = margin * 2 + (mesh.q - 1) * cell
    height = margin * 2 + (mesh.p - 1) * cell + (28 if title else 0)
    top = margin + (28 if title else 0)
    cv = _Canvas(width, height)
    if title:
        cv.text(width / 2, 22, title, size=14, anchor="middle")

    def xy(u: int, v: int) -> Tuple[float, float]:
        return (margin + v * cell, top + u * cell)

    # links (offset each direction sideways so both stay visible)
    off = cell * 0.08
    for lid in range(mesh.num_links):
        (u1, v1), (u2, v2) = mesh.link_endpoints(lid)
        x1, y1 = xy(u1, v1)
        x2, y2 = xy(u2, v2)
        dx, dy = x2 - x1, y2 - y1
        norm = math.hypot(dx, dy)
        ox, oy = -dy / norm * off, dx / norm * off
        # trim the ends so arrows do not overlap the core circles
        trim = cell * 0.16
        tx, ty = dx / norm * trim, dy / norm * trim
        frac = float(loads[lid]) / power.bandwidth
        overloaded = frac > 1.0 + 1e-12
        cv.line(
            x1 + ox + tx,
            y1 + oy + ty,
            x2 + ox - tx,
            y2 + oy - ty,
            stroke=utilization_color(frac),
            width=4.0 if overloaded else 1.0 + 2.5 * min(frac, 1.0),
            marker="arr",
        )
    # path overlays
    for k, path in enumerate(paths):
        pts = [xy(u, v) for (u, v) in path.cores()]
        cv.polyline(pts, stroke=PALETTE[k % len(PALETTE)], width=2.2)
    # cores
    for u in range(mesh.p):
        for v in range(mesh.q):
            x, y = xy(u, v)
            cv.circle(x, y, cell * 0.12, fill="#ffffff", stroke="#555555")
            cv.text(x, y + cell * 0.3 + 8, f"{u},{v}", size=8, anchor="middle")
    defs = (
        '<defs><marker id="arr" viewBox="0 0 6 6" refX="5" refY="3" '
        'markerWidth="5" markerHeight="5" orient="auto-start-reverse">'
        '<path d="M 0 0 L 6 3 L 0 6 z" fill="#777777"/></marker></defs>'
    )
    return cv.render(defs)


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(1, n - 1)
    mag = 10 ** math.floor(math.log10(raw))
    step = min(
        (s for s in (mag, 2 * mag, 2.5 * mag, 5 * mag, 10 * mag) if s >= raw),
        default=raw,
    )
    start = math.floor(lo / step) * step
    out = []
    t = start
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            out.append(round(t, 10))
        t += step
    return out or [lo, hi]


def line_chart_svg(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: float = 560.0,
    height: float = 360.0,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Multi-series line chart (axes, ticks, legend); returns SVG text."""
    if not series:
        raise InvalidParameterError("series must be non-empty")
    pts_all = [p for pts in series.values() for p in pts]
    if not pts_all:
        raise InvalidParameterError("series contain no points")
    xs = [p[0] for p in pts_all]
    ys = [p[1] for p in pts_all if np.isfinite(p[1])]
    if not ys:
        ys = [0.0, 1.0]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = y_min if y_min is not None else min(min(ys), 0.0)
    y_hi = y_max if y_max is not None else max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    ml, mr, mt, mb = 64.0, 130.0, 40.0, 48.0
    pw, ph = width - ml - mr, height - mt - mb
    cv = _Canvas(width, height)

    def px(x: float) -> float:
        return ml + (x - x_lo) / (x_hi - x_lo) * pw

    def py(y: float) -> float:
        return mt + ph - (y - y_lo) / (y_hi - y_lo) * ph

    cv.rect(ml, mt, pw, ph, fill="#fbfbfb", stroke="#888888")
    for t in _ticks(x_lo, x_hi):
        cv.line(px(t), mt + ph, px(t), mt + ph + 4, stroke="#555555", width=1)
        cv.line(px(t), mt, px(t), mt + ph, stroke="#eeeeee", width=1)
        cv.text(px(t), mt + ph + 16, f"{t:g}", size=10, anchor="middle")
    for t in _ticks(y_lo, y_hi):
        cv.line(ml - 4, py(t), ml, py(t), stroke="#555555", width=1)
        cv.line(ml, py(t), ml + pw, py(t), stroke="#eeeeee", width=1)
        cv.text(ml - 7, py(t) + 3.5, f"{t:g}", size=10, anchor="end")
    if title:
        cv.text(ml + pw / 2, 22, title, size=14, anchor="middle")
    if xlabel:
        cv.text(ml + pw / 2, height - 12, xlabel, size=11, anchor="middle")
    if ylabel:
        cv.parts.append(
            f'<text x="16" y="{mt + ph / 2:.1f}" font-size="11" '
            f'font-family="sans-serif" text-anchor="middle" fill="#222222" '
            f'transform="rotate(-90 16 {mt + ph / 2:.1f})">'
            f"{escape(ylabel)}</text>"
        )
    for k, (name, pts) in enumerate(series.items()):
        color = PALETTE[k % len(PALETTE)]
        finite = [
            (px(x), py(y)) for x, y in pts if np.isfinite(x) and np.isfinite(y)
        ]
        if len(finite) >= 2:
            cv.polyline(finite, stroke=color, width=2.0)
        for x, y in finite:
            cv.circle(x, y, 2.4, fill=color)
        ly = mt + 14 + 16 * k
        cv.line(ml + pw + 10, ly - 4, ml + pw + 34, ly - 4, stroke=color, width=2.5)
        cv.text(ml + pw + 40, ly, name, size=11)
    return cv.render()


def sweep_to_svg(sweep, metric: str = "norm_power_inverse", **chart_kw) -> str:
    """Chart one metric of a Figure 7/8/9 sweep.

    ``sweep`` is a :class:`repro.experiments.runner.SweepResult`;
    ``metric`` is any name its ``series`` accessor accepts
    ("norm_power_inverse", "failure_ratio", ...).
    """
    xs = sweep.x_values
    series = {
        name: list(zip(xs, ys)) for name, ys in sweep.series(metric).items()
    }
    chart_kw.setdefault("title", f"{sweep.name}: {metric}")
    chart_kw.setdefault("xlabel", sweep.x_label)
    chart_kw.setdefault("ylabel", metric)
    if metric in ("norm_power_inverse", "failure_ratio"):
        chart_kw.setdefault("y_min", 0.0)
        chart_kw.setdefault("y_max", 1.0)
    return line_chart_svg(series, **chart_kw)


def save_svg(path, svg: str) -> None:
    """Write an SVG document (string) to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
