"""Visualisation of meshes, loads, paths and experiment sweeps.

Terminal-friendly ASCII renderings (:func:`render_loads`,
:func:`render_path`) plus dependency-free SVG output: link-load heat
maps of the chip (:func:`mesh_heatmap_svg`) and multi-series line charts
of the Figure 7/8/9 sweeps (:func:`line_chart_svg`, :func:`sweep_to_svg`).
"""

from repro.viz.ascii_mesh import render_loads, render_path, load_legend
from repro.viz.svg import (
    line_chart_svg,
    mesh_heatmap_svg,
    save_svg,
    sweep_to_svg,
    utilization_color,
)

__all__ = [
    "render_loads",
    "render_path",
    "load_legend",
    "line_chart_svg",
    "mesh_heatmap_svg",
    "save_svg",
    "sweep_to_svg",
    "utilization_color",
]
