"""Monte-Carlo convergence diagnostics.

The paper averages 50 000 instance draws per plotted point; this harness
uses far fewer.  These diagnostics justify the substitution: running means
with normal-approximation confidence intervals for the two aggregated
quantities (failure ratio, normalised power inverse), so EXPERIMENTS.md
can state at what trial count each reported number stabilises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.power import PowerModel
from repro.core.problem import RoutingProblem
from repro.experiments.config import WorkloadFactory
from repro.heuristics.base import get_heuristic
from repro.heuristics.best import best_of_results
from repro.mesh.topology import Mesh
from repro.utils.rng import spawn_rngs
from repro.utils.validation import InvalidParameterError

#: z for a ~95% two-sided normal interval
_Z95 = 1.96


@dataclass(frozen=True)
class ConvergenceTrace:
    """Running estimate of one scalar statistic over trials."""

    name: str
    checkpoints: Tuple[int, ...]
    means: Tuple[float, ...]
    half_widths: Tuple[float, ...]  #: 95% CI half-widths at checkpoints

    def stable_from(self, tolerance: float) -> int | None:
        """First checkpoint whose CI half-width is below ``tolerance``.

        Returns the trial count, or None if never reached.
        """
        for n, hw in zip(self.checkpoints, self.half_widths):
            if hw <= tolerance:
                return n
        return None


def _trace(name: str, samples: np.ndarray, checkpoints: Sequence[int]) -> ConvergenceTrace:
    means, hws = [], []
    for n in checkpoints:
        xs = samples[:n]
        mean = float(xs.mean())
        sem = float(xs.std(ddof=1) / np.sqrt(n)) if n > 1 else float("inf")
        means.append(mean)
        hws.append(_Z95 * sem)
    return ConvergenceTrace(
        name=name,
        checkpoints=tuple(int(n) for n in checkpoints),
        means=tuple(means),
        half_widths=tuple(hws),
    )


def convergence_study(
    workload: WorkloadFactory,
    heuristic: str,
    *,
    trials: int = 400,
    seed: int = 99,
    mesh: Mesh | None = None,
    power: PowerModel | None = None,
    n_checkpoints: int = 8,
) -> List[ConvergenceTrace]:
    """Sample one sweep point and trace how its aggregates converge.

    Returns traces for the heuristic's failure ratio and its normalised
    power inverse (relative to the six-heuristic BEST, skipping instances
    where BEST fails — the harness convention).
    """
    if trials < 4:
        raise InvalidParameterError(f"trials must be >= 4, got {trials}")
    mesh = mesh or Mesh(8, 8)
    power = power or PowerModel.kim_horowitz()
    from repro.heuristics.best import PAPER_HEURISTICS

    members = {n: get_heuristic(n) for n in PAPER_HEURISTICS}
    if heuristic not in members:
        members[heuristic] = get_heuristic(heuristic)

    failures = np.zeros(trials)
    norm_inv = np.full(trials, np.nan)  # NaN where BEST failed
    for k, rng in enumerate(spawn_rngs(seed, trials)):
        problem = RoutingProblem(mesh, power, workload(mesh, rng))
        results = {n: h.solve(problem) for n, h in members.items()}
        res = results[heuristic]
        failures[k] = 0.0 if res.valid else 1.0
        best = best_of_results(list(results.values()))
        if best.valid:
            norm_inv[k] = res.power_inverse / best.power_inverse

    checkpoints = np.unique(
        np.linspace(max(4, trials // n_checkpoints), trials, n_checkpoints)
        .round()
        .astype(int)
    )
    traces = [_trace("failure_ratio", failures, checkpoints)]
    valid_norm = norm_inv[~np.isnan(norm_inv)]
    if valid_norm.size >= 4:
        ck = [min(int(c), valid_norm.size) for c in checkpoints]
        ck = sorted(set(c for c in ck if c >= 2))
        traces.append(_trace("norm_power_inverse", valid_norm, ck))
    return traces
