"""Monte-Carlo sweep runner and the paper's aggregation conventions.

For every trial, all competing heuristics are run on the same instance and
the virtual BEST result is formed.  Aggregates per sweep point follow
Section 6:

* **failure ratio** — fraction of instances where the heuristic found no
  valid routing (BEST fails iff all fail);
* **normalised power inverse** — per instance, ``(1/P_h) / (1/P_BEST)``
  with the 0-on-failure convention, averaged over the instances where BEST
  succeeded (when BEST itself fails the normalisation is undefined and the
  instance contributes to failure ratios only);
* **mean power inverse** — the raw ``1/P`` average (0 on failure) behind
  the Section 6.4 "times higher than XY" ratios;
* **mean runtime** and **mean static fraction** for the summary claims.

Execution engines
-----------------

The **serial** path (``jobs=1``, the default and the reference) runs the
trials in-process.  The **parallel** path
(:class:`ParallelSweepRunner`, or ``jobs > 1`` on :func:`run_point` /
:func:`run_sweep`) fans contiguous trial chunks out to a
``ProcessPoolExecutor``.  Both paths produce one
:class:`TrialRecord` per trial — the i-th trial's RNG is a pure function
of ``(seed, i)`` through :func:`repro.utils.rng.spawn_rngs`, regardless of
which worker runs it — and feed the records *in trial order* through the
same :func:`aggregate_records` fold, so serial and parallel sweeps are
bit-identical on every statistic except the (inherently wall-clock)
``mean_runtime_s``.

Parallel execution requires the workload factory (and the mesh/power
objects) to be picklable; the factories in
:mod:`repro.experiments.config` are plain dataclasses for exactly this
reason.  Lambdas/closures still work on the serial path.

Within either engine, a batch of trials runs **stacked** by default
(``REPRO_STACKED``, see :mod:`repro.mesh.kernel`): deterministic
``batch_eval`` heuristics route first and their final evaluations are
graded together through one :class:`~repro.mesh.kernel.
MultiProblemKernel` pass per chunk, bit-identical to the looped
trial-at-a-time reference (``REPRO_STACKED=0``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.experiments.config import SweepConfig, WorkloadFactory
from repro.heuristics.base import HeuristicResult, get_heuristic
from repro.heuristics.batch_eval import DeferredEval, evaluate_deferred
from repro.heuristics.best import best_of_results
from repro.mesh.kernel import stacked_enabled
from repro.mesh.topology import Mesh
from repro.core.power import PowerModel
from repro.utils.rng import spawn_rngs, spawn_rngs_range
from repro.utils.validation import InvalidParameterError

#: series key used for the virtual best heuristic
BEST_KEY = "BEST"


@dataclass(frozen=True)
class HeuristicPointStats:
    """Aggregates of one heuristic at one sweep point."""

    name: str
    trials: int
    successes: int
    norm_power_inverse: float
    mean_power_inverse: float
    mean_runtime_s: float
    mean_static_fraction: float

    @property
    def failure_ratio(self) -> float:
        return 1.0 - self.successes / self.trials

    @property
    def success_ratio(self) -> float:
        return self.successes / self.trials


@dataclass(frozen=True)
class PointResult:
    """All heuristics' aggregates at one sweep point."""

    x: float
    stats: Dict[str, HeuristicPointStats]


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: config echo plus one PointResult per x value."""

    name: str
    x_label: str
    heuristics: Tuple[str, ...]
    points: Tuple[PointResult, ...]

    @property
    def x_values(self) -> List[float]:
        return [p.x for p in self.points]

    def series(self, metric: str) -> Dict[str, List[float]]:
        """Extract ``{heuristic: [value per x]}`` for a metric attribute."""
        out: Dict[str, List[float]] = {}
        for name in list(self.heuristics) + [BEST_KEY]:
            out[name] = [
                getattr(p.stats[name], metric) for p in self.points
            ]
        return out


@dataclass(frozen=True)
class TrialOutcome:
    """One heuristic's result on one instance, reduced to its aggregates."""

    valid: bool
    power_inverse: float
    runtime_s: float
    static_fraction: float


@dataclass(frozen=True)
class TrialRecord:
    """Everything one trial contributes to the sweep-point aggregates."""

    outcomes: Dict[str, TrialOutcome]  # heuristic name (and BEST) -> outcome
    best_valid: bool
    best_power_inverse: float


#: module-level warm-cache memo, keyed by platform object *identity*.  The
#: values keep strong references so a remembered id() can never be recycled
#: by a new object; the identity re-check makes a stale hit impossible even
#: so.  Bounded FIFO — a long-lived process cycling through many platforms
#: (the service, multi-config campaigns) cannot grow it without bound.
_WARM_MEMO: Dict[Tuple[int, int], Tuple[Mesh, PowerModel]] = {}
_WARM_MEMO_CAP = 64


def warm_platform_caches(mesh: Mesh, power: PowerModel) -> None:
    """Force the lazily built per-``(mesh, power)`` tables into existence.

    ``PowerModel._graded_tables`` (a ``cached_property``, lost on pickling)
    and the mesh's link-profile vectors are rebuilt on first use — which,
    without this hook, lands inside the first heuristic's *timed* solve of
    a worker's first trial.  Both engines call this once per (chunk,
    platform) so every trial's ``runtime_s`` measures routing, not cache
    (re)construction.  Trial results are unaffected: the caches are pure
    functions of the platform.

    Memoised at module level per ``(mesh, power)`` identity: the serial
    engine calls this once per sweep *point* and a worker once per chunk,
    but the platform objects are shared across a whole sweep, so repeat
    warms (pure attribute touches) skip even the attribute traffic.
    """
    key = (id(mesh), id(power))
    hit = _WARM_MEMO.get(key)
    if hit is not None and hit[0] is mesh and hit[1] is power:
        return
    power._graded_tables  # noqa: B018  - cached_property build
    mesh.link_scale
    mesh.dead_mask
    if len(_WARM_MEMO) >= _WARM_MEMO_CAP:
        _WARM_MEMO.pop(next(iter(_WARM_MEMO)))
    _WARM_MEMO[key] = (mesh, power)


def run_trial(
    mesh: Mesh,
    power: PowerModel,
    workload: WorkloadFactory,
    rng: np.random.Generator,
    heuristic_names: Sequence[str],
) -> TrialRecord:
    """Run every heuristic on one drawn instance and record the outcomes.

    Fresh heuristic instances are built per trial (so trials are
    self-contained and chunkable across processes) and stochastic ones are
    reseeded from the trial's own generator — each trial gets independent
    randomness, deterministic in ``(seed, trial index)``, instead of every
    trial replaying a stochastic heuristic's default seed.

    Per-instance state that several heuristics need — the flat routing
    kernel, an init heuristic's routing (SA and TABU both start from SG by
    default) — is memoised on the :class:`RoutingProblem`
    (:meth:`~repro.core.problem.RoutingProblem.kernel`,
    :meth:`~repro.core.problem.RoutingProblem.initial_moves`), so the
    trial pays for each once instead of once per consumer.
    """
    heuristics = [get_heuristic(n) for n in heuristic_names]
    problem = _draw_trial_problem(mesh, power, workload, rng, heuristics)
    results: List[HeuristicResult] = [h.solve(problem) for h in heuristics]
    return _trial_record(results)


def _draw_trial_problem(
    mesh: Mesh,
    power: PowerModel,
    workload: WorkloadFactory,
    rng: np.random.Generator,
    heuristics: Sequence,
) -> RoutingProblem:
    """Draw one instance and reseed the roster — ``run_trial``'s prefix.

    The RNG consumption order (workload draw, then reseeds in roster
    order) is the trial's reproducibility contract; both the looped and
    the stacked engines share it through this helper.
    """
    comms = workload(mesh, rng)
    problem = RoutingProblem(mesh, power, comms)
    # build the problem-level kernel outside the timed solves — otherwise
    # the roster's first kernel consumer pays it inside its runtime_s
    # while later heuristics reuse it for free.  (The initial_moves memo
    # keeps a milder version of this asymmetry: an init heuristic's solve
    # is timed against its first consumer only.)
    problem.kernel()
    for h in heuristics:
        h.reseed(rng)
    return problem


def _trial_record(results: Sequence[HeuristicResult]) -> TrialRecord:
    """Fold one trial's evaluated results into its record — the tail of
    ``run_trial``, shared verbatim by the stacked engine."""
    best = best_of_results(results)
    everything = list(results) + [
        HeuristicResult(BEST_KEY, best.routing, best.report, best.runtime_s)
    ]
    outcomes = {
        res.name: TrialOutcome(
            valid=res.valid,
            power_inverse=res.power_inverse,
            runtime_s=res.runtime_s,
            static_fraction=(
                res.report.static_fraction if res.valid else 0.0
            ),
        )
        for res in everything
    }
    return TrialRecord(
        outcomes=outcomes,
        best_valid=best.valid,
        best_power_inverse=best.power_inverse,
    )


#: one trial's per-heuristic entries, in roster order: a fully evaluated
#: HeuristicResult (heuristics that must solve inline) or a DeferredEval
#: awaiting the stacked grading pass
TrialEntries = List


def _route_trial(
    mesh: Mesh,
    power: PowerModel,
    workload: WorkloadFactory,
    rng: np.random.Generator,
    heuristic_names: Sequence[str],
) -> TrialEntries:
    """The routing phase of :func:`run_trial`, final evaluation deferred.

    Identical RNG consumption and timed regions as ``run_trial``:
    ``batch_eval`` heuristics (deterministic constructions) route through
    :meth:`~repro.heuristics.base.Heuristic.route_timed` and park a
    :class:`~repro.heuristics.batch_eval.DeferredEval`; everything else
    (GA/SA/TABU and any unmarked heuristic) solves inline, in the same
    roster position it always held.
    """
    heuristics = [get_heuristic(n) for n in heuristic_names]
    problem = _draw_trial_problem(mesh, power, workload, rng, heuristics)
    entries: TrialEntries = []
    for h in heuristics:
        if h.batch_eval:
            routing, elapsed = h.route_timed(problem)
            entries.append(DeferredEval(h.name, routing, elapsed))
        else:
            entries.append(h.solve(problem))
    return entries


def _finalize_trials(trial_entries: Sequence[TrialEntries]) -> List[TrialRecord]:
    """Grade every deferred evaluation of a trial batch in one stacked pass.

    All trials' :class:`DeferredEval` entries — across instances and
    heuristics — feed a single
    :func:`~repro.heuristics.batch_eval.evaluate_deferred` call (one
    :class:`~repro.mesh.kernel.MultiProblemKernel` pass), then each
    trial's results are reassembled in roster order and folded through the
    same :func:`_trial_record` tail as the looped engine.  Records are
    bit-identical to ``run_trial``'s on every field.
    """
    deferred = [
        e
        for entries in trial_entries
        for e in entries
        if isinstance(e, DeferredEval)
    ]
    evaluated = iter(evaluate_deferred(deferred))
    records: List[TrialRecord] = []
    for entries in trial_entries:
        results = [
            next(evaluated) if isinstance(e, DeferredEval) else e
            for e in entries
        ]
        records.append(_trial_record(results))
    return records


def _run_trials(
    mesh: Mesh,
    power: PowerModel,
    workload: WorkloadFactory,
    rngs: Sequence[np.random.Generator],
    heuristic_names: Sequence[str],
) -> List[TrialRecord]:
    """Run a batch of trials: stacked when enabled, looped reference otherwise.

    The ``REPRO_STACKED=0`` escape hatch keeps the original
    trial-at-a-time path selectable for A/B parity checks; both paths
    return bit-identical records (modulo the untimed wall clock nothing
    reads).
    """
    if not stacked_enabled():
        return [
            run_trial(mesh, power, workload, rng, heuristic_names)
            for rng in rngs
        ]
    trial_entries = [
        _route_trial(mesh, power, workload, rng, heuristic_names)
        for rng in rngs
    ]
    return _finalize_trials(trial_entries)


def aggregate_records(
    records: Sequence[TrialRecord],
    names: Sequence[str],
    x: float,
) -> PointResult:
    """Fold trial records (in trial order) into one :class:`PointResult`.

    This is the single aggregation path shared by the serial and parallel
    engines; feeding it the same records in the same order yields the same
    floats bit for bit.
    """
    trials = len(records)
    succ = {n: 0 for n in names}
    norm_inv = {n: 0.0 for n in names}
    raw_inv = {n: 0.0 for n in names}
    runtime = {n: 0.0 for n in names}
    static_frac = {n: 0.0 for n in names}
    static_cnt = {n: 0 for n in names}
    best_valid_trials = 0

    for rec in records:
        if rec.best_valid:
            best_valid_trials += 1
        for n in names:
            out = rec.outcomes[n]
            runtime[n] += out.runtime_s
            raw_inv[n] += out.power_inverse
            if out.valid:
                succ[n] += 1
                static_frac[n] += out.static_fraction
                static_cnt[n] += 1
            if rec.best_valid:
                norm_inv[n] += out.power_inverse / rec.best_power_inverse

    stats = {}
    for n in names:
        stats[n] = HeuristicPointStats(
            name=n,
            trials=trials,
            successes=succ[n],
            norm_power_inverse=(
                norm_inv[n] / best_valid_trials if best_valid_trials else 0.0
            ),
            mean_power_inverse=raw_inv[n] / trials,
            mean_runtime_s=runtime[n] / trials,
            mean_static_fraction=(
                static_frac[n] / static_cnt[n] if static_cnt[n] else 0.0
            ),
        )
    return PointResult(x=x, stats=stats)


def _expand_names(heuristic_names: Sequence[str]) -> List[str]:
    """Validate and canonicalise the competitor list (BEST appended)."""
    if not heuristic_names:
        raise InvalidParameterError("need at least one heuristic name")
    heuristics = [get_heuristic(n) for n in heuristic_names]
    return [h.name for h in heuristics] + [BEST_KEY]


# ----------------------------------------------------------------------
# parallel engine
# ----------------------------------------------------------------------
def _run_trial_chunk(
    payload: Tuple[
        Mesh, PowerModel, WorkloadFactory, int, int, int, Tuple[str, ...]
    ]
) -> List[TrialRecord]:
    """Worker entry point: run trials ``lo .. hi-1`` of a sweep point.

    The child re-derives just its slice of the per-trial generators with
    :func:`~repro.utils.rng.spawn_rngs_range` — stream ``i`` is a pure
    function of ``(seed, i)``, so the chunk boundaries (and the process
    start method, fork or spawn) cannot change any trial's instance draw.
    """
    mesh, power, workload, seed, lo, hi, names = payload
    # the chunk's platform objects were just unpickled: rebuild their
    # lazy caches once here, not inside the first trial's timed region
    warm_platform_caches(mesh, power)
    rngs = spawn_rngs_range(seed, lo, hi)
    return _run_trials(mesh, power, workload, rngs, names)


def _chunk_bounds(trials: int, jobs: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` chunks covering ``range(trials)``.

    Aims for a few chunks per worker so stragglers rebalance, without
    making chunks so small that process/pickle overhead dominates.
    """
    target_chunks = max(1, min(trials, jobs * 4))
    size = -(-trials // target_chunks)  # ceil
    return [(lo, min(lo + size, trials)) for lo in range(0, trials, size)]


def map_trial_chunks(worker, make_payload, trials: int, jobs: int) -> List:
    """Fan trial chunks out to a process pool, results in trial order.

    The single chunking/ordering implementation behind every parallel
    entry point (sweep points, the §6.4 summary): ``worker`` is a
    picklable module-level callable, ``make_payload(lo, hi)`` builds its
    argument for trials ``lo .. hi-1``, and each worker returns one record
    per trial.  ``pool.map`` preserves submission order — which is trial
    order — so folding the concatenated records reproduces the serial
    reference bit for bit.
    """
    bounds = _chunk_bounds(trials, jobs)
    records: List = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for chunk in pool.map(worker, [make_payload(lo, hi) for lo, hi in bounds]):
            records.extend(chunk)
    return records


def default_jobs() -> int:
    """Worker count for ``jobs=None``; ``REPRO_JOBS`` overrides cpu count."""
    raw = os.environ.get("REPRO_JOBS", "")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise InvalidParameterError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
        if value < 1:
            raise InvalidParameterError(f"REPRO_JOBS must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


class ParallelSweepRunner:
    """Chunked multi-process Monte-Carlo engine.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` uses :func:`default_jobs` (the CPU
        count, overridable with ``REPRO_JOBS``); ``1`` degenerates to the
        serial reference path in-process.

    Notes
    -----
    Trials are seeded per-index through
    :func:`~repro.utils.rng.spawn_rngs` and aggregated in trial order by
    :func:`aggregate_records`, so for a fixed ``(config, seed)`` the
    runner's output matches the serial runner exactly on every statistic
    except ``mean_runtime_s`` (wall-clock is not deterministic under any
    engine).  Workload factories must be picklable — the dataclass
    factories of :mod:`repro.experiments.config` are.
    """

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else default_jobs()

    # ------------------------------------------------------------------
    def run_point(
        self,
        mesh: Mesh,
        power: PowerModel,
        workload: WorkloadFactory,
        trials: int,
        seed: int,
        heuristic_names: Sequence[str],
        x: float = 0.0,
    ) -> PointResult:
        """Parallel equivalent of :func:`run_point`."""
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        names = _expand_names(heuristic_names)
        member_names = tuple(names[:-1])
        if self.jobs == 1:
            warm_platform_caches(mesh, power)
            rngs = spawn_rngs(seed, trials)
            records = _run_trials(mesh, power, workload, rngs, member_names)
            return aggregate_records(records, names, x)
        records: List[TrialRecord] = map_trial_chunks(
            _run_trial_chunk,
            lambda lo, hi: (mesh, power, workload, seed, lo, hi, member_names),
            trials,
            self.jobs,
        )
        return aggregate_records(records, names, x)

    def run_sweep(self, config: SweepConfig) -> SweepResult:
        """Parallel equivalent of :func:`run_sweep`."""
        mesh = config.mesh()
        power = config.power_factory()
        points = []
        for k, point in enumerate(config.points):
            points.append(
                self.run_point(
                    mesh,
                    power,
                    point.workload,
                    trials=config.trials,
                    # decorrelate points while keeping the sweep reproducible
                    seed=config.seed * 1_000_003 + k,
                    heuristic_names=config.heuristics,
                    x=point.x,
                )
            )
        return SweepResult(
            name=config.name,
            x_label=config.x_label,
            heuristics=tuple(config.heuristics),
            points=tuple(points),
        )


# ----------------------------------------------------------------------
# public entry points (serial by default)
# ----------------------------------------------------------------------
def run_point(
    mesh: Mesh,
    power: PowerModel,
    workload: WorkloadFactory,
    trials: int,
    seed: int,
    heuristic_names: Sequence[str],
    x: float = 0.0,
    jobs: int = 1,
) -> PointResult:
    """Run ``trials`` independent instances of one sweep point.

    ``jobs=1`` (default) runs serially in-process; ``jobs > 1`` delegates
    to :class:`ParallelSweepRunner` with identical aggregation.
    """
    return ParallelSweepRunner(jobs=jobs).run_point(
        mesh, power, workload, trials, seed, heuristic_names, x=x
    )


def run_sweep(config: SweepConfig, jobs: int = 1) -> SweepResult:
    """Run every point of a sweep configuration (serial unless ``jobs>1``)."""
    return ParallelSweepRunner(jobs=jobs).run_sweep(config)
