"""Monte-Carlo sweep runner and the paper's aggregation conventions.

For every trial, all competing heuristics are run on the same instance and
the virtual BEST result is formed.  Aggregates per sweep point follow
Section 6:

* **failure ratio** — fraction of instances where the heuristic found no
  valid routing (BEST fails iff all fail);
* **normalised power inverse** — per instance, ``(1/P_h) / (1/P_BEST)``
  with the 0-on-failure convention, averaged over the instances where BEST
  succeeded (when BEST itself fails the normalisation is undefined and the
  instance contributes to failure ratios only);
* **mean power inverse** — the raw ``1/P`` average (0 on failure) behind
  the Section 6.4 "times higher than XY" ratios;
* **mean runtime** and **mean static fraction** for the summary claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.problem import RoutingProblem
from repro.experiments.config import SweepConfig, SweepPoint, WorkloadFactory
from repro.heuristics.base import HeuristicResult, get_heuristic
from repro.heuristics.best import best_of_results
from repro.mesh.topology import Mesh
from repro.core.power import PowerModel
from repro.utils.rng import spawn_rngs
from repro.utils.validation import InvalidParameterError

#: series key used for the virtual best heuristic
BEST_KEY = "BEST"


@dataclass(frozen=True)
class HeuristicPointStats:
    """Aggregates of one heuristic at one sweep point."""

    name: str
    trials: int
    successes: int
    norm_power_inverse: float
    mean_power_inverse: float
    mean_runtime_s: float
    mean_static_fraction: float

    @property
    def failure_ratio(self) -> float:
        return 1.0 - self.successes / self.trials

    @property
    def success_ratio(self) -> float:
        return self.successes / self.trials


@dataclass(frozen=True)
class PointResult:
    """All heuristics' aggregates at one sweep point."""

    x: float
    stats: Dict[str, HeuristicPointStats]


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: config echo plus one PointResult per x value."""

    name: str
    x_label: str
    heuristics: Tuple[str, ...]
    points: Tuple[PointResult, ...]

    @property
    def x_values(self) -> List[float]:
        return [p.x for p in self.points]

    def series(self, metric: str) -> Dict[str, List[float]]:
        """Extract ``{heuristic: [value per x]}`` for a metric attribute."""
        out: Dict[str, List[float]] = {}
        for name in list(self.heuristics) + [BEST_KEY]:
            out[name] = [
                getattr(p.stats[name], metric) for p in self.points
            ]
        return out


def run_point(
    mesh: Mesh,
    power: PowerModel,
    workload: WorkloadFactory,
    trials: int,
    seed: int,
    heuristic_names: Sequence[str],
    x: float = 0.0,
) -> PointResult:
    """Run ``trials`` independent instances of one sweep point."""
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    if not heuristic_names:
        raise InvalidParameterError("need at least one heuristic name")
    heuristics = [get_heuristic(n) for n in heuristic_names]
    names = [h.name for h in heuristics] + [BEST_KEY]

    succ = {n: 0 for n in names}
    norm_inv = {n: 0.0 for n in names}
    raw_inv = {n: 0.0 for n in names}
    runtime = {n: 0.0 for n in names}
    static_frac = {n: 0.0 for n in names}
    static_cnt = {n: 0 for n in names}
    best_valid_trials = 0

    for rng in spawn_rngs(seed, trials):
        comms = workload(mesh, rng)
        problem = RoutingProblem(mesh, power, comms)
        results: List[HeuristicResult] = [h.solve(problem) for h in heuristics]
        best = best_of_results(results)
        everything = results + [
            HeuristicResult(BEST_KEY, best.routing, best.report, best.runtime_s)
        ]
        best_ok = best.valid
        if best_ok:
            best_valid_trials += 1
        for res in everything:
            n = res.name
            runtime[n] += res.runtime_s
            raw_inv[n] += res.power_inverse
            if res.valid:
                succ[n] += 1
                static_frac[n] += res.report.static_fraction
                static_cnt[n] += 1
            if best_ok:
                norm_inv[n] += res.power_inverse / best.power_inverse

    stats = {}
    for n in names:
        stats[n] = HeuristicPointStats(
            name=n,
            trials=trials,
            successes=succ[n],
            norm_power_inverse=(
                norm_inv[n] / best_valid_trials if best_valid_trials else 0.0
            ),
            mean_power_inverse=raw_inv[n] / trials,
            mean_runtime_s=runtime[n] / trials,
            mean_static_fraction=(
                static_frac[n] / static_cnt[n] if static_cnt[n] else 0.0
            ),
        )
    return PointResult(x=x, stats=stats)


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run every point of a sweep configuration."""
    mesh = config.mesh()
    power = config.power_factory()
    points = []
    for k, point in enumerate(config.points):
        points.append(
            run_point(
                mesh,
                power,
                point.workload,
                trials=config.trials,
                # decorrelate points while keeping the sweep reproducible
                seed=config.seed * 1_000_003 + k,
                heuristic_names=config.heuristics,
                x=point.x,
            )
        )
    return SweepResult(
        name=config.name,
        x_label=config.x_label,
        heuristics=tuple(config.heuristics),
        points=tuple(points),
    )
