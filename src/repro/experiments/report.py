"""Text and CSV rendering of sweep results.

The bench harness prints these tables (one row per x value, one column per
heuristic) so that every reproduced figure has a diffable text form, and
EXPERIMENTS.md can quote the rows verbatim.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.experiments.runner import BEST_KEY, SweepResult
from repro.utils.tables import format_series

#: metrics worth printing, in presentation order
DEFAULT_METRICS = ("norm_power_inverse", "failure_ratio")


def sweep_to_text(
    result: SweepResult, metrics: Sequence[str] = DEFAULT_METRICS
) -> str:
    """Render a sweep as one table per metric."""
    blocks = []
    for metric in metrics:
        series = result.series(metric)
        blocks.append(
            f"== {result.name} :: {metric} ==\n"
            + format_series(result.x_label, result.x_values, series)
        )
    return "\n\n".join(blocks)


def sweep_to_csv(result: SweepResult, metrics: Sequence[str] = DEFAULT_METRICS) -> str:
    """Render a sweep as CSV (long format: metric, heuristic, x, value)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["sweep", "metric", "heuristic", result.x_label, "value"])
    for metric in metrics:
        series = result.series(metric)
        for name in list(result.heuristics) + [BEST_KEY]:
            for x, v in zip(result.x_values, series[name]):
                writer.writerow([result.name, metric, name, x, f"{v:.6f}"])
    return buf.getvalue()
