"""Ready-made entry points for every figure panel and the §6.4 summary.

``fig7a() .. fig9c()`` run the corresponding sweep with the paper's
parameters; :func:`summary_statistics` reproduces the Section 6.4 averages
("XY succeeds only 15% of the times, while XYI and PR succeed respectively
46% and 50% ...") by sampling instances across the union of the Figure
7/8/9 distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.power import PowerModel
from repro.core.problem import RoutingProblem
from repro.experiments.config import (
    FixedWeightFactory,
    LengthTargetedFactory,
    UniformRandomFactory,
    default_trials,
    fig7_config,
    fig8_config,
    fig9_config,
)
from repro.experiments.runner import SweepResult, best_of_results, run_sweep
from repro.heuristics.base import get_heuristic
from repro.heuristics.best import PAPER_HEURISTICS
from repro.mesh.topology import Mesh
from repro.utils.rng import spawn_rngs, spawn_rngs_range
from repro.utils.validation import InvalidParameterError


def fig7a(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 7(a): small communications, sweep over their number."""
    return run_sweep(fig7_config("a", **kw), jobs=jobs)


def fig7b(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 7(b): mixed communications, sweep over their number."""
    return run_sweep(fig7_config("b", **kw), jobs=jobs)


def fig7c(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 7(c): big communications, sweep over their number."""
    return run_sweep(fig7_config("c", **kw), jobs=jobs)


def fig8a(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 8(a): 10 communications, sweep over their common weight."""
    return run_sweep(fig8_config("a", **kw), jobs=jobs)


def fig8b(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 8(b): 20 communications, sweep over their common weight."""
    return run_sweep(fig8_config("b", **kw), jobs=jobs)


def fig8c(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 8(c): 40 communications, sweep over their common weight."""
    return run_sweep(fig8_config("c", **kw), jobs=jobs)


def fig9a(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 9(a): 100 small communications, sweep over target length."""
    return run_sweep(fig9_config("a", **kw), jobs=jobs)


def fig9b(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 9(b): 25 mixed communications, sweep over target length."""
    return run_sweep(fig9_config("b", **kw), jobs=jobs)


def fig9c(*, jobs: int = 1, **kw) -> SweepResult:
    """Figure 9(c): 12 big communications, sweep over target length."""
    return run_sweep(fig9_config("c", **kw), jobs=jobs)


#: every figure panel entry point above, by name — the single list the CLI
#: validates against, so adding a panel here is all it takes
PANELS = tuple(
    f"fig{n}{p}" for n in (7, 8, 9) for p in ("a", "b", "c")
)


# ----------------------------------------------------------------------
# Section 6.4 summary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SummaryStats:
    """The §6.4 headline numbers over a mixture of all experiment families.

    ``success_ratio[h]`` reproduces "XY succeeds only 15% of the times,
    while XYI and PR succeed respectively 46% and 50%" (BEST: 51%);
    ``inverse_vs_xy[h]`` reproduces "the absolute inverse of power ... is
    2.44 (resp. 2.57) times higher in XYI (resp. PR) than in XY, and even
    2.95 times higher in BEST"; ``static_fraction`` reproduces "static
    power accounts for 1/7-th of the total power"; ``mean_runtime_s[h]``
    corresponds to the reported 24 ms (XYI) / 38 ms (PR).
    """

    trials: int
    success_ratio: Dict[str, float]
    inverse_vs_xy: Dict[str, float]
    static_fraction: float
    mean_runtime_s: Dict[str, float]


def _summary_instance_factories():
    """One workload factory per experiment family of Section 6.

    Built from the picklable dataclass factories so the parallel engine
    can ship trials to worker processes.
    """
    fams = []
    for lo, hi, ns in (
        (100.0, 1500.0, range(10, 141, 10)),
        (100.0, 2500.0, range(5, 71, 5)),
        (2500.0, 3500.0, range(2, 31, 2)),
    ):
        for n in ns:
            fams.append(UniformRandomFactory(n, lo, hi))
    for n, ws in ((10, range(200, 3501, 300)), (20, range(200, 3501, 300)), (40, range(200, 1801, 200))):
        for w in ws:
            fams.append(FixedWeightFactory(n, float(w)))
    for n, lo, hi in ((100, 200.0, 800.0), (25, 100.0, 3500.0), (12, 2700.0, 3300.0)):
        for L in range(2, 15):
            fams.append(LengthTargetedFactory(n, L, lo, hi))
    return fams


class _SummaryContext:
    """Everything one summary trial needs, built once per chunk/run."""

    def __init__(self, heuristic_names: Sequence[str]):
        self.mesh = Mesh(8, 8)
        self.power = PowerModel.kim_horowitz()
        self.fams = _summary_instance_factories()
        self.heuristics = [get_heuristic(n) for n in heuristic_names]

    def trial(self, rng):
        """One trial: per-heuristic (valid, 1/P, runtime) rows + BEST."""
        fam = self.fams[int(rng.integers(len(self.fams)))]
        problem = RoutingProblem(self.mesh, self.power, fam(self.mesh, rng))
        for h in self.heuristics:
            h.reseed(rng)
        results = [h.solve(problem) for h in self.heuristics]
        best = best_of_results(results)
        rows = {
            res.name: (res.valid, res.power_inverse, res.runtime_s)
            for res in results
        }
        rows["BEST"] = (best.valid, best.power_inverse, best.runtime_s)
        static = best.report.static_fraction if best.valid else None
        return rows, static


def _summary_chunk(payload):
    """Worker entry point: summary trials ``lo .. hi-1`` (pure in seed, i)."""
    seed, lo, hi, heuristic_names = payload
    ctx = _SummaryContext(heuristic_names)
    return [ctx.trial(rng) for rng in spawn_rngs_range(seed, lo, hi)]


def summary_statistics(
    trials: Optional[int] = None,
    seed: int = 64,
    heuristic_names: Sequence[str] = PAPER_HEURISTICS,
    jobs: int = 1,
) -> SummaryStats:
    """Reproduce the §6.4 averages over a mixture of all instance families.

    Each trial draws a uniformly random experiment family (a Figure 7/8/9
    sweep point) and then an instance from it — the closest tractable
    analogue of the paper's "averaging over all the experiments".
    ``jobs > 1`` fans trial chunks out to worker processes with the same
    per-index seeding and in-order aggregation as the sweep runner, so the
    statistics match the serial run exactly (runtimes excepted).
    """
    trials = trials if trials is not None else 10 * default_trials()
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    names = [get_heuristic(n).name for n in heuristic_names] + ["BEST"]

    if jobs == 1:
        ctx = _SummaryContext(tuple(heuristic_names))
        records = [ctx.trial(rng) for rng in spawn_rngs(seed, trials)]
    else:
        from repro.experiments.runner import ParallelSweepRunner, map_trial_chunks

        runner = ParallelSweepRunner(jobs=jobs)  # validates/resolves jobs
        names_t = tuple(heuristic_names)
        records = map_trial_chunks(
            _summary_chunk,
            lambda lo, hi: (seed, lo, hi, names_t),
            trials,
            runner.jobs,
        )

    succ = {n: 0 for n in names}
    inv = {n: 0.0 for n in names}
    runtime = {n: 0.0 for n in names}
    static_sum = 0.0
    static_cnt = 0
    for rows, static in records:
        for n in names:
            valid, pinv, rt = rows[n]
            succ[n] += int(valid)
            inv[n] += pinv
            runtime[n] += rt
        if static is not None:
            static_sum += static
            static_cnt += 1

    xy_inv = inv.get("XY", 0.0)
    inverse_vs_xy = {
        n: (inv[n] / xy_inv if xy_inv > 0 else float("inf")) for n in names
    }
    return SummaryStats(
        trials=trials,
        success_ratio={n: succ[n] / trials for n in names},
        inverse_vs_xy=inverse_vs_xy,
        static_fraction=(static_sum / static_cnt if static_cnt else 0.0),
        mean_runtime_s={n: runtime[n] / trials for n in names},
    )
