"""Ready-made entry points for every figure panel and the §6.4 summary.

``fig7a() .. fig9c()`` run the corresponding sweep with the paper's
parameters; :func:`summary_statistics` reproduces the Section 6.4 averages
("XY succeeds only 15% of the times, while XYI and PR succeed respectively
46% and 50% ...") by sampling instances across the union of the Figure
7/8/9 distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.power import PowerModel
from repro.core.problem import RoutingProblem
from repro.experiments.config import (
    default_trials,
    fig7_config,
    fig8_config,
    fig9_config,
)
from repro.experiments.runner import SweepResult, best_of_results, run_sweep
from repro.heuristics.base import get_heuristic
from repro.heuristics.best import PAPER_HEURISTICS
from repro.mesh.topology import Mesh
from repro.utils.rng import spawn_rngs
from repro.utils.validation import InvalidParameterError
from repro.workloads.length_targeted import length_targeted_workload
from repro.workloads.random_uniform import (
    fixed_weight_workload,
    uniform_random_workload,
)


def fig7a(**kw) -> SweepResult:
    """Figure 7(a): small communications, sweep over their number."""
    return run_sweep(fig7_config("a", **kw))


def fig7b(**kw) -> SweepResult:
    """Figure 7(b): mixed communications, sweep over their number."""
    return run_sweep(fig7_config("b", **kw))


def fig7c(**kw) -> SweepResult:
    """Figure 7(c): big communications, sweep over their number."""
    return run_sweep(fig7_config("c", **kw))


def fig8a(**kw) -> SweepResult:
    """Figure 8(a): 10 communications, sweep over their common weight."""
    return run_sweep(fig8_config("a", **kw))


def fig8b(**kw) -> SweepResult:
    """Figure 8(b): 20 communications, sweep over their common weight."""
    return run_sweep(fig8_config("b", **kw))


def fig8c(**kw) -> SweepResult:
    """Figure 8(c): 40 communications, sweep over their common weight."""
    return run_sweep(fig8_config("c", **kw))


def fig9a(**kw) -> SweepResult:
    """Figure 9(a): 100 small communications, sweep over target length."""
    return run_sweep(fig9_config("a", **kw))


def fig9b(**kw) -> SweepResult:
    """Figure 9(b): 25 mixed communications, sweep over target length."""
    return run_sweep(fig9_config("b", **kw))


def fig9c(**kw) -> SweepResult:
    """Figure 9(c): 12 big communications, sweep over target length."""
    return run_sweep(fig9_config("c", **kw))


# ----------------------------------------------------------------------
# Section 6.4 summary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SummaryStats:
    """The §6.4 headline numbers over a mixture of all experiment families.

    ``success_ratio[h]`` reproduces "XY succeeds only 15% of the times,
    while XYI and PR succeed respectively 46% and 50%" (BEST: 51%);
    ``inverse_vs_xy[h]`` reproduces "the absolute inverse of power ... is
    2.44 (resp. 2.57) times higher in XYI (resp. PR) than in XY, and even
    2.95 times higher in BEST"; ``static_fraction`` reproduces "static
    power accounts for 1/7-th of the total power"; ``mean_runtime_s[h]``
    corresponds to the reported 24 ms (XYI) / 38 ms (PR).
    """

    trials: int
    success_ratio: Dict[str, float]
    inverse_vs_xy: Dict[str, float]
    static_fraction: float
    mean_runtime_s: Dict[str, float]


def _summary_instance_factories():
    """One workload factory per experiment family of Section 6."""
    fams = []
    for lo, hi, ns in (
        (100.0, 1500.0, range(10, 141, 10)),
        (100.0, 2500.0, range(5, 71, 5)),
        (2500.0, 3500.0, range(2, 31, 2)),
    ):
        for n in ns:
            fams.append(
                lambda mesh, rng, n=n, lo=lo, hi=hi: uniform_random_workload(
                    mesh, n, lo, hi, rng=rng
                )
            )
    for n, ws in ((10, range(200, 3501, 300)), (20, range(200, 3501, 300)), (40, range(200, 1801, 200))):
        for w in ws:
            fams.append(
                lambda mesh, rng, n=n, w=w: fixed_weight_workload(
                    mesh, n, float(w), rng=rng
                )
            )
    for n, lo, hi in ((100, 200.0, 800.0), (25, 100.0, 3500.0), (12, 2700.0, 3300.0)):
        for L in range(2, 15):
            fams.append(
                lambda mesh, rng, n=n, lo=lo, hi=hi, L=L: length_targeted_workload(
                    mesh, n, L, lo, hi, rng=rng
                )
            )
    return fams


def summary_statistics(
    trials: Optional[int] = None,
    seed: int = 64,
    heuristic_names: Sequence[str] = PAPER_HEURISTICS,
) -> SummaryStats:
    """Reproduce the §6.4 averages over a mixture of all instance families.

    Each trial draws a uniformly random experiment family (a Figure 7/8/9
    sweep point) and then an instance from it — the closest tractable
    analogue of the paper's "averaging over all the experiments".
    """
    trials = trials if trials is not None else 10 * default_trials()
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    mesh = Mesh(8, 8)
    power = PowerModel.kim_horowitz()
    heuristics = [get_heuristic(n) for n in heuristic_names]
    names = [h.name for h in heuristics] + ["BEST"]
    fams = _summary_instance_factories()

    succ = {n: 0 for n in names}
    inv = {n: 0.0 for n in names}
    runtime = {n: 0.0 for n in names}
    static_sum = 0.0
    static_cnt = 0

    for rng in spawn_rngs(seed, trials):
        fam = fams[int(rng.integers(len(fams)))]
        problem = RoutingProblem(mesh, power, fam(mesh, rng))
        results = [h.solve(problem) for h in heuristics]
        best = best_of_results(results)
        for res in results:
            succ[res.name] += int(res.valid)
            inv[res.name] += res.power_inverse
            runtime[res.name] += res.runtime_s
        succ["BEST"] += int(best.valid)
        inv["BEST"] += best.power_inverse
        runtime["BEST"] += best.runtime_s
        if best.valid:
            static_sum += best.report.static_fraction
            static_cnt += 1

    xy_inv = inv.get("XY", 0.0)
    inverse_vs_xy = {
        n: (inv[n] / xy_inv if xy_inv > 0 else float("inf")) for n in names
    }
    return SummaryStats(
        trials=trials,
        success_ratio={n: succ[n] / trials for n in names},
        inverse_vs_xy=inverse_vs_xy,
        static_fraction=(static_sum / static_cnt if static_cnt else 0.0),
        mean_runtime_s={n: runtime[n] / trials for n in names},
    )
