"""The Section 6 experiment harness.

* :mod:`repro.experiments.config` — sweep descriptions (one per figure
  panel) with the paper's exact workload parameters.
* :mod:`repro.experiments.runner` — the Monte-Carlo engine: run every
  heuristic on every trial, aggregate normalised power inverse and failure
  ratios exactly as the paper plots them.
* :mod:`repro.experiments.figures` — ready-made entry points
  ``fig7a() .. fig9c()``, plus the Section 6.4 summary statistics.
* :mod:`repro.experiments.report` — text/CSV rendering of sweep results.
* :mod:`repro.experiments.campaign` — the declarative experiment
  registry + content-addressed artifact store behind every committed
  ``results/*.txt`` (``repro campaign list|run|check|clean``).
"""

from repro.experiments.config import (
    FixedWeightFactory,
    LengthTargetedFactory,
    SweepConfig,
    SweepPoint,
    UniformRandomFactory,
    default_trials,
    fig7_config,
    fig8_config,
    fig9_config,
)
from repro.experiments.runner import (
    HeuristicPointStats,
    ParallelSweepRunner,
    PointResult,
    SweepResult,
    TrialOutcome,
    TrialRecord,
    aggregate_records,
    default_jobs,
    run_point,
    run_sweep,
    run_trial,
)
from repro.experiments.figures import (
    fig7a,
    fig7b,
    fig7c,
    fig8a,
    fig8b,
    fig8c,
    fig9a,
    fig9b,
    fig9c,
    summary_statistics,
    SummaryStats,
)
from repro.experiments.report import sweep_to_text, sweep_to_csv
from repro.experiments.convergence import ConvergenceTrace, convergence_study

__all__ = [
    "SweepConfig",
    "SweepPoint",
    "UniformRandomFactory",
    "FixedWeightFactory",
    "LengthTargetedFactory",
    "default_trials",
    "default_jobs",
    "ParallelSweepRunner",
    "TrialOutcome",
    "TrialRecord",
    "aggregate_records",
    "run_trial",
    "fig7_config",
    "fig8_config",
    "fig9_config",
    "HeuristicPointStats",
    "PointResult",
    "SweepResult",
    "run_point",
    "run_sweep",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9a",
    "fig9b",
    "fig9c",
    "summary_statistics",
    "SummaryStats",
    "sweep_to_text",
    "sweep_to_csv",
    "ConvergenceTrace",
    "convergence_study",
]
