"""Sweep configurations for the paper's Figures 7, 8 and 9.

Each figure panel is a sweep over one knob (number of communications,
common weight, target length) with the paper's workload parameters:

* Figure 7 — rates ``U(100, 1500)`` (small), ``U(100, 2500)`` (mixed),
  ``U(2500, 3500)`` (big) Mb/s; x = number of communications.
* Figure 8 — 10 / 20 / 40 communications of a common weight; x = weight.
* Figure 9 — 100 / 25 / 12 communications with rates ``U(200, 800)`` /
  ``U(100, 3500)`` / ``U(2700, 3300)``; x = target Manhattan length.

The paper averages 50 000 instance draws per plotted point; this harness
defaults to :func:`default_trials` (override with the ``REPRO_TRIALS``
environment variable) — see EXPERIMENTS.md for the trial counts behind the
recorded numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.power import PowerModel
from repro.core.problem import Communication
from repro.heuristics.best import PAPER_HEURISTICS
from repro.mesh.topology import Mesh
from repro.utils.validation import InvalidParameterError
from repro.workloads.length_targeted import length_targeted_workload
from repro.workloads.random_uniform import (
    fixed_weight_workload,
    uniform_random_workload,
)

WorkloadFactory = Callable[[Mesh, np.random.Generator], List[Communication]]

#: default Monte-Carlo trials per sweep point (the paper used 50 000)
_DEFAULT_TRIALS = 60


# ----------------------------------------------------------------------
# picklable workload factories
# ----------------------------------------------------------------------
# The parallel sweep engine ships workload factories to worker processes,
# so the standard sweeps use these plain dataclasses instead of lambdas
# (closures don't pickle).  Custom serial-only sweeps may still pass any
# callable.


@dataclass(frozen=True)
class UniformRandomFactory:
    """``n`` communications with rates ``U(rate_min, rate_max)``."""

    n: int
    rate_min: float
    rate_max: float

    def __call__(
        self, mesh: Mesh, rng: np.random.Generator
    ) -> List[Communication]:
        return uniform_random_workload(
            mesh, self.n, self.rate_min, self.rate_max, rng=rng
        )


@dataclass(frozen=True)
class FixedWeightFactory:
    """``n`` communications of one common weight."""

    n: int
    weight: float

    def __call__(
        self, mesh: Mesh, rng: np.random.Generator
    ) -> List[Communication]:
        return fixed_weight_workload(mesh, self.n, self.weight, rng=rng)


@dataclass(frozen=True)
class LengthTargetedFactory:
    """``n`` communications near a target Manhattan length."""

    n: int
    length: int
    rate_min: float
    rate_max: float

    def __call__(
        self, mesh: Mesh, rng: np.random.Generator
    ) -> List[Communication]:
        return length_targeted_workload(
            mesh, self.n, self.length, self.rate_min, self.rate_max, rng=rng
        )


@dataclass(frozen=True)
class HotspotFactory:
    """Congested hotspot traffic: a fraction of cores send to one core.

    Wraps :func:`repro.workloads.patterns.hotspot_pattern` (mesh-centre
    hotspot) in a picklable factory for the parallel sweep engine and the
    scenario registry.
    """

    rate: float
    fraction: float = 1.0

    def __call__(
        self, mesh: Mesh, rng: np.random.Generator
    ) -> List[Communication]:
        from repro.workloads.patterns import hotspot_pattern

        return hotspot_pattern(mesh, self.rate, fraction=self.fraction, rng=rng)


def default_trials() -> int:
    """Trials per sweep point; override with ``REPRO_TRIALS``."""
    raw = os.environ.get("REPRO_TRIALS", "")
    if not raw:
        return _DEFAULT_TRIALS
    try:
        value = int(raw)
    except ValueError:
        raise InvalidParameterError(
            f"REPRO_TRIALS must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise InvalidParameterError(f"REPRO_TRIALS must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point: a label value and the workload it draws."""

    x: float
    workload: WorkloadFactory


@dataclass(frozen=True)
class SweepConfig:
    """A full sweep: points, trial count, platform, competitors."""

    name: str
    x_label: str
    points: Tuple[SweepPoint, ...]
    trials: int
    seed: int = 2012
    mesh_shape: Tuple[int, int] = (8, 8)
    heuristics: Tuple[str, ...] = PAPER_HEURISTICS
    power_factory: Callable[[], PowerModel] = field(
        default=PowerModel.kim_horowitz
    )

    def __post_init__(self) -> None:
        if not self.points:
            raise InvalidParameterError(f"sweep {self.name!r} has no points")
        if self.trials < 1:
            raise InvalidParameterError(
                f"sweep {self.name!r} needs trials >= 1, got {self.trials}"
            )

    def mesh(self) -> Mesh:
        return Mesh(*self.mesh_shape)


# ----------------------------------------------------------------------
# Figure 7: sensitivity to the number of communications
# ----------------------------------------------------------------------
_FIG7_PANELS = {
    "a": ("small", 100.0, 1500.0, tuple(range(10, 141, 10))),
    "b": ("mixed", 100.0, 2500.0, tuple(range(5, 71, 5))),
    "c": ("big", 2500.0, 3500.0, tuple(range(2, 31, 2))),
}


def fig7_config(
    panel: str,
    *,
    trials: int | None = None,
    n_values: Sequence[int] | None = None,
    seed: int = 2012,
) -> SweepConfig:
    """Sweep over the number of communications (Figure 7, panel a/b/c)."""
    try:
        label, lo, hi, default_ns = _FIG7_PANELS[panel]
    except KeyError:
        raise InvalidParameterError(
            f"fig7 panel must be one of {sorted(_FIG7_PANELS)}, got {panel!r}"
        ) from None
    ns = tuple(n_values) if n_values is not None else default_ns
    points = tuple(
        SweepPoint(x=n, workload=UniformRandomFactory(n, lo, hi)) for n in ns
    )
    return SweepConfig(
        name=f"fig7{panel}-{label}-comms",
        x_label="num_comms",
        points=points,
        trials=trials if trials is not None else default_trials(),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 8: sensitivity to the size (weight) of communications
# ----------------------------------------------------------------------
_FIG8_PANELS = {
    "a": ("few", 10, tuple(range(200, 3501, 300))),
    "b": ("some", 20, tuple(range(200, 3501, 300))),
    "c": ("numerous", 40, tuple(range(200, 1801, 200))),
}


def fig8_config(
    panel: str,
    *,
    trials: int | None = None,
    weights: Sequence[float] | None = None,
    seed: int = 2012,
) -> SweepConfig:
    """Sweep over the common communication weight (Figure 8, panel a/b/c)."""
    try:
        label, n, default_ws = _FIG8_PANELS[panel]
    except KeyError:
        raise InvalidParameterError(
            f"fig8 panel must be one of {sorted(_FIG8_PANELS)}, got {panel!r}"
        ) from None
    ws = tuple(weights) if weights is not None else default_ws
    points = tuple(
        SweepPoint(x=w, workload=FixedWeightFactory(n, w)) for w in ws
    )
    return SweepConfig(
        name=f"fig8{panel}-{label}-weight",
        x_label="avg_weight",
        points=points,
        trials=trials if trials is not None else default_trials(),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 9: sensitivity to the average length of communications
# ----------------------------------------------------------------------
_FIG9_PANELS = {
    "a": ("numerous-small", 100, 200.0, 800.0),
    "b": ("some-mixed", 25, 100.0, 3500.0),
    "c": ("few-big", 12, 2700.0, 3300.0),
}


def fig9_config(
    panel: str,
    *,
    trials: int | None = None,
    lengths: Sequence[int] | None = None,
    seed: int = 2012,
) -> SweepConfig:
    """Sweep over the target Manhattan length (Figure 9, panel a/b/c)."""
    try:
        label, n, lo, hi = _FIG9_PANELS[panel]
    except KeyError:
        raise InvalidParameterError(
            f"fig9 panel must be one of {sorted(_FIG9_PANELS)}, got {panel!r}"
        ) from None
    ls = tuple(lengths) if lengths is not None else tuple(range(2, 15))
    points = tuple(
        SweepPoint(x=L, workload=LengthTargetedFactory(n, L, lo, hi))
        for L in ls
    )
    return SweepConfig(
        name=f"fig9{panel}-{label}-length",
        x_label="avg_length",
        points=points,
        trials=trials if trials is not None else default_trials(),
        seed=seed,
    )
