"""Campaign families for the deterministic theory artifacts.

The Figure 2 worked example (Section 3.5) and the Theorem 1 / Lemma 2
separation tables (Section 4) have no Monte-Carlo component — their
shards are pure functions of the spec (one shard per mesh size for the
growth tables, a single shard for Figure 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.experiments.campaign.spec import Experiment, Shard
from repro.utils.tables import format_table
from repro.utils.validation import InvalidParameterError


# ----------------------------------------------------------------------
# Figure 2 (Section 3.5): XY = 128, best 1-MP = 56, best 2-MP = 32
# ----------------------------------------------------------------------
def _fig2_shard(_payload: Tuple) -> List[float]:
    from repro import (
        Communication,
        Mesh,
        PowerModel,
        RoutedFlow,
        Routing,
        RoutingProblem,
    )
    from repro.mesh.paths import Path
    from repro.optimal import optimal_single_path

    mesh = Mesh(2, 2)
    problem = RoutingProblem(
        mesh,
        PowerModel.fig2_example(),
        [
            Communication((0, 0), (1, 1), 1.0),
            Communication((0, 0), (1, 1), 3.0),
        ],
    )
    p_xy = Routing.xy(problem).total_power()
    p_1mp = optimal_single_path(problem).power
    two_mp = Routing(
        problem,
        [
            [RoutedFlow(Path.xy(mesh, (0, 0), (1, 1)), 1.0)],
            [
                RoutedFlow(Path.xy(mesh, (0, 0), (1, 1)), 1.0),
                RoutedFlow(Path.yx(mesh, (0, 0), (1, 1)), 2.0),
            ],
        ],
    )
    return [float(p_xy), float(p_1mp), float(two_mp.total_power())]


@dataclass(frozen=True)
class Fig2Experiment(Experiment):
    """The Section 3.5 worked example, exactly."""

    def shards(self) -> Tuple[Shard, ...]:
        return (Shard(key="fig2", func=_fig2_shard, payload=()),)

    def finalize(self, shard_records: List[Any]) -> dict:
        p_xy, p_1mp, p_2mp = shard_records[0]
        return {"xy": p_xy, "one_mp": p_1mp, "two_mp": p_2mp}

    def render(self, payload: dict) -> str:
        return format_table(
            ["routing rule", "paper", "measured"],
            [
                ["XY", 128, payload["xy"]],
                ["best 1-MP", 56, payload["one_mp"]],
                ["best 2-MP", 32, payload["two_mp"]],
            ],
            ndigits=1,
        )

    def verify(self, payload: dict) -> None:
        assert abs(payload["xy"] - 128.0) < 1e-9
        assert abs(payload["one_mp"] - 56.0) < 1e-9
        assert abs(payload["two_mp"] - 32.0) < 1e-9


# ----------------------------------------------------------------------
# Theorem 1 / Lemma 2 growth tables
# ----------------------------------------------------------------------
def _theory_shard(payload: Tuple) -> dict:
    kind, p = payload
    if kind == "theorem1":
        from repro.theory import theorem1_powers

        r = theorem1_powers(p)
    elif kind == "lemma2":
        from repro.theory import lemma2_powers

        r = lemma2_powers(p)
    else:  # pragma: no cover - spec validation catches this earlier
        raise InvalidParameterError(f"unknown theory table {kind!r}")
    return {k: float(v) for k, v in r.items()}


@dataclass(frozen=True)
class TheoryRatioExperiment(Experiment):
    """One Section 4 separation table, one shard per mesh size."""

    kind: str  # "theorem1" | "lemma2"
    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("theorem1", "lemma2"):
            raise InvalidParameterError(
                f"kind must be theorem1|lemma2, got {self.kind!r}"
            )

    def shards(self) -> Tuple[Shard, ...]:
        return tuple(
            Shard(
                key=f"p{p:03d}",
                func=_theory_shard,
                payload=(self.kind, p),
            )
            for p in self.sizes
        )

    def finalize(self, shard_records: List[Any]) -> dict:
        return {"sizes": list(self.sizes), "results": shard_records}

    def render(self, payload: dict) -> str:
        if self.kind == "theorem1":
            rows = [
                [
                    p,
                    f"{r['p_xy']:.1f}",
                    f"{r['p_manhattan']:.3f}",
                    f"{r['ratio']:.2f}",
                ]
                for p, r in zip(payload["sizes"], payload["results"])
            ]
            return (
                "Theorem 1: P_XY / P_maxMP on p x p, single pair (alpha = 3)\n"
                + format_table(["p", "P_XY", "P_maxMP", "ratio"], rows)
            )
        rows = [
            [p, f"{r['p_xy']:.0f}", f"{r['p_yx']:.0f}", f"{r['ratio']:.1f}"]
            for p, r in zip(payload["sizes"], payload["results"])
        ]
        return (
            "Lemma 2: P_XY / P_YX on the staircase instance (alpha = 3)\n"
            + format_table(["p", "P_XY", "P_YX", "ratio"], rows)
        )

    def verify(self, payload: dict) -> None:
        ratios = [r["ratio"] for r in payload["results"]]
        if self.kind == "theorem1":
            # Θ(p): each doubling of p roughly doubles the ratio
            for a, b in zip(ratios, ratios[1:]):
                assert 1.5 < b / a < 2.5
            # the constructed power stays bounded (paper: <= 4 K^alpha/half)
            assert all(r["p_manhattan"] <= 8.0 for r in payload["results"])
        else:
            sizes = payload["sizes"]
            exponent = math.log(ratios[-1] / ratios[0]) / math.log(
                sizes[-1] / sizes[0]
            )
            # Θ(p^{α-1}) with α = 3: exponent ≈ 2
            assert 1.7 < exponent < 2.3
