"""Declarative experiment campaigns with content-addressed caching.

The campaign layer unifies every reproduced artifact of the repository —
the Figure 7/8/9 sweeps, the §6.4 summary, the ablations, the extension
studies and the NoC latency curves — behind one execution engine:

* :mod:`~repro.experiments.campaign.spec` — declarative
  :class:`Experiment` specs with canonical content hashes and shard
  decomposition;
* :mod:`~repro.experiments.campaign.store` — the ``.repro-cache/``
  artifact store: exact hex-float snapshots, provenance manifests,
  checksum-verified loads;
* :mod:`~repro.experiments.campaign.engine` — sharded, resumable
  execution (serial or process-pool) with bit-identical aggregation;
* :mod:`~repro.experiments.campaign.registry` — the string-keyed
  registry, one entry per committed ``results/*.txt``.

CLI: ``repro campaign list | run | check | clean``.
"""

from repro.experiments.campaign.engine import (
    CampaignCheckReport,
    CampaignRunReport,
    artifact_path,
    check_experiment,
    prefetch_shards,
    run_experiment,
    write_artifact,
)
from repro.experiments.campaign.registry import (
    EXPERIMENTS,
    FAST_SUBSET,
    available_experiments,
    get_experiment,
)
from repro.experiments.campaign.spec import (
    CACHE_FORMAT,
    Experiment,
    Shard,
    canonical_json,
)
from repro.experiments.campaign.store import (
    ArtifactStore,
    from_wire,
    normalize,
    to_wire,
)

__all__ = [
    "ArtifactStore",
    "CACHE_FORMAT",
    "CampaignCheckReport",
    "CampaignRunReport",
    "EXPERIMENTS",
    "Experiment",
    "FAST_SUBSET",
    "Shard",
    "artifact_path",
    "available_experiments",
    "canonical_json",
    "check_experiment",
    "from_wire",
    "get_experiment",
    "normalize",
    "prefetch_shards",
    "run_experiment",
    "to_wire",
    "write_artifact",
]
